#pragma once

/// \file qca_one.hpp
/// \brief The QCA ONE gate library (Reis et al., "A Methodology for Standard
///        Cell Design for QCA", ISCAS 2016): compiles Cartesian gate-level
///        layouts into 5x5-cell QCA tiles.
///
/// Every gate-level tile becomes a 5 x 5 block of QCA cells: a center cell
/// plus two-cell "arms" toward each used port direction. AND/OR gates are
/// majority cells with one input arm fixed to logic 0/1; MAJ uses all three
/// input arms natively; the inverter is realized by a diagonal coupler gap.
/// Crossings place the second wire's cells in the crossing layer
/// (multilayer crossover). Cell patterns are stylized reconstructions of
/// the published standard cells — geometry and cell counts are
/// representative, see DESIGN.md §4.
///
/// Supported gate-level types: PI, PO, wire, fanout, INV, AND, OR, MAJ.
/// Anything else (XOR, NAND, comparison gates) must be decomposed first
/// (\ref mnt::ntk::to_aoi) — exactly like the original library.

#include "gate_library/cell_layout.hpp"
#include "layout/gate_level_layout.hpp"

#include <cstdint>

namespace mnt::gl
{

/// Cells per tile edge in the QCA ONE library.
inline constexpr std::uint32_t qca_one_tile_size = 5;

/// QCA cell pitch in nanometers (18 nm cell + 2 nm spacing).
inline constexpr double qca_cell_pitch_nm = 20.0;

/// Compiles \p layout into a QCA cell-level layout.
///
/// \throws mnt::precondition_error if the layout is not Cartesian
/// \throws mnt::design_rule_error if a tile hosts a gate type the library
///         does not provide (decompose with to_aoi first)
[[nodiscard]] cell_level_layout apply_qca_one(const lyt::gate_level_layout& layout);

/// Physical footprint of a QCA cell layout in nm^2.
[[nodiscard]] double qca_physical_area_nm2(const cell_level_layout& cells);

}  // namespace mnt::gl
