#include "gate_library/cell_layout.hpp"

#include <algorithm>
#include <utility>

namespace mnt::gl
{

std::string technology_name(const cell_technology tech)
{
    return tech == cell_technology::qca ? "QCA" : "SiDB";
}

cell_level_layout::cell_level_layout(std::string layout_name, const cell_technology technology,
                                     const std::uint32_t width, const std::uint32_t height) :
        name{std::move(layout_name)},
        tech{technology},
        w{width},
        h{height}
{
    if (width == 0 || height == 0)
    {
        throw precondition_error{"cell_level_layout: dimensions must be positive"};
    }
}

const std::string& cell_level_layout::layout_name() const noexcept
{
    return name;
}

cell_technology cell_level_layout::technology() const noexcept
{
    return tech;
}

std::uint32_t cell_level_layout::width() const noexcept
{
    return w;
}

std::uint32_t cell_level_layout::height() const noexcept
{
    return h;
}

void cell_level_layout::place_cell(const lyt::coordinate& c, cell cell_data, const std::uint8_t clock_zone)
{
    if (c.x < 0 || c.y < 0 || c.x >= static_cast<std::int32_t>(w) || c.y >= static_cast<std::int32_t>(h) || c.z > 1)
    {
        throw precondition_error{"place_cell: position " + c.to_string() + " is out of bounds"};
    }
    if (cells.contains(c))
    {
        throw precondition_error{"place_cell: position " + c.to_string() + " is already occupied"};
    }
    cells.emplace(c, std::make_pair(std::move(cell_data), clock_zone));
}

bool cell_level_layout::is_empty_cell(const lyt::coordinate& c) const
{
    return !cells.contains(c);
}

const cell& cell_level_layout::get_cell(const lyt::coordinate& c) const
{
    const auto it = cells.find(c);
    if (it == cells.cend())
    {
        throw precondition_error{"get_cell: position " + c.to_string() + " is empty"};
    }
    return it->second.first;
}

std::uint8_t cell_level_layout::clock_zone_of(const lyt::coordinate& c) const
{
    const auto it = cells.find(c);
    if (it == cells.cend())
    {
        throw precondition_error{"clock_zone_of: position " + c.to_string() + " is empty"};
    }
    return it->second.second;
}

std::size_t cell_level_layout::num_cells() const noexcept
{
    return cells.size();
}

std::size_t cell_level_layout::num_input_cells() const
{
    return static_cast<std::size_t>(std::count_if(cells.cbegin(), cells.cend(), [](const auto& kv)
                                                  { return kv.second.first.kind == cell_kind::input; }));
}

std::size_t cell_level_layout::num_output_cells() const
{
    return static_cast<std::size_t>(std::count_if(cells.cbegin(), cells.cend(), [](const auto& kv)
                                                  { return kv.second.first.kind == cell_kind::output; }));
}

std::vector<lyt::coordinate> cell_level_layout::cells_sorted() const
{
    std::vector<lyt::coordinate> result;
    result.reserve(cells.size());
    for (const auto& [c, payload] : cells)
    {
        result.push_back(c);
    }
    std::sort(result.begin(), result.end());
    return result;
}

}  // namespace mnt::gl
