#pragma once

/// \file bestagon.hpp
/// \brief The Bestagon gate library (Walter et al., "Hexagons Are the
///        Bestagons", DAC 2022): compiles hexagonal ROW-clocked gate-level
///        layouts into Silicon Dangling Bond (SiDB) cell-level layouts.
///
/// Every hexagonal tile becomes an 8 x 6 block of dot sites forming a
/// Y-shape: input arms descend from the up-left/up-right edges to a center
/// dot pair, and output arms leave through the down-left/down-right edges.
/// The published gates are bespoke dot arrangements on the H-Si(100)-2x1
/// lattice found by automated design; this reproduction uses one stylized
/// arrangement per connectivity pattern on an abstract site grid (see
/// DESIGN.md §4). Unlike QCA ONE, the library natively provides all 2-input
/// functions (AND/NAND/OR/NOR/XOR/XNOR) plus wires, fan-outs and crossings —
/// MAJ is *not* available and must be decomposed.

#include "gate_library/cell_layout.hpp"
#include "layout/gate_level_layout.hpp"

#include <cstdint>

namespace mnt::gl
{

/// Site-grid width of a Bestagon tile.
inline constexpr std::uint32_t bestagon_tile_width = 8;

/// Site-grid height of a Bestagon tile.
inline constexpr std::uint32_t bestagon_tile_height = 6;

/// Approximate physical pitch of one abstract site in nanometers
/// (the published hex tiles measure roughly 23 nm x 21 nm, i.e. about
/// 2.9 nm x 3.5 nm per site of our 8 x 6 abstraction).
inline constexpr double bestagon_site_pitch_x_nm = 2.9;
inline constexpr double bestagon_site_pitch_y_nm = 3.5;

/// Compiles \p layout into a SiDB cell-level layout.
///
/// \throws mnt::precondition_error if the layout is not hexagonal/ROW
/// \throws mnt::design_rule_error if a tile hosts a MAJ gate (decompose
///         first) or has malformed connectivity
[[nodiscard]] cell_level_layout apply_bestagon(const lyt::gate_level_layout& layout);

/// Physical footprint of a Bestagon cell layout in nm^2.
[[nodiscard]] double bestagon_physical_area_nm2(const cell_level_layout& cells);

}  // namespace mnt::gl
