#include "gate_library/qca_one.hpp"

#include "common/types.hpp"

#include <array>
#include <string>
#include <vector>

namespace mnt::gl
{

namespace
{

using lyt::coordinate;
using lyt::gate_level_layout;
using ntk::gate_type;

/// Port direction relative to a tile.
enum class direction : std::uint8_t
{
    north,
    east,
    south,
    west
};

direction direction_between(const coordinate& from, const coordinate& to)
{
    if (to.x == from.x + 1)
    {
        return direction::east;
    }
    if (to.x == from.x - 1)
    {
        return direction::west;
    }
    if (to.y == from.y + 1)
    {
        return direction::south;
    }
    if (to.y == from.y - 1)
    {
        return direction::north;
    }
    throw design_rule_error{"qca_one: connection between non-adjacent tiles " + from.to_string() + " -> " +
                            to.to_string()};
}

/// The two arm cell offsets of each direction within the 5x5 tile (outer
/// cell first).
const std::array<std::array<std::pair<int, int>, 2>, 4>& arm_offsets()
{
    static const std::array<std::array<std::pair<int, int>, 2>, 4> arms = {{
        {{{2, 0}, {2, 1}}},  // north
        {{{4, 2}, {3, 2}}},  // east
        {{{2, 4}, {2, 3}}},  // south
        {{{0, 2}, {1, 2}}},  // west
    }};
    return arms;
}

/// The inner arm cell (adjacent to the center) of a direction.
std::pair<int, int> inner_arm_cell(const direction d)
{
    return arm_offsets()[static_cast<std::size_t>(d)][1];
}

class qca_builder
{
public:
    explicit qca_builder(const gate_level_layout& gate_layout) :
            source{gate_layout},
            result{gate_layout.layout_name(), cell_technology::qca, gate_layout.width() * qca_one_tile_size,
                   gate_layout.height() * qca_one_tile_size}
    {}

    cell_level_layout build()
    {
        for (const auto& t : source.tiles_sorted())
        {
            compile_tile(t);
        }
        return std::move(result);
    }

private:
    void put(const coordinate& tile, const int cx, const int cy, const cell_kind kind, const std::string& name = {},
             const std::uint8_t layer = 0)
    {
        const coordinate pos{tile.x * static_cast<std::int32_t>(qca_one_tile_size) + cx,
                             tile.y * static_cast<std::int32_t>(qca_one_tile_size) + cy, layer};
        if (!result.is_empty_cell(pos))
        {
            return;  // shared arm cell already present (e.g. straight wires)
        }
        cell c{};
        c.kind = kind;
        c.name = name;
        result.place_cell(pos, std::move(c), source.clock_number(tile));
    }

    void put_arm(const coordinate& tile, const direction d, const std::uint8_t layer = 0,
                 const cell_kind kind = cell_kind::normal)
    {
        for (const auto& [cx, cy] : arm_offsets()[static_cast<std::size_t>(d)])
        {
            put(tile, cx, cy, kind, {}, layer);
        }
    }

    void compile_tile(const coordinate& tile)
    {
        const auto& data = source.get(tile);

        std::vector<direction> in_dirs;
        for (const auto& in : data.incoming)
        {
            in_dirs.push_back(direction_between(tile.ground(), in.ground()));
        }
        std::vector<direction> out_dirs;
        for (const auto& out : source.outgoing_of(tile))
        {
            out_dirs.push_back(direction_between(tile.ground(), out.ground()));
        }

        const std::uint8_t layer = tile.z;
        const auto kind_for_layer = layer == 1 ? cell_kind::crossover : cell_kind::normal;

        switch (data.type)
        {
            case gate_type::pi:
            {
                put(tile, 2, 2, cell_kind::input, data.io_name);
                for (const auto d : out_dirs)
                {
                    put_arm(tile, d);
                }
                break;
            }
            case gate_type::po:
            {
                put(tile, 2, 2, cell_kind::output, data.io_name);
                for (const auto d : in_dirs)
                {
                    put_arm(tile, d);
                }
                break;
            }
            case gate_type::buf:
            {
                // wire segment (either layer); crossing wires use crossover
                // cells in the crossing layer
                put(tile, 2, 2, kind_for_layer, {}, layer);
                for (const auto d : in_dirs)
                {
                    put_arm(tile, d, layer, kind_for_layer);
                }
                for (const auto d : out_dirs)
                {
                    put_arm(tile, d, layer, kind_for_layer);
                }
                break;
            }
            case gate_type::fanout:
            {
                put(tile, 2, 2, cell_kind::normal);
                for (const auto d : in_dirs)
                {
                    put_arm(tile, d);
                }
                for (const auto d : out_dirs)
                {
                    put_arm(tile, d);
                }
                break;
            }
            case gate_type::inv:
            {
                // diagonal-coupler inverter: in/out arms, no center cell,
                // two coupler cells perpendicular to the output direction
                for (const auto d : in_dirs)
                {
                    put_arm(tile, d);
                }
                for (const auto d : out_dirs)
                {
                    put_arm(tile, d);
                }
                const bool horizontal_out =
                    !out_dirs.empty() && (out_dirs[0] == direction::east || out_dirs[0] == direction::west);
                if (horizontal_out)
                {
                    put(tile, 2, 1, cell_kind::normal);
                    put(tile, 2, 3, cell_kind::normal);
                }
                else
                {
                    put(tile, 1, 2, cell_kind::normal);
                    put(tile, 3, 2, cell_kind::normal);
                }
                break;
            }
            case gate_type::and2:
            case gate_type::or2:
            case gate_type::maj3:
            {
                put(tile, 2, 2, cell_kind::normal);  // majority center
                std::array<bool, 4> used{};
                for (const auto d : in_dirs)
                {
                    put_arm(tile, d);
                    used[static_cast<std::size_t>(d)] = true;
                }
                for (const auto d : out_dirs)
                {
                    put_arm(tile, d);
                    used[static_cast<std::size_t>(d)] = true;
                }
                if (data.type != gate_type::maj3)
                {
                    // fix the free arm to 0 (AND) or 1 (OR)
                    const auto fixed = data.type == gate_type::and2 ? cell_kind::fixed_0 : cell_kind::fixed_1;
                    for (std::size_t d = 0; d < 4; ++d)
                    {
                        if (!used[d])
                        {
                            const auto [cx, cy] = inner_arm_cell(static_cast<direction>(d));
                            put(tile, cx, cy, fixed);
                            break;
                        }
                    }
                }
                break;
            }
            default:
                throw design_rule_error{"qca_one: gate type '" + std::string{ntk::gate_type_name(data.type)} +
                                        "' is not part of the QCA ONE library; decompose the network with "
                                        "to_aoi() before physical design"};
        }
    }

    const gate_level_layout& source;
    cell_level_layout result;
};

}  // namespace

cell_level_layout apply_qca_one(const gate_level_layout& layout)
{
    if (layout.topology() != lyt::layout_topology::cartesian)
    {
        throw precondition_error{"apply_qca_one: the QCA ONE library targets Cartesian layouts"};
    }
    qca_builder builder{layout};
    return builder.build();
}

double qca_physical_area_nm2(const cell_level_layout& cells)
{
    return static_cast<double>(cells.width()) * qca_cell_pitch_nm * static_cast<double>(cells.height()) *
           qca_cell_pitch_nm;
}

}  // namespace mnt::gl
