#include "gate_library/bestagon.hpp"

#include "common/types.hpp"

#include <array>
#include <string>
#include <vector>

namespace mnt::gl
{

namespace
{

using lyt::coordinate;
using lyt::gate_level_layout;
using ntk::gate_type;

/// Hexagonal port direction of a tile.
enum class hex_direction : std::uint8_t
{
    up_left,
    up_right,
    down_left,
    down_right
};

hex_direction direction_between(const coordinate& from, const coordinate& to)
{
    const bool even = (from.y & 1) == 0;
    if (to.y == from.y - 1)
    {
        if ((even && to.x == from.x - 1) || (!even && to.x == from.x))
        {
            return hex_direction::up_left;
        }
        if ((even && to.x == from.x) || (!even && to.x == from.x + 1))
        {
            return hex_direction::up_right;
        }
    }
    if (to.y == from.y + 1)
    {
        if ((even && to.x == from.x - 1) || (!even && to.x == from.x))
        {
            return hex_direction::down_left;
        }
        if ((even && to.x == from.x) || (!even && to.x == from.x + 1))
        {
            return hex_direction::down_right;
        }
    }
    throw design_rule_error{"bestagon: connection between non-adjacent hex tiles " + from.to_string() + " -> " +
                            to.to_string()};
}

/// Arm site offsets per direction (outer first), within the 8x6 tile.
const std::array<std::array<std::pair<int, int>, 3>, 4>& arm_offsets()
{
    static const std::array<std::array<std::pair<int, int>, 3>, 4> arms = {{
        {{{1, 0}, {2, 1}, {3, 2}}},  // up_left
        {{{6, 0}, {5, 1}, {4, 2}}},  // up_right
        {{{1, 5}, {2, 4}, {3, 3}}},  // down_left  (meets the center pair)
        {{{6, 5}, {5, 4}, {4, 3}}},  // down_right
    }};
    return arms;
}

class bestagon_builder
{
public:
    explicit bestagon_builder(const gate_level_layout& gate_layout) :
            source{gate_layout},
            // odd rows are shifted right by half a tile
            result{gate_layout.layout_name(), cell_technology::sidb,
                   gate_layout.width() * bestagon_tile_width + bestagon_tile_width / 2,
                   gate_layout.height() * bestagon_tile_height}
    {}

    cell_level_layout build()
    {
        for (const auto& t : source.tiles_sorted())
        {
            compile_tile(t);
        }
        return std::move(result);
    }

private:
    void put(const coordinate& tile, const int cx, const int cy, const cell_kind kind, const std::string& name = {},
             const std::uint8_t layer = 0)
    {
        const auto shift = (tile.y & 1) != 0 ? static_cast<std::int32_t>(bestagon_tile_width / 2) : 0;
        const coordinate pos{tile.x * static_cast<std::int32_t>(bestagon_tile_width) + shift + cx,
                             tile.y * static_cast<std::int32_t>(bestagon_tile_height) + cy, layer};
        if (!result.is_empty_cell(pos))
        {
            return;
        }
        cell c{};
        c.kind = kind;
        c.name = name;
        result.place_cell(pos, std::move(c), source.clock_number(tile));
    }

    void put_arm(const coordinate& tile, const hex_direction d, const std::uint8_t layer,
                 const cell_kind kind = cell_kind::normal)
    {
        for (const auto& [cx, cy] : arm_offsets()[static_cast<std::size_t>(d)])
        {
            put(tile, cx, cy, kind, {}, layer);
        }
    }

    void compile_tile(const coordinate& tile)
    {
        const auto& data = source.get(tile);
        if (data.type == gate_type::maj3)
        {
            throw design_rule_error{
                "bestagon: the Bestagon library provides no majority gate; decompose with decompose_maj()"};
        }

        const std::uint8_t layer = tile.z;
        const auto kind = layer == 1 ? cell_kind::crossover : cell_kind::normal;

        // center dot pair
        if (data.type == gate_type::pi)
        {
            put(tile, 3, 3, cell_kind::input, data.io_name);
            put(tile, 4, 3, cell_kind::normal, {}, layer);
        }
        else if (data.type == gate_type::po)
        {
            put(tile, 3, 3, cell_kind::output, data.io_name);
            put(tile, 4, 3, cell_kind::normal, {}, layer);
        }
        else
        {
            put(tile, 3, 3, kind, {}, layer);
            put(tile, 4, 3, kind, {}, layer);
        }

        for (const auto& in : data.incoming)
        {
            put_arm(tile, direction_between(tile.ground(), in.ground()), layer, kind);
        }
        for (const auto& out : source.outgoing_of(tile))
        {
            put_arm(tile, direction_between(tile.ground(), out.ground()), layer, kind);
        }

        // inverters carry an extra perturber dot that flips the signal
        if (data.type == gate_type::inv || data.type == gate_type::nand2 || data.type == gate_type::nor2 ||
            data.type == gate_type::xnor2)
        {
            put(tile, 2, 3, cell_kind::fixed_1, {}, layer);
        }
    }

    const gate_level_layout& source;
    cell_level_layout result;
};

}  // namespace

cell_level_layout apply_bestagon(const gate_level_layout& layout)
{
    if (layout.topology() != lyt::layout_topology::hexagonal_even_row ||
        layout.clocking().kind() != lyt::clocking_kind::row)
    {
        throw precondition_error{"apply_bestagon: the Bestagon library targets hexagonal ROW-clocked layouts"};
    }
    bestagon_builder builder{layout};
    return builder.build();
}

double bestagon_physical_area_nm2(const cell_level_layout& cells)
{
    return static_cast<double>(cells.width()) * bestagon_site_pitch_x_nm * static_cast<double>(cells.height()) *
           bestagon_site_pitch_y_nm;
}

}  // namespace mnt::gl
