#pragma once

/// \file cell_layout.hpp
/// \brief Cell-level FCN layouts: the physical realization beneath the
///        gate level. QCA layouts consist of quantum-dot cells on a square
///        grid; SiDB layouts consist of dangling-bond dots on the
///        hydrogen-passivated silicon lattice (abstracted to a grid here;
///        see DESIGN.md §4 for the simplification).

#include "layout/coordinates.hpp"

#include "common/types.hpp"

#include <cstdint>
#include <string>
#include <unordered_map>

namespace mnt::gl
{

/// Implementation technology of a cell-level layout.
enum class cell_technology : std::uint8_t
{
    /// Quantum-dot Cellular Automata (QCA ONE library).
    qca,
    /// Silicon Dangling Bonds (Bestagon library).
    sidb
};

/// Returns "QCA" or "SiDB".
[[nodiscard]] std::string technology_name(cell_technology tech);

/// Role of a single cell.
enum class cell_kind : std::uint8_t
{
    /// Regular logic/wire cell.
    normal,
    /// Primary input cell.
    input,
    /// Primary output cell.
    output,
    /// Polarization fixed to -1 (logic 0); turns a majority into AND.
    fixed_0,
    /// Polarization fixed to +1 (logic 1); turns a majority into OR.
    fixed_1,
    /// Vertical interconnect cell of a wire crossing (QCA: rotated cell).
    crossover
};

/// A single cell.
struct cell
{
    cell_kind kind{cell_kind::normal};
    /// PI/PO name for input/output cells.
    std::string name;
};

/// A sparse cell-level layout. Coordinates are cell positions (x, y) with
/// z = 1 for the crossing layer; the clock zone of each cell is inherited
/// from its gate-level tile and stored explicitly.
class cell_level_layout
{
public:
    cell_level_layout(std::string layout_name, cell_technology tech, std::uint32_t width, std::uint32_t height);

    [[nodiscard]] const std::string& layout_name() const noexcept;
    [[nodiscard]] cell_technology technology() const noexcept;

    /// Dimensions in cells.
    [[nodiscard]] std::uint32_t width() const noexcept;
    [[nodiscard]] std::uint32_t height() const noexcept;

    /// Places a cell.
    ///
    /// \throws mnt::precondition_error if the position is occupied or
    ///         out of bounds
    void place_cell(const lyt::coordinate& c, cell cell_data, std::uint8_t clock_zone);

    [[nodiscard]] bool is_empty_cell(const lyt::coordinate& c) const;

    /// Read access; throws if empty.
    [[nodiscard]] const cell& get_cell(const lyt::coordinate& c) const;

    /// Clock zone of an occupied cell.
    [[nodiscard]] std::uint8_t clock_zone_of(const lyt::coordinate& c) const;

    [[nodiscard]] std::size_t num_cells() const noexcept;
    [[nodiscard]] std::size_t num_input_cells() const;
    [[nodiscard]] std::size_t num_output_cells() const;

    /// Iterates all cells: fn(coordinate, cell, clock_zone).
    template <typename Fn>
    void foreach_cell(Fn&& fn) const
    {
        for (const auto& [c, payload] : cells)
        {
            fn(c, payload.first, payload.second);
        }
    }

    /// All occupied positions in deterministic (y, x, z) order.
    [[nodiscard]] std::vector<lyt::coordinate> cells_sorted() const;

private:
    std::string name;
    cell_technology tech;
    std::uint32_t w;
    std::uint32_t h;
    std::unordered_map<lyt::coordinate, std::pair<cell, std::uint8_t>, lyt::coordinate_hash> cells;
};

}  // namespace mnt::gl
