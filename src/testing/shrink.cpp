#include "testing/shrink.hpp"

#include "network/gate_type.hpp"

namespace mnt::pbt
{

std::string shrink_bytes(std::string input, const std::function<bool(const std::string&)>& still_fails,
                         const std::size_t max_checks)
{
    return detail::greedy_delete(std::move(input), still_fails, max_checks);
}

namespace
{

/// Rebuilds \p network without \p victim. Gates/buffers/fan-outs are spliced
/// out by mapping their id to their first fanin's image; POs and PIs are
/// simply not recreated. Callers guarantee the removal keeps the network
/// well-formed (a skipped PI has no fanout, a skipped PO is not the last).
ntk::logic_network rebuild_without(const ntk::logic_network& network, const ntk::logic_network::node victim)
{
    using ntk::gate_type;
    ntk::logic_network out{network.network_name()};
    std::vector<ntk::logic_network::node> image(network.size(), ntk::logic_network::invalid_node);
    image[network.get_constant(false)] = out.get_constant(false);
    image[network.get_constant(true)] = out.get_constant(true);

    for (ntk::logic_network::node n = 2; n < static_cast<ntk::logic_network::node>(network.size()); ++n)
    {
        const auto t = network.type(n);
        if (n == victim)
        {
            if (t != gate_type::pi && t != gate_type::po)
            {
                image[n] = image[network.fanins(n).front()];
            }
            continue;
        }
        if (t == gate_type::pi)
        {
            image[n] = out.create_pi(network.name_of(n));
        }
        else if (t == gate_type::po)
        {
            image[n] = out.create_po(image[network.fanins(n).front()], network.name_of(n));
        }
        else
        {
            std::vector<ntk::logic_network::node> fanins;
            for (const auto f : network.fanins(n))
            {
                fanins.push_back(image[f]);
            }
            image[n] = out.create_gate(t, fanins);
        }
    }
    return out;
}

}  // namespace

ntk::logic_network shrink_network(ntk::logic_network input,
                                  const std::function<bool(const ntk::logic_network&)>& still_fails,
                                  const std::size_t max_checks)
{
    using ntk::gate_type;
    std::size_t checks = 0;
    bool progress = true;
    while (progress && checks < max_checks)
    {
        progress = false;
        // newest-first removes from the top of the cone, which tends to
        // detach whole subtrees for the following iterations
        for (auto n = static_cast<ntk::logic_network::node>(input.size()); n-- > 2 && checks < max_checks;)
        {
            const auto t = input.type(n);
            const bool removable = ntk::is_logic_gate(t) || t == gate_type::buf || t == gate_type::fanout ||
                                   (t == gate_type::po && input.num_pos() > 1) ||
                                   (t == gate_type::pi && input.fanout_size(n) == 0 && input.num_pis() > 1);
            if (!removable)
            {
                continue;
            }
            auto candidate = rebuild_without(input, n);
            ++checks;
            if (still_fails(candidate))
            {
                input = std::move(candidate);
                progress = true;
                break;  // node ids shifted; restart the scan
            }
        }
    }
    return input;
}

}  // namespace mnt::pbt
