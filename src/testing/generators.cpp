#include "testing/generators.hpp"

#include "io/fgl_writer.hpp"
#include "io/verilog_writer.hpp"
#include "physical_design/ortho.hpp"

#include <algorithm>
#include <optional>
#include <sstream>
#include <utility>

namespace mnt::pbt
{

// ------------------------------------------------------- network generator

std::vector<ntk::gate_type> network_gate_pool(const network_spec& spec)
{
    using ntk::gate_type;
    // weighted by repetition: AND/OR shapes dominate like in technology-
    // mapped benchmarks, inverters are common, comparators rare
    std::vector<gate_type> pool{gate_type::and2, gate_type::and2, gate_type::or2,  gate_type::or2,
                                gate_type::inv,  gate_type::inv,  gate_type::nand2, gate_type::nor2,
                                gate_type::lt2,  gate_type::gt2,  gate_type::le2,   gate_type::ge2};
    if (spec.allow_xor)
    {
        pool.push_back(gate_type::xor2);
        pool.push_back(gate_type::xor2);
        pool.push_back(gate_type::xnor2);
    }
    if (spec.allow_maj)
    {
        pool.push_back(gate_type::maj3);
    }
    return pool;
}

namespace
{

/// Partial constant evaluation: the value a gate folds to when its fanins'
/// fold values are \p fanin_values, or nullopt when it stays input-dependent.
/// Brute-forces the unknown inputs, so every domination rule of
/// ntk::propagate_constants (AND with 0, GE with 0, ...) is covered.
std::optional<bool> fold_value(const ntk::gate_type t, const std::vector<std::optional<bool>>& fanin_values)
{
    std::vector<std::size_t> unknown;
    bool inputs[3] = {false, false, false};
    for (std::size_t i = 0; i < fanin_values.size(); ++i)
    {
        if (fanin_values[i].has_value())
        {
            inputs[i] = *fanin_values[i];
        }
        else
        {
            unknown.push_back(i);
        }
    }
    std::optional<bool> folded;
    for (std::size_t mask = 0; mask < (std::size_t{1} << unknown.size()); ++mask)
    {
        for (std::size_t bit = 0; bit < unknown.size(); ++bit)
        {
            inputs[unknown[bit]] = ((mask >> bit) & 1U) != 0;
        }
        const bool value = ntk::evaluate_gate(t, inputs[0], inputs[1], inputs[2]);
        if (!folded.has_value())
        {
            folded = value;
        }
        else if (*folded != value)
        {
            return std::nullopt;
        }
    }
    return folded;
}

}  // namespace

ntk::logic_network random_network(rng& random, const network_spec& spec)
{
    ntk::logic_network network{spec.name};

    // fold value per node: the physical design tools reject networks whose
    // POs constant-propagate to constants, so the generator tracks folding
    // and never drives a PO from a folding signal
    std::vector<std::optional<bool>> node_fold;
    const auto fold_of = [&](const ntk::logic_network::node n) -> std::optional<bool>
    { return n < node_fold.size() ? node_fold[n] : std::nullopt; };
    const auto record_fold = [&](const ntk::logic_network::node n, const std::optional<bool> value)
    {
        if (n >= node_fold.size())
        {
            node_fold.resize(n + 1);
        }
        node_fold[n] = value;
    };
    record_fold(network.get_constant(false), false);
    record_fold(network.get_constant(true), true);

    const auto num_pis = static_cast<std::size_t>(random.range(spec.min_pis, spec.max_pis));
    const auto num_pos = static_cast<std::size_t>(random.range(spec.min_pos, spec.max_pos));
    const auto num_gates = static_cast<std::size_t>(random.range(spec.min_gates, spec.max_gates));

    std::vector<ntk::logic_network::node> signals;
    signals.reserve(num_pis + num_gates);
    for (std::size_t i = 0; i < num_pis; ++i)
    {
        signals.push_back(network.create_pi("x" + std::to_string(i)));
    }

    // PIs not yet used as a fanin; preferred while any remain so that every
    // input reaches logic when the gate budget allows
    std::vector<ntk::logic_network::node> unused_pis = signals;
    auto previous = ntk::logic_network::invalid_node;

    const auto draw_fanin = [&]() -> ntk::logic_network::node
    {
        if (!unused_pis.empty() && random.chance(60, 100))
        {
            const auto index = static_cast<std::size_t>(random.below(unused_pis.size()));
            const auto n = unused_pis[index];
            unused_pis.erase(unused_pis.begin() + static_cast<std::ptrdiff_t>(index));
            return n;
        }
        if (previous != ntk::logic_network::invalid_node && random.chance(spec.chain_percent, 100))
        {
            return previous;
        }
        if (random.chance(spec.constant_percent, 100))
        {
            return network.get_constant(random.chance(1, 2));
        }
        const auto window = spec.window == 0 ? signals.size() : std::min(spec.window, signals.size());
        return signals[signals.size() - window + static_cast<std::size_t>(random.below(window))];
    };

    const auto pool = network_gate_pool(spec);
    for (std::size_t g = 0; g < num_gates; ++g)
    {
        const auto t = pool[static_cast<std::size_t>(random.below(pool.size()))];
        std::vector<ntk::logic_network::node> fanins;
        for (std::uint8_t i = 0; i < ntk::gate_arity(t); ++i)
        {
            fanins.push_back(draw_fanin());
        }
        const auto n = network.create_gate(t, fanins);
        std::vector<std::optional<bool>> fanin_values;
        fanin_values.reserve(fanins.size());
        for (const auto fi : fanins)
        {
            fanin_values.push_back(fold_of(fi));
        }
        record_fold(n, fold_value(t, fanin_values));
        signals.push_back(n);
        previous = n;
    }

    // unused PIs that never became a fanin still count toward the interface;
    // drive POs by distinct signals, newest first, so outputs usually depend
    // on the whole cone
    std::vector<ntk::logic_network::node> po_sources;
    const auto used = [&](const ntk::logic_network::node n)
    { return std::find(po_sources.begin(), po_sources.end(), n) != po_sources.end(); };
    for (std::size_t j = 0; j < num_pos; ++j)
    {
        ntk::logic_network::node source = ntk::logic_network::invalid_node;
        for (std::size_t attempt = 0; attempt < 8; ++attempt)
        {
            const auto candidate =
                signals[signals.size() - 1 - static_cast<std::size_t>(random.below(std::min<std::size_t>(
                                                 signals.size(), num_gates == 0 ? signals.size() : num_gates + 2)))];
            if (fold_of(candidate).has_value())
            {
                continue;  // would constant-propagate to a constant PO
            }
            source = candidate;
            if (!used(candidate))
            {
                break;
            }
        }
        if (source == ntk::logic_network::invalid_node)
        {
            // newest non-folding signal, preferring unused ones; PIs never
            // fold, so at least one candidate always exists
            for (auto it = signals.rbegin(); it != signals.rend(); ++it)
            {
                if (!fold_of(*it).has_value() && (source == ntk::logic_network::invalid_node || !used(*it)))
                {
                    source = *it;
                    if (!used(*it))
                    {
                        break;
                    }
                }
            }
        }
        po_sources.push_back(source);
        network.create_po(source, "y" + std::to_string(j));
    }

    return network;
}

// ------------------------------------------------------ document generators

namespace
{

/// Splits into lines (keeping content only; separators re-added on join).
std::vector<std::string> split_lines(const std::string& text)
{
    std::vector<std::string> lines;
    std::size_t start = 0;
    while (start <= text.size())
    {
        const auto eol = text.find('\n', start);
        if (eol == std::string::npos)
        {
            lines.push_back(text.substr(start));
            break;
        }
        lines.push_back(text.substr(start, eol - start));
        start = eol + 1;
    }
    return lines;
}

std::string join_lines(const std::vector<std::string>& lines)
{
    std::string out;
    for (std::size_t i = 0; i < lines.size(); ++i)
    {
        out += lines[i];
        if (i + 1 < lines.size())
        {
            out += '\n';
        }
    }
    return out;
}

/// Replaces the first occurrence of \p from after a random offset.
void swap_token(rng& random, std::string& text, const std::string& from, const std::string& to)
{
    if (text.empty() || from.empty())
    {
        return;
    }
    const auto offset = static_cast<std::size_t>(random.below(text.size()));
    auto pos = text.find(from, offset);
    if (pos == std::string::npos)
    {
        pos = text.find(from);
    }
    if (pos != std::string::npos)
    {
        text.replace(pos, from.size(), to);
    }
}

/// Replaces a random digit run with a random (possibly hostile) number.
void corrupt_number(rng& random, std::string& text)
{
    const auto is_digit = [](const char c) { return c >= '0' && c <= '9'; };
    if (text.empty())
    {
        return;
    }
    auto pos = static_cast<std::size_t>(random.below(text.size()));
    for (std::size_t steps = 0; steps < text.size() && !is_digit(text[pos]); ++steps)
    {
        pos = (pos + 1) % text.size();
    }
    if (!is_digit(text[pos]))
    {
        return;
    }
    auto end = pos;
    while (end < text.size() && is_digit(text[end]))
    {
        ++end;
    }
    static const std::vector<std::string> numbers{"0",  "-1", "2147483648", "99999999999999999999",
                                                  "7",  "-0", "1000000000", "0x10",
                                                  "00", "3.5"};
    std::string replacement = numbers[static_cast<std::size_t>(random.below(numbers.size()))];
    text.replace(pos, end - pos, replacement);
}

void mutate_document(rng& random, std::string& document, const document_spec& spec,
                     const std::vector<std::pair<std::string, std::string>>& token_swaps)
{
    const auto mutations = random.range(spec.min_mutations, spec.max_mutations);
    for (std::uint64_t m = 0; m < mutations; ++m)
    {
        switch (random.below(8))
        {
            case 0:  // delete a random line
            {
                auto lines = split_lines(document);
                if (lines.size() > 1)
                {
                    lines.erase(lines.begin() + static_cast<std::ptrdiff_t>(random.below(lines.size())));
                    document = join_lines(lines);
                }
                break;
            }
            case 1:  // duplicate a random line
            {
                auto lines = split_lines(document);
                if (!lines.empty())
                {
                    const auto index = static_cast<std::size_t>(random.below(lines.size()));
                    lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(index), lines[index]);
                    document = join_lines(lines);
                }
                break;
            }
            case 2: corrupt_number(random, document); break;
            case 3:  // flip one byte
                if (!document.empty())
                {
                    document[static_cast<std::size_t>(random.below(document.size()))] =
                        static_cast<char>(random.range(1, 255));
                }
                break;
            case 4:  // token swap from the format vocabulary
            {
                const auto& [from, to] = token_swaps[static_cast<std::size_t>(random.below(token_swaps.size()))];
                swap_token(random, document, from, to);
                break;
            }
            case 5:  // insert junk
            {
                static const std::vector<std::string> junk{"<junk/>", "<!-- x -->", "\xff\xfe", "  ", "\t\t",
                                                           "</gate>", "1'bz",       "//",       "&"};
                const auto pos = static_cast<std::size_t>(random.below(document.size() + 1));
                document.insert(pos, junk[static_cast<std::size_t>(random.below(junk.size()))]);
                break;
            }
            case 6:  // truncate the tail
                if (document.size() > 4 && random.chance(1, 3))
                {
                    document.resize(document.size() - random.range(1, document.size() / 2));
                }
                break;
            case 7:  // duplicate a random span (oversized lists, repeated elements)
            {
                if (!document.empty())
                {
                    const auto pos = static_cast<std::size_t>(random.below(document.size()));
                    const auto len =
                        std::min<std::size_t>(document.size() - pos, static_cast<std::size_t>(random.range(1, 40)));
                    document.insert(pos, document.substr(pos, len));
                }
                break;
            }
        }
    }
}

std::string scratch_tag_soup(rng& random, const std::vector<std::string>& vocabulary)
{
    std::string out;
    const auto pieces = random.range(3, 40);
    for (std::uint64_t i = 0; i < pieces; ++i)
    {
        const auto& word = vocabulary[static_cast<std::size_t>(random.below(vocabulary.size()))];
        switch (random.below(4))
        {
            case 0: out += "<" + word + ">"; break;
            case 1: out += "</" + word + ">"; break;
            case 2: out += word; break;
            case 3: out += std::to_string(random.below(1000)); break;
        }
        if (random.chance(1, 3))
        {
            out += '\n';
        }
    }
    return out;
}

}  // namespace

std::string random_fgl_document(rng& random, const document_spec& spec)
{
    static const std::vector<std::string> vocabulary{"fgl",  "layout", "name",     "topology", "clocking",
                                                     "size", "x",      "y",        "z",        "gates",
                                                     "gate", "type",   "loc",      "incoming", "clockzones",
                                                     "zone", "clock",  "cartesian", "2DDWave",  "pi"};
    if (random.chance(spec.scratch_percent, 100))
    {
        return scratch_tag_soup(random, vocabulary);
    }

    // a valid serialization of a small random layout as the mutation seed
    network_spec shape{};
    shape.max_pis = 4;
    shape.max_gates = 8;
    shape.allow_maj = false;  // keep the seed layouts small and fast
    auto seed_rng = random.split();
    const auto network = random_network(seed_rng, shape);
    auto document = io::write_fgl_string(pd::ortho(network));

    static const std::vector<std::pair<std::string, std::string>> swaps{
        {"cartesian", "hexagonal"}, {"cartesian", "spherical"}, {"2DDWave", "OPEN"},
        {"2DDWave", "USE"},         {"2DDWave", "NONSUCH"},     {"<type>", "<typo>"},
        {"pi", "frobnicator"},      {"and", "xand"},            {"<loc>", "<lolc>"},
        {"incoming", "outgoing"},   {"</gate>", ""},            {"<x>", "<x><x>"},
    };
    mutate_document(random, document, spec, swaps);
    return document;
}

std::string random_verilog_document(rng& random, const document_spec& spec)
{
    static const std::vector<std::string> vocabulary{"module", "endmodule", "input",  "output", "wire",
                                                     "assign", "and",       "or",     "not",    "maj",
                                                     "1'b0",   "1'b1",      "(",      ")",      ";",
                                                     "=",      "&",         "|",      "^",      "~"};
    if (random.chance(spec.scratch_percent, 100))
    {
        return scratch_tag_soup(random, vocabulary);
    }

    network_spec shape{};
    shape.max_pis = 5;
    shape.max_gates = 10;
    auto seed_rng = random.split();
    const auto network = random_network(seed_rng, shape);
    const auto style = random.chance(1, 2) ? io::verilog_style::assignments : io::verilog_style::primitives;
    auto document = io::write_verilog_string(network, style);

    static const std::vector<std::pair<std::string, std::string>> swaps{
        {"endmodule", ""},         {"module", "nodule"},     {"assign", "assing"},
        {"input", "inout"},        {"output", "input"},      {"wire", "reg"},
        {"1'b0", "4'b1010"},       {"1'b1", "1'bz"},         {"=", "=="},
        {";", ""},                 {"(", "(("},              {"&", "&&&"},
    };
    mutate_document(random, document, spec, swaps);
    return document;
}

// ------------------------------------------------- layout mutation programs

std::string layout_op::to_string() const
{
    const auto coord = [](const lyt::coordinate& c)
    { return "(" + std::to_string(c.x) + "," + std::to_string(c.y) + "," + std::to_string(c.z) + ")"; };
    switch (kind)
    {
        case layout_op_kind::place:
            return "place " + std::string{ntk::gate_type_name(type)} + " " + coord(a);
        case layout_op_kind::connect: return "connect " + coord(a) + " -> " + coord(b);
        case layout_op_kind::disconnect: return "disconnect " + coord(a) + " -> " + coord(b);
        case layout_op_kind::clear: return "clear " + coord(a);
        case layout_op_kind::move: return "move " + coord(a) + " -> " + coord(b);
        case layout_op_kind::resize:
            return "resize " + std::to_string(a.x + 1) + "x" + std::to_string(a.y + 1);
    }
    return "?";
}

std::string layout_ops_to_string(const std::vector<layout_op>& ops)
{
    std::string out;
    for (const auto& op : ops)
    {
        out += op.to_string();
        out += '\n';
    }
    return out;
}

std::vector<layout_op> random_layout_ops(rng& random, const std::size_t length, const std::uint32_t side)
{
    using ntk::gate_type;
    static const std::vector<gate_type> types{gate_type::pi,   gate_type::po,     gate_type::buf,
                                             gate_type::buf,  gate_type::inv,    gate_type::and2,
                                             gate_type::xor2, gate_type::fanout, gate_type::maj3};

    const auto random_coordinate = [&]() -> lyt::coordinate
    {
        // mostly in bounds; occasionally just outside to exercise rejection
        const auto limit = static_cast<std::uint64_t>(side) + (random.chance(1, 16) ? 2 : 0);
        return lyt::coordinate{static_cast<std::int32_t>(random.below(limit)),
                               static_cast<std::int32_t>(random.below(limit)),
                               static_cast<std::uint8_t>(random.chance(1, 10) ? 1 : 0)};
    };

    std::vector<layout_op> ops;
    ops.reserve(length);
    for (std::size_t i = 0; i < length; ++i)
    {
        layout_op op{};
        const auto roll = random.below(100);
        if (roll < 40)
        {
            op.kind = layout_op_kind::place;
            op.a = random_coordinate();
            op.type = types[static_cast<std::size_t>(random.below(types.size()))];
        }
        else if (roll < 65)
        {
            op.kind = layout_op_kind::connect;
            op.a = random_coordinate();
            op.b = random_coordinate();
        }
        else if (roll < 75)
        {
            op.kind = layout_op_kind::disconnect;
            op.a = random_coordinate();
            op.b = random_coordinate();
        }
        else if (roll < 85)
        {
            op.kind = layout_op_kind::clear;
            op.a = random_coordinate();
        }
        else if (roll < 95)
        {
            op.kind = layout_op_kind::move;
            op.a = random_coordinate();
            op.b = random_coordinate();
        }
        else
        {
            op.kind = layout_op_kind::resize;
            // resize target in [side/2, side + 2] per dimension
            op.a = lyt::coordinate{static_cast<std::int32_t>(random.range(side / 2, side + 2)),
                                   static_cast<std::int32_t>(random.range(side / 2, side + 2))};
        }
        ops.push_back(op);
    }
    return ops;
}

// -------------------------------------------------- HTTP request generator

std::string random_http_request(rng& random)
{
    static const std::vector<std::string> methods{"GET", "GET", "GET", "POST", "PUT", "HEAD", "BREW", "get"};
    static const std::vector<std::string> paths{
        "/healthz", "/benchmarks", "/layouts",  "/facets",      "/best",
        "/nope",    "/download",   "/download/", "/download/abc", "/layouts/extra",
        "/",        "//layouts",   "/LAYOUTS"};
    static const std::vector<std::string> keys{"set",   "name",  "library", "clocking", "algorithm",
                                               "opt",   "best",  "sort",    "order",    "offset",
                                               "limit", "facets", "bogus"};
    static const std::vector<std::string> values{"Trindade16", "Fontes18",  "QCA ONE", "Bestagon", "2DDWave",
                                                 "USE",        "exact",     "ortho",   "NPR",      "PLO",
                                                 "area",       "runtime",   "asc",     "desc",     "true",
                                                 "false",      "0",         "50",      "-3",       "1e9",
                                                 "2%3A1+MUX",  "%zz",       "%",       "+",        "cmos",
                                                 "999999999999999999999"};

    const auto shape = random.below(100);
    if (shape >= 85)
    {
        // raw garbage / truncated heads
        std::string out;
        const auto n = random.range(0, 200);
        for (std::uint64_t i = 0; i < n; ++i)
        {
            out += static_cast<char>(random.range(0, 255));
        }
        if (random.chance(1, 2))
        {
            out = "GET /layo" + out;  // looks like a request for a while
        }
        return out;
    }

    std::string target = paths[static_cast<std::size_t>(random.below(paths.size()))];
    if (target == "/download/abc" && random.chance(3, 4))
    {
        // sometimes a syntactically valid 32-hex id (unlikely to exist)
        target = "/download/";
        for (int i = 0; i < 32; ++i)
        {
            target += "0123456789abcdef"[random.below(16)];
        }
    }
    const auto params = random.below(5);
    for (std::uint64_t p = 0; p < params; ++p)
    {
        target += p == 0 ? '?' : '&';
        target += keys[static_cast<std::size_t>(random.below(keys.size()))];
        if (random.chance(9, 10))
        {
            target += '=';
            target += values[static_cast<std::size_t>(random.below(values.size()))];
        }
    }

    std::string body;
    if (random.chance(1, 3))
    {
        static const std::vector<std::string> bodies{
            R"({"best_only": true})",
            R"({"set": "Trindade16", "limit": 5})",
            R"({"sort": "area", "order": "desc", "offset": 1})",
            R"({"limit": "ten"})",
            R"({"unknown_member": 1})",
            R"({)",
            R"([1, 2, 3])",
            "not json at all",
            std::string(64, '{'),
        };
        body = bodies[static_cast<std::size_t>(random.below(bodies.size()))];
    }

    std::string head = methods[static_cast<std::size_t>(random.below(methods.size()))] + " " + target;
    if (random.chance(19, 20))
    {
        head += " HTTP/1.1";
    }
    else
    {
        head += random.chance(1, 2) ? " HTTP/2.0" : "";
    }
    std::string request = head + "\r\n";
    request += "Host: 127.0.0.1\r\n";
    if (random.chance(1, 4))
    {
        request += "X-Fuzz: " + std::to_string(random.next()) + "\r\n";
    }
    if (!body.empty() || random.chance(1, 8))
    {
        switch (random.below(4))
        {
            case 0: request += "Content-Length: " + std::to_string(body.size()) + "\r\n"; break;
            case 1: request += "Content-Length: " + std::to_string(body.size() + random.range(1, 64)) + "\r\n"; break;
            case 2: request += "Content-Length: 18446744073709551615\r\n"; break;
            case 3: request += "Content-Length: banana\r\n"; break;
        }
    }
    request += "\r\n";
    request += body;
    if (random.chance(1, 16) && !request.empty())
    {
        request.resize(static_cast<std::size_t>(random.below(request.size())));
    }
    return request;
}

std::string random_catalog_target(rng& random)
{
    // weights approximate a browsing session: page queries dominate, facet
    // refreshes and best-of tables follow, liveness probes trail
    const auto shape = random.below(100);
    if (shape < 8)
    {
        return "/healthz";
    }
    if (shape < 20)
    {
        return "/benchmarks";
    }
    if (shape < 32)
    {
        return "/facets";
    }
    if (shape < 44)
    {
        return random.chance(1, 2) ? "/best" : "/best?set=Trindade16";
    }

    // a well-formed /layouts page: every value below is a valid instance of
    // its parameter, so the server must answer 200
    static const std::vector<std::string> sets{"Trindade16", "Fontes18"};
    // percent-encoded: these land in a request line, where a raw space
    // would terminate the target early
    static const std::vector<std::string> libraries{"QCA%20ONE", "Bestagon"};
    static const std::vector<std::string> sorts{"area", "benchmark", "algorithm", "runtime"};

    std::string target = "/layouts";
    char separator = '?';
    const auto add = [&](const std::string& key, const std::string& value)
    {
        target += separator;
        target += key + "=" + value;
        separator = '&';
    };
    if (random.chance(1, 3))
    {
        add("set", sets[static_cast<std::size_t>(random.below(sets.size()))]);
    }
    if (random.chance(1, 3))
    {
        add("library", libraries[static_cast<std::size_t>(random.below(libraries.size()))]);
    }
    if (random.chance(1, 2))
    {
        add("sort", sorts[static_cast<std::size_t>(random.below(sorts.size()))]);
        if (random.chance(1, 2))
        {
            add("order", random.chance(1, 2) ? "asc" : "desc");
        }
    }
    if (random.chance(1, 4))
    {
        add("offset", std::to_string(random.below(4)));
    }
    if (random.chance(1, 3))
    {
        add("limit", std::to_string(1 + random.below(50)));
    }
    if (random.chance(1, 4))
    {
        add("facets", "true");
    }
    return target;
}

}  // namespace mnt::pbt
