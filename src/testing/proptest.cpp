#include "testing/proptest.hpp"

#include <cstdlib>

namespace mnt::pbt
{

proptest_config proptest_config::from_environment(std::string property, const std::size_t default_cases)
{
    proptest_config config{};
    config.property = std::move(property);
    config.cases = default_cases;

    bool seed_from_env = false;
    if (const char* seed = std::getenv("MNT_PROPTEST_SEED"); seed != nullptr && *seed != '\0')
    {
        // base 0 accepts both decimal and the 0x... form the reports print
        config.seed = std::strtoull(seed, nullptr, 0);
        seed_from_env = true;
    }
    if (const char* cases = std::getenv("MNT_PROPTEST_CASES"); cases != nullptr && *cases != '\0')
    {
        const auto parsed = std::strtoull(cases, nullptr, 10);
        if (parsed > 0)
        {
            config.cases = static_cast<std::size_t>(parsed);
        }
    }
    config.replay_single = seed_from_env && config.cases == 1;
    return config;
}

std::uint64_t derive_case_seed(const std::uint64_t master_seed, const std::string_view property,
                               const std::size_t case_index)
{
    std::uint64_t name_hash = 1469598103934665603ull;  // FNV-1a
    for (const char c : property)
    {
        name_hash = (name_hash ^ static_cast<unsigned char>(c)) * 1099511628211ull;
    }
    rng mixer{master_seed ^ name_hash ^ (0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(case_index) + 1))};
    return mixer.next();
}

namespace
{

std::string hex_seed(const std::uint64_t seed)
{
    static constexpr char digits[] = "0123456789abcdef";
    std::string out{"0x"};
    bool significant = false;
    for (int shift = 60; shift >= 0; shift -= 4)
    {
        const auto nibble = (seed >> static_cast<unsigned>(shift)) & 0xFU;
        if (nibble != 0 || significant || shift == 0)
        {
            out += digits[nibble];
            significant = true;
        }
    }
    return out;
}

}  // namespace

std::string replay_command(const proptest_config& config, const std::uint64_t case_seed)
{
    std::string command = "MNT_PROPTEST_SEED=" + hex_seed(case_seed) + " MNT_PROPTEST_CASES=1 ./tests/";
    command += config.binary.empty() ? "<test-binary>" : config.binary;
    if (!config.gtest_filter.empty())
    {
        command += " --gtest_filter=" + config.gtest_filter;
    }
    return command;
}

std::string proptest_result::report() const
{
    if (!failure.has_value())
    {
        return {};
    }
    const auto& f = *failure;
    std::string out = "property failed at case " + std::to_string(f.case_index) + " (seed " + hex_seed(f.case_seed) +
                      "):\n  " + f.reason + "\n";
    if (!f.reproducer.empty())
    {
        out += "shrunk reproducer";
        if (f.shrunk_reason != f.reason)
        {
            out += " (fails with: " + f.shrunk_reason + ")";
        }
        out += ":\n";
        out += f.reproducer;
        if (out.back() != '\n')
        {
            out += '\n';
        }
    }
    out += "replay: " + f.replay + "\n";
    return out;
}

}  // namespace mnt::pbt
