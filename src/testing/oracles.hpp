#pragma once

/// \file oracles.hpp
/// \brief Cross-stack correctness oracles for property-based testing: each
///        function packages one invariant the repository promises — "every
///        layout is equivalent to its specification", "accepted .fgl
///        documents reach a byte fixpoint", "the query engine matches the
///        linear scan" — as a composable predicate over generated inputs.
///
/// Oracles return \ref oracle_result instead of asserting, so the harness
/// (proptest.hpp) can shrink the failing input and render a reproducer
/// before reporting. Oracles only catch the repository's typed errors
/// (mnt::mnt_error); anything else — a crash, a foreign exception, a
/// sanitizer finding — escapes to the harness and fails the property.

#include "core/catalog.hpp"
#include "core/filters.hpp"
#include "common/resilience.hpp"
#include "layout/gate_level_layout.hpp"
#include "network/logic_network.hpp"
#include "physical_design/nanoplacer.hpp"
#include "service/query.hpp"
#include "service/server.hpp"
#include "testing/generators.hpp"

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

namespace mnt::pbt
{

/// Outcome of one oracle application.
struct oracle_result
{
    bool passed{true};

    /// First violated invariant (empty on success).
    std::string reason;

    [[nodiscard]] static oracle_result pass()
    {
        return {};
    }

    [[nodiscard]] static oracle_result fail(std::string reason)
    {
        return {false, std::move(reason)};
    }

    explicit operator bool() const noexcept
    {
        return passed;
    }
};

// ------------------------------------------------------- pipeline oracles

/// True when some primary output of \p network constant-propagates to a
/// constant. The physical design tools reject such networks by documented
/// precondition ("constant primary outputs are not supported on FCN
/// layouts"), so pipeline oracles treat them as vacuously passing — and
/// shrinkers therefore never walk a real failure down into one.
[[nodiscard]] bool has_constant_po(const ntk::logic_network& network);

/// The full layout contract: DRC-clean, functionally equivalent to \p
/// specification by graph extraction, *and* equivalent under clock-accurate
/// wave simulation (the two checkers must agree), with an analyzable
/// synchronization profile. This is the invariant every physical design
/// algorithm in the repository promises for its output.
[[nodiscard]] oracle_result check_layout_contract(const ntk::logic_network& specification,
                                                  const lyt::gate_level_layout& layout);

/// ortho(specification) fulfills the layout contract.
[[nodiscard]] oracle_result check_ortho_pipeline(const ntk::logic_network& specification,
                                                 const res::deadline_clock& deadline);

/// nanoplacer(specification, params) either finds no feasible placement
/// (vacuously fine) or its layout fulfills the contract.
[[nodiscard]] oracle_result check_npr_pipeline(const ntk::logic_network& specification,
                                               const pd::nanoplacer_params& params);

/// post_layout_optimization(ortho(specification)) preserves the contract and
/// never grows the layout area.
[[nodiscard]] oracle_result check_plo_pipeline(const ntk::logic_network& specification,
                                               const res::deadline_clock& deadline);

// ------------------------------------------------------------- IO oracles

/// write → read → write of \p layout reaches a byte fixpoint.
[[nodiscard]] oracle_result check_fgl_fixpoint(const lyt::gate_level_layout& layout);

/// The .fgl reader either accepts \p document — in which case the parsed
/// layout must reach the write fixpoint — or raises a typed mnt::mnt_error.
[[nodiscard]] oracle_result check_fgl_document(const std::string& document);

/// The Verilog reader either accepts \p document (the parsed network must
/// then survive a write/read round-trip as an equivalent network) or raises
/// a typed mnt::mnt_error.
[[nodiscard]] oracle_result check_verilog_document(const std::string& document);

/// write_verilog(primitives) round-trips \p network structurally (up to
/// dead logic, which the reader drops exactly like ntk::cleanup); the
/// assignments style round-trips it functionally.
[[nodiscard]] oracle_result check_verilog_roundtrip(const ntk::logic_network& network);

// ------------------------------------------------- layout container oracle

/// Applies a mutation program to a fresh side x side 2DDWave layout,
/// treating precondition_error as a rejected op, and checks the container
/// invariants after every step: occupancy counters vs. scans, mutual
/// incoming/outgoing consistency, fanin/fanout capacities, sortedness of
/// tiles_sorted(), PI/PO list hygiene — and that a rejected op left no trace.
[[nodiscard]] oracle_result check_layout_ops(const std::vector<layout_op>& ops, std::uint32_t side);

// -------------------------------------------------------- service oracles

/// Ingests \p network and its ortho layout into a fresh store under \p root,
/// saves, reopens, loads — and checks that the snapshot reproduces the
/// records byte-identically (blob id, cache key, metrics, .fgl bytes) with
/// no load issues. \p root must be a fresh directory per call.
[[nodiscard]] oracle_result check_store_roundtrip(const ntk::logic_network& network,
                                                  const std::filesystem::path& root);

/// query_engine::filter == apply_filter on the same catalog: same records,
/// same order.
[[nodiscard]] oracle_result check_query_parity(const svc::query_engine& engine, const cat::catalog& cat,
                                               const cat::filter_query& query);

/// query_engine::run is consistent with a linear-scan re-derivation: total,
/// rows window, facet histograms, and id alignment.
[[nodiscard]] oracle_result check_page_consistency(const svc::query_engine& engine, const cat::catalog& cat,
                                                   const svc::page_query& query);

/// Feeds a raw byte-stream through \ref svc::parse_http_request and, when a
/// complete request parses, through \ref svc::catalog_server::handle. The
/// parser must classify (never throw), the handler must answer with a known
/// status — 5xx counts as a failure — and JSON responses must parse.
[[nodiscard]] oracle_result check_http_byte_stream(svc::catalog_server& server, const std::string& bytes);

}  // namespace mnt::pbt
