#pragma once

/// \file generators.hpp
/// \brief Seeded random-input generators for property-based testing — the
///        "arbitrary" half of the `src/testing/` subsystem. Every generator
///        is a pure function of a \ref mnt::pbt::rng, so a 64-bit seed fully
///        determines the produced value and any failure replays from its
///        seed alone (see proptest.hpp for the seed-derivation contract).
///
/// Generators cover the stack end to end:
///
/// - **logic networks** with a configurable gate mix, depth/fanout shape and
///   PI/PO counts — always structurally valid, so pipeline oracles measure
///   the tools, not the generator;
/// - **hostile-but-parseable documents** (.fgl and Verilog): seeded from a
///   valid serialization, then mutated at the byte and token level. Parsers
///   must either accept them or fail with a typed mnt::mnt_error — anything
///   else (crash, sanitizer finding, uncaught foreign exception) is a bug;
/// - **layout mutation sequences**: randomized place/connect/disconnect/
///   clear/move/resize programs for the dense tile grid;
/// - **HTTP/1.1 request byte-streams** for the catalog server's parser and
///   router.

#include "layout/coordinates.hpp"
#include "network/gate_type.hpp"
#include "network/logic_network.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace mnt::pbt
{

// ------------------------------------------------------------------- rng

/// Deterministic 64-bit PRNG (splitmix64). Chosen over std::mt19937 because
/// its output is specified here, not by the standard library vendor: seeds
/// reproduce byte-identically on every platform and toolchain, which the
/// seed-replay contract depends on.
class rng
{
public:
    explicit constexpr rng(const std::uint64_t seed) noexcept : state{seed} {}

    /// Next raw 64-bit word.
    constexpr std::uint64_t next() noexcept
    {
        state += 0x9e3779b97f4a7c15ull;
        std::uint64_t z = state;
        z = (z ^ (z >> 30U)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27U)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31U);
    }

    /// Uniform value in [0, bound); bound = 0 yields 0.
    constexpr std::uint64_t below(const std::uint64_t bound) noexcept
    {
        return bound == 0 ? 0 : next() % bound;
    }

    /// Uniform value in [lo, hi] (inclusive).
    constexpr std::uint64_t range(const std::uint64_t lo, const std::uint64_t hi) noexcept
    {
        return lo + below(hi - lo + 1);
    }

    /// True with probability \p numerator / \p denominator.
    constexpr bool chance(const std::uint64_t numerator, const std::uint64_t denominator) noexcept
    {
        return below(denominator) < numerator;
    }

    /// Uniformly picked element of \p pool (which must be non-empty).
    template <typename T>
    const T& pick(const std::vector<T>& pool) noexcept
    {
        return pool[static_cast<std::size_t>(below(pool.size()))];
    }

    /// Child generator with an independent stream (for sub-structures).
    constexpr rng split() noexcept
    {
        return rng{next()};
    }

private:
    std::uint64_t state;
};

// ------------------------------------------------------- network generator

/// Shape parameters of \ref random_network. Ranges are inclusive.
struct network_spec
{
    std::size_t min_pis{2};
    std::size_t max_pis{6};
    std::size_t min_pos{1};
    std::size_t max_pos{3};
    std::size_t min_gates{1};
    std::size_t max_gates{16};

    /// Fanins are drawn from the last `window` created signals (locality);
    /// 0 = uniform over all existing signals.
    std::size_t window{0};

    /// Probability (percent) that a fanin re-uses the previous gate's output,
    /// creating chains (depth) and shared fanout.
    std::uint64_t chain_percent{35};

    /// Include 3-input majority gates.
    bool allow_maj{true};

    /// Include XOR/XNOR gates.
    bool allow_xor{true};

    /// Probability (percent) of a constant fanin (exercises constant
    /// propagation paths in the tools).
    std::uint64_t constant_percent{3};

    std::string name{"prop"};
};

/// Generates a structurally valid random logic network: `p` PIs named
/// "x0..", a gate DAG over them with the configured mix, and `q` POs named
/// "y0.." driven by distinct signals where possible. Every PI transitively
/// reaches at least one gate input when the gate budget allows, so layout
/// oracles never see degenerate all-dangling interfaces.
[[nodiscard]] ntk::logic_network random_network(rng& random, const network_spec& spec = {});

/// The logic gate types \ref random_network draws from under \p spec.
[[nodiscard]] std::vector<ntk::gate_type> network_gate_pool(const network_spec& spec);

// ------------------------------------------------- document generators

/// Severity of document mutations.
struct document_spec
{
    /// Number of mutations applied to the seed document.
    std::size_t min_mutations{0};
    std::size_t max_mutations{6};

    /// Probability (percent) of generating a from-scratch random document
    /// instead of mutating a valid serialization.
    std::uint64_t scratch_percent{15};
};

/// A hostile-but-usually-parseable .fgl document: a valid write_fgl
/// serialization of a small random layout, mutated by byte edits, line
/// deletion/duplication, number corruption and token swaps — or, with
/// \ref document_spec::scratch_percent, random tag soup. The reader must
/// accept or raise a typed error; accepted documents must round-trip to a
/// byte fixpoint.
[[nodiscard]] std::string random_fgl_document(rng& random, const document_spec& spec = {});

/// Hostile-but-usually-parseable structural Verilog, built the same way from
/// \ref mnt::io::write_verilog_string (both styles).
[[nodiscard]] std::string random_verilog_document(rng& random, const document_spec& spec = {});

// ------------------------------------------------ layout mutation programs

/// One step of a layout mutation program.
enum class layout_op_kind : std::uint8_t
{
    place,       ///< place gate `type` at `a`
    connect,     ///< connect a -> b
    disconnect,  ///< disconnect a -> b
    clear,       ///< clear_tile(a)
    move,        ///< move_tile(a, b)
    resize       ///< resize(a.x + 1, a.y + 1)
};

struct layout_op
{
    layout_op_kind kind{layout_op_kind::place};
    lyt::coordinate a{};
    lyt::coordinate b{};
    ntk::gate_type type{ntk::gate_type::buf};

    /// Printable form, e.g. "place buf (1,2,0)" — the reproducer format.
    [[nodiscard]] std::string to_string() const;
};

/// A random mutation program of \p length steps over a \p side x \p side
/// grid. Ops may individually be invalid (occupied tile, empty source, full
/// fanin) — the apply helper treats precondition_error as a no-op, and the
/// container oracle checks that rejected ops really leave no trace.
[[nodiscard]] std::vector<layout_op> random_layout_ops(rng& random, std::size_t length, std::uint32_t side);

/// Prints a whole program one op per line (reproducer rendering).
[[nodiscard]] std::string layout_ops_to_string(const std::vector<layout_op>& ops);

// ------------------------------------------------- HTTP request generator

/// A random HTTP/1.1 request byte-stream: usually a well-formed request to
/// one of the catalog server's endpoints with randomized query strings,
/// headers and JSON-ish bodies; sometimes truncated heads, lying
/// Content-Length values, oversized targets or raw binary garbage.
[[nodiscard]] std::string random_http_request(rng& random);

/// A random *valid* catalog request target (path + query string) drawn from
/// a realistic read-mostly mix: mostly /layouts pages with well-formed
/// filter/sort/pagination parameters, plus /benchmarks, /facets, /best and
/// the occasional /healthz probe. Used by the load generator, where — unlike
/// \ref random_http_request — every request must be answerable with a 200.
[[nodiscard]] std::string random_catalog_target(rng& random);

}  // namespace mnt::pbt
