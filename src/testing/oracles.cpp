#include "testing/oracles.hpp"

#include "common/types.hpp"
#include "io/fgl_reader.hpp"
#include "io/fgl_writer.hpp"
#include "io/verilog_reader.hpp"
#include "io/verilog_writer.hpp"
#include "network/transforms.hpp"
#include "physical_design/ortho.hpp"
#include "physical_design/post_layout_optimization.hpp"
#include "service/json.hpp"
#include "service/store.hpp"
#include "verification/drc.hpp"
#include "verification/equivalence.hpp"
#include "verification/synchronization.hpp"
#include "verification/wave_simulation.hpp"

#include <algorithm>
#include <set>

namespace mnt::pbt
{

// ------------------------------------------------------- pipeline oracles

bool has_constant_po(const ntk::logic_network& network)
{
    const auto propagated = ntk::propagate_constants(network);
    for (const auto po : propagated.pos())
    {
        if (propagated.is_constant(propagated.fanins(po)[0]))
        {
            return true;
        }
    }
    return false;
}

oracle_result check_layout_contract(const ntk::logic_network& specification, const lyt::gate_level_layout& layout)
{
    const auto drc = ver::gate_level_drc(layout);
    if (!drc.passed())
    {
        return oracle_result::fail("DRC error: " + drc.errors.front());
    }

    const auto graph_eq = ver::check_layout_equivalence(specification, layout);
    const auto wave_eq = ver::check_wave_equivalence(specification, layout);
    if (graph_eq.equivalent != wave_eq.equivalent)
    {
        return oracle_result::fail(std::string{"equivalence checkers disagree: graph says "} +
                                   (graph_eq.equivalent ? "equivalent" : graph_eq.reason) + ", wave says " +
                                   (wave_eq.equivalent ? "equivalent" : wave_eq.reason));
    }
    if (!graph_eq)
    {
        return oracle_result::fail("not equivalent: " + graph_eq.reason);
    }
    if (!wave_eq.stabilized)
    {
        return oracle_result::fail("wave simulation did not stabilize");
    }

    // must be analyzable (throws design_rule_error on cyclic connectivity)
    const auto sync = ver::analyze_synchronization(layout);
    static_cast<void>(sync);
    return oracle_result::pass();
}

oracle_result check_ortho_pipeline(const ntk::logic_network& specification, const res::deadline_clock& deadline)
{
    if (has_constant_po(specification))
    {
        return oracle_result::pass();  // outside the documented input domain
    }
    pd::ortho_params params{};
    params.deadline = deadline;
    return check_layout_contract(specification, pd::ortho(specification, params));
}

oracle_result check_npr_pipeline(const ntk::logic_network& specification, const pd::nanoplacer_params& params)
{
    if (has_constant_po(specification))
    {
        return oracle_result::pass();  // outside the documented input domain
    }
    const auto layout = pd::nanoplacer(specification, params);
    if (!layout.has_value())
    {
        return oracle_result::pass();  // "no feasible placement" is a legal outcome
    }
    return check_layout_contract(specification, *layout);
}

oracle_result check_plo_pipeline(const ntk::logic_network& specification, const res::deadline_clock& deadline)
{
    if (has_constant_po(specification))
    {
        return oracle_result::pass();  // outside the documented input domain
    }
    pd::ortho_params ortho_params{};
    ortho_params.deadline = deadline;
    const auto before = pd::ortho(specification, ortho_params);

    pd::plo_params plo_params{};
    plo_params.deadline = deadline;
    const auto after = pd::post_layout_optimization(before, plo_params);

    if (after.area() > before.area())
    {
        return oracle_result::fail("PLO grew the layout: " + std::to_string(before.area()) + " -> " +
                                   std::to_string(after.area()) + " tiles");
    }
    return check_layout_contract(specification, after);
}

// ------------------------------------------------------------- IO oracles

oracle_result check_fgl_fixpoint(const lyt::gate_level_layout& layout)
{
    const auto first = io::write_fgl_string(layout);
    const auto reread = io::read_fgl_string(first);
    const auto second = io::write_fgl_string(reread);
    if (first != second)
    {
        return oracle_result::fail("write -> read -> write is not a byte fixpoint");
    }
    return oracle_result::pass();
}

oracle_result check_fgl_document(const std::string& document)
{
    lyt::gate_level_layout layout;
    try
    {
        layout = io::read_fgl_string(document);
    }
    catch (const mnt_error&)
    {
        return oracle_result::pass();  // rejected with a typed error
    }
    return check_fgl_fixpoint(layout);
}

oracle_result check_verilog_roundtrip(const ntk::logic_network& network)
{
    // the primitive style is specified to round-trip structurally — up to
    // dead logic, which the reader (elaborating from the outputs) drops by
    // design, exactly like ntk::cleanup
    const auto primitives = io::write_verilog_string(network, io::verilog_style::primitives);
    const auto reread = io::read_verilog_string(primitives, network.network_name());
    if (!ntk::cleanup(network).structurally_equal(reread))
    {
        return oracle_result::fail("primitive-style Verilog did not round-trip structurally");
    }

    // the assignment style may restructure but must preserve the function
    const auto assignments = io::write_verilog_string(network, io::verilog_style::assignments);
    const auto functional = io::read_verilog_string(assignments, network.network_name());
    const auto equivalence = ver::check_equivalence(network, functional);
    if (!equivalence)
    {
        return oracle_result::fail("assignment-style Verilog round-trip not equivalent: " + equivalence.reason);
    }
    return oracle_result::pass();
}

oracle_result check_verilog_document(const std::string& document)
{
    ntk::logic_network network;
    try
    {
        network = io::read_verilog_string(document, "prop");
    }
    catch (const mnt_error&)
    {
        return oracle_result::pass();
    }
    return check_verilog_roundtrip(network);
}

// ------------------------------------------------- layout container oracle

namespace
{

/// Cheap full-state digest used to prove a rejected op left no trace.
std::string layout_digest(const lyt::gate_level_layout& layout)
{
    std::string digest = std::to_string(layout.width()) + "x" + std::to_string(layout.height()) + ";";
    layout.foreach_tile(
        [&](const lyt::coordinate& c, const lyt::gate_level_layout::tile_data& tile)
        {
            digest += c.to_string() + "=" + std::string{ntk::gate_type_name(tile.type)} + "<" + tile.io_name;
            for (const auto& in : tile.incoming)
            {
                digest += in.to_string();
            }
            digest += ">";
        });
    return digest;
}

/// Returns the first violated container invariant, or an empty string.
std::string container_violation(const lyt::gate_level_layout& layout)
{
    std::size_t seen = 0;
    std::string violation;
    layout.foreach_tile(
        [&](const lyt::coordinate& c, const lyt::gate_level_layout::tile_data& tile)
        {
            ++seen;
            if (!violation.empty())
            {
                return;
            }
            if (tile.incoming.size() > ntk::logic_network::max_fanin_size)
            {
                violation = c.to_string() + " has " + std::to_string(tile.incoming.size()) + " fanins";
                return;
            }
            for (const auto& src : tile.incoming)
            {
                if (!layout.has_tile(src))
                {
                    violation = c.to_string() + " has dangling fanin " + src.to_string();
                    return;
                }
                const auto outs = layout.outgoing_of(src);
                if (std::find(outs.begin(), outs.end(), c) == outs.end())
                {
                    violation = src.to_string() + " -> " + c.to_string() + " missing from outgoing list";
                    return;
                }
            }
            const auto outs = layout.outgoing_of(c);
            if (outs.size() > lyt::gate_level_layout::max_fanout)
            {
                violation = c.to_string() + " drives " + std::to_string(outs.size()) + " successors";
                return;
            }
            for (const auto& dst : outs)
            {
                if (!layout.has_tile(dst))
                {
                    violation = c.to_string() + " has dangling fanout " + dst.to_string();
                    return;
                }
                const auto& ins = layout.incoming_of(dst);
                if (std::find(ins.begin(), ins.end(), c) == ins.end())
                {
                    violation = c.to_string() + " -> " + dst.to_string() + " missing from incoming list";
                    return;
                }
            }
        });
    if (!violation.empty())
    {
        return violation;
    }

    if (seen != layout.num_occupied())
    {
        return "num_occupied() = " + std::to_string(layout.num_occupied()) + " but the scan finds " +
               std::to_string(seen);
    }

    const auto sorted = layout.tiles_sorted();
    if (sorted.size() != seen)
    {
        return "tiles_sorted() has " + std::to_string(sorted.size()) + " entries, expected " + std::to_string(seen);
    }
    for (std::size_t i = 1; i < sorted.size(); ++i)
    {
        if (!(sorted[i - 1] < sorted[i]))
        {
            return "tiles_sorted() not strictly increasing at " + sorted[i].to_string();
        }
    }

    if (layout.pi_tiles().size() != layout.num_pis() || layout.po_tiles().size() != layout.num_pos())
    {
        return "PI/PO tile lists disagree with counters";
    }
    for (const auto& pi : layout.pi_tiles())
    {
        if (layout.type_of(pi) != ntk::gate_type::pi)
        {
            return "pi_tiles() entry " + pi.to_string() + " is not a PI";
        }
    }
    for (const auto& po : layout.po_tiles())
    {
        if (layout.type_of(po) != ntk::gate_type::po)
        {
            return "po_tiles() entry " + po.to_string() + " is not a PO";
        }
    }

    const auto accounted =
        layout.num_gates() + layout.num_wires() + layout.num_pis() + layout.num_pos();
    if (accounted != seen)
    {
        return "type counters sum to " + std::to_string(accounted) + " for " + std::to_string(seen) + " tiles";
    }

    const auto [lo, hi] = layout.bounding_box();
    if (seen > 0 && (hi.x >= static_cast<std::int32_t>(layout.width()) ||
                     hi.y >= static_cast<std::int32_t>(layout.height()) || lo.x < 0 || lo.y < 0))
    {
        return "bounding box " + lo.to_string() + ".." + hi.to_string() + " escapes the grid";
    }
    return {};
}

}  // namespace

oracle_result check_layout_ops(const std::vector<layout_op>& ops, const std::uint32_t side)
{
    lyt::gate_level_layout layout{"ops", lyt::layout_topology::cartesian, lyt::clocking_scheme::twoddwave(), side,
                                  side};

    std::size_t io_counter = 0;
    for (std::size_t i = 0; i < ops.size(); ++i)
    {
        const auto& op = ops[i];
        const auto before = layout_digest(layout);
        bool rejected = false;
        try
        {
            switch (op.kind)
            {
                case layout_op_kind::place:
                {
                    std::string io_name;
                    if (op.type == ntk::gate_type::pi || op.type == ntk::gate_type::po)
                    {
                        io_name = (op.type == ntk::gate_type::pi ? "in" : "out") + std::to_string(io_counter++);
                    }
                    layout.place(op.a, op.type, io_name);
                    break;
                }
                case layout_op_kind::connect: layout.connect(op.a, op.b); break;
                case layout_op_kind::disconnect: layout.disconnect(op.a, op.b); break;
                case layout_op_kind::clear: layout.clear_tile(op.a); break;
                case layout_op_kind::move: layout.move_tile(op.a, op.b); break;
                case layout_op_kind::resize:
                    layout.resize(static_cast<std::uint32_t>(op.a.x + 1), static_cast<std::uint32_t>(op.a.y + 1));
                    break;
            }
        }
        catch (const precondition_error&)
        {
            rejected = true;
        }

        if (rejected && layout_digest(layout) != before)
        {
            return oracle_result::fail("op " + std::to_string(i) + " (" + op.to_string() +
                                       ") was rejected but changed the layout");
        }
        if (auto violation = container_violation(layout); !violation.empty())
        {
            return oracle_result::fail("after op " + std::to_string(i) + " (" + op.to_string() + "): " + violation);
        }
    }
    return oracle_result::pass();
}

// -------------------------------------------------------- service oracles

oracle_result check_store_roundtrip(const ntk::logic_network& network, const std::filesystem::path& root)
{
    if (has_constant_po(network))
    {
        return oracle_result::pass();  // ortho ingestion rejects these by precondition
    }
    const std::string set{"Prop"};
    const auto& name = network.network_name();

    cat::layout_record record;
    record.benchmark_set = set;
    record.benchmark_name = name;
    record.library = cat::gate_library_kind::qca_one;
    record.clocking = "2DDWave";
    record.algorithm = "ortho";
    record.layout = pd::ortho(network);

    const auto key = svc::cache_key(record);
    std::string network_id;
    std::string layout_id;
    {
        svc::layout_store store{root};
        if (!store.open_issues().empty())
        {
            return oracle_result::fail("fresh store reports open issues");
        }
        network_id = store.put_network(set, name, network);
        layout_id = store.put_layout(record);
        if (!store.contains(key))
        {
            return oracle_result::fail("cache key not indexed directly after put_layout");
        }
        store.save();
    }

    svc::layout_store reopened{root};
    if (!reopened.open_issues().empty())
    {
        return oracle_result::fail("reopened store reports issues: " + reopened.open_issues().front().message);
    }
    if (!reopened.contains(key))
    {
        return oracle_result::fail("cache key lost across save/reopen — regeneration would redo cached work");
    }

    auto snapshot = reopened.load();
    if (!snapshot.issues.empty())
    {
        return oracle_result::fail("load reported an issue: " + snapshot.issues.front().message);
    }
    if (snapshot.catalog.networks().size() != 1 || snapshot.catalog.layouts().size() != 1 ||
        snapshot.layout_ids.size() != 1)
    {
        return oracle_result::fail("snapshot cardinality wrong");
    }
    if (snapshot.layout_ids.front() != layout_id)
    {
        return oracle_result::fail("layout id changed across round-trip: " + layout_id + " -> " +
                                   snapshot.layout_ids.front());
    }

    const auto& loaded = snapshot.catalog.layouts().front();
    if (loaded.benchmark_set != set || loaded.benchmark_name != name || loaded.clocking != record.clocking ||
        loaded.algorithm != record.algorithm)
    {
        return oracle_result::fail("layout provenance fields changed across round-trip");
    }
    if (io::write_fgl_string(loaded.layout) != io::write_fgl_string(record.layout))
    {
        return oracle_result::fail("layout .fgl bytes changed across round-trip");
    }
    if (loaded.area != record.layout.area())
    {
        return oracle_result::fail("layout metrics changed across round-trip");
    }

    const auto& loaded_network = snapshot.catalog.networks().front().network;
    const auto equivalence = ver::check_equivalence(network, loaded_network);
    if (!equivalence)
    {
        return oracle_result::fail("network not equivalent after round-trip: " + equivalence.reason);
    }
    static_cast<void>(network_id);
    return oracle_result::pass();
}

oracle_result check_query_parity(const svc::query_engine& engine, const cat::catalog& cat,
                                 const cat::filter_query& query)
{
    const auto indexed = engine.filter(query);
    const auto scanned = cat::apply_filter(cat, query);
    if (indexed.size() != scanned.size())
    {
        return oracle_result::fail("index returns " + std::to_string(indexed.size()) + " records, linear scan " +
                                   std::to_string(scanned.size()));
    }
    for (std::size_t i = 0; i < indexed.size(); ++i)
    {
        if (indexed[i] != scanned[i])
        {
            return oracle_result::fail("result " + std::to_string(i) + " differs between index and linear scan");
        }
    }
    return oracle_result::pass();
}

oracle_result check_page_consistency(const svc::query_engine& engine, const cat::catalog& cat,
                                     const svc::page_query& query)
{
    const auto page = engine.run(query);
    const auto all = cat::apply_filter(cat, query.filter);

    if (page.total != all.size())
    {
        return oracle_result::fail("page.total = " + std::to_string(page.total) + ", linear scan finds " +
                                   std::to_string(all.size()));
    }

    const auto limit = std::min(query.limit, svc::page_query::max_limit);
    const auto expected_rows =
        query.limit == 0 ? 0 : std::min(limit, page.total - std::min(query.offset, page.total));
    if (page.rows.size() != expected_rows || page.ids.size() != page.rows.size())
    {
        return oracle_result::fail("page window wrong: " + std::to_string(page.rows.size()) + " rows for offset " +
                                   std::to_string(query.offset) + ", limit " + std::to_string(query.limit) +
                                   ", total " + std::to_string(page.total));
    }

    const std::set<const cat::layout_record*> universe{all.begin(), all.end()};
    for (std::size_t i = 0; i < page.rows.size(); ++i)
    {
        if (universe.find(page.rows[i]) == universe.end())
        {
            return oracle_result::fail("page row " + std::to_string(i) + " is not in the filter result");
        }
        const auto index = static_cast<std::size_t>(page.rows[i] - cat.layouts().data());
        if (page.ids[i] != engine.id_of(index) || engine.index_of(page.ids[i]) != index)
        {
            return oracle_result::fail("page id " + std::to_string(i) + " misaligned with its record");
        }
    }

    // requested sort key is monotonic across the page
    const auto ascending = query.order == svc::sort_order::ascending;
    for (std::size_t i = 1; i < page.rows.size(); ++i)
    {
        const auto *a = page.rows[i - 1], *b = page.rows[i];
        bool ordered = true;
        switch (query.sort)
        {
            case svc::sort_key::area: ordered = ascending ? a->area <= b->area : a->area >= b->area; break;
            case svc::sort_key::runtime:
                ordered = ascending ? a->runtime <= b->runtime : a->runtime >= b->runtime;
                break;
            case svc::sort_key::benchmark:
            {
                const auto ka = a->benchmark_set + "\x1f" + a->benchmark_name;
                const auto kb = b->benchmark_set + "\x1f" + b->benchmark_name;
                ordered = ascending ? ka <= kb : ka >= kb;
                break;
            }
            case svc::sort_key::algorithm:
                ordered = ascending ? a->label() <= b->label() : a->label() >= b->label();
                break;
        }
        if (!ordered)
        {
            return oracle_result::fail("page not sorted by the requested key at row " + std::to_string(i));
        }
    }

    if (query.include_facets)
    {
        const auto expected = cat::compute_facets(all);
        if (page.facets.per_set != expected.per_set || page.facets.per_library != expected.per_library ||
            page.facets.per_clocking != expected.per_clocking ||
            page.facets.per_algorithm != expected.per_algorithm ||
            page.facets.per_optimization != expected.per_optimization)
        {
            return oracle_result::fail("facet histograms disagree with the linear scan");
        }
    }
    return oracle_result::pass();
}

oracle_result check_http_byte_stream(svc::catalog_server& server, const std::string& bytes)
{
    const auto parsed = svc::parse_http_request(bytes, 1U << 20U);
    if (parsed.status != svc::http_parse_status::ok)
    {
        return oracle_result::pass();  // classified without a crash — that is the contract
    }

    const auto response = server.handle(parsed.request);
    switch (response.status)
    {
        case 200:
        case 304:  // conditional request with a matching validator
        case 400:
        case 404:
        case 405:
        case 408:
        case 413:
        case 501: break;  // unrecognized request method
        default:
            return oracle_result::fail("unexpected status " + std::to_string(response.status) + " for " +
                                       parsed.request.method + " " + parsed.request.path);
    }
    if (response.status != 304 && response.content_type == "application/json")
    {
        try
        {
            static_cast<void>(svc::json_value::parse(response.body));
        }
        catch (const mnt_error&)
        {
            return oracle_result::fail("JSON response body does not parse for " + parsed.request.method + " " +
                                       parsed.request.path);
        }
    }
    return oracle_result::pass();
}

}  // namespace mnt::pbt
