#pragma once

/// \file shrink.hpp
/// \brief Greedy input minimization for property-based testing. Once a
///        property fails for some generated value, these routines search for
///        a smaller value that still fails, so the reproducer the harness
///        prints is close to minimal instead of a 16-gate/4-KiB haystack.
///
/// All shrinkers take a `still_fails` predicate — "does the property still
/// fail on this candidate?" — and only ever commit a candidate for which it
/// returns true, so the result is guaranteed to reproduce the original
/// failure. Every shrinker is bounded by a check budget because a single
/// predicate call can be as expensive as a full place-and-verify pipeline.

#include "network/logic_network.hpp"

#include <algorithm>
#include <cstddef>
#include <functional>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

namespace mnt::pbt
{

namespace detail
{

/// ddmin-style greedy chunk deletion over any erasable container (std::string
/// or std::vector): try removing windows of size n/2, n/4, ... 1, keeping a
/// deletion whenever the property still fails, until a 1-granular pass makes
/// no progress or the check budget runs out.
template <typename Container, typename Predicate>
Container greedy_delete(Container current, const Predicate& still_fails, const std::size_t max_checks)
{
    std::size_t checks = 0;
    auto chunk = std::max<std::size_t>(1, current.size() / 2);
    while (true)
    {
        bool progress = false;
        for (std::size_t start = 0; start < current.size();)
        {
            if (checks >= max_checks)
            {
                return current;
            }
            const auto length = std::min(chunk, current.size() - start);
            Container candidate = current;
            candidate.erase(std::next(candidate.begin(), static_cast<std::ptrdiff_t>(start)),
                            std::next(candidate.begin(), static_cast<std::ptrdiff_t>(start + length)));
            ++checks;
            if (still_fails(candidate))
            {
                current = std::move(candidate);
                progress = true;  // same start now points at fresh content
            }
            else
            {
                start += chunk;
            }
        }
        if (chunk == 1)
        {
            if (!progress)
            {
                return current;
            }
        }
        else
        {
            chunk = std::max<std::size_t>(1, chunk / 2);
        }
    }
}

}  // namespace detail

/// Minimizes a byte string (document, HTTP request) by greedy chunk deletion.
[[nodiscard]] std::string shrink_bytes(std::string input, const std::function<bool(const std::string&)>& still_fails,
                                       std::size_t max_checks = 2000);

/// Minimizes an operation sequence (e.g. layout mutation programs) by greedy
/// chunk deletion.
template <typename T>
[[nodiscard]] std::vector<T> shrink_sequence(std::vector<T> input,
                                             const std::function<bool(const std::vector<T>&)>& still_fails,
                                             const std::size_t max_checks = 2000)
{
    return detail::greedy_delete(std::move(input), still_fails, max_checks);
}

/// Minimizes a failing logic network by node deletion: gates, buffers and
/// fan-outs are removed by redirecting their uses to their first fanin;
/// surplus POs and dangling PIs are dropped. Each committed candidate still
/// fails the property; the loop runs to a fixpoint or the check budget.
/// Predicate calls are expensive (typically a full layout + equivalence
/// pipeline), so the default budget is small.
[[nodiscard]] ntk::logic_network shrink_network(ntk::logic_network input,
                                                const std::function<bool(const ntk::logic_network&)>& still_fails,
                                                std::size_t max_checks = 300);

}  // namespace mnt::pbt
