#pragma once

/// \file proptest.hpp
/// \brief The property-based testing harness: runs `generate → check` for N
///        seeded cases, and on the first failure shrinks the input and
///        renders a reproducer with the exact one-command replay line.
///
/// ## Seed-replay contract
///
/// Every case is driven by a 64-bit **case seed**. By default the case seed
/// is derived deterministically from (master seed, property name, case
/// index), so all properties are reproducible run over run. The environment
/// overrides:
///
///   MNT_PROPTEST_SEED=<n|0xhex>   master seed (default: built-in constant)
///   MNT_PROPTEST_CASES=<n>        cases per property (default: per-suite)
///
/// When MNT_PROPTEST_CASES=1 **and** MNT_PROPTEST_SEED is set, the master
/// seed IS the case seed — which is exactly what a failure report prints:
///
///   MNT_PROPTEST_SEED=0x1234abcd MNT_PROPTEST_CASES=1
///       ./tests/test_properties_io --gtest_filter=Suite.Test
///
/// replays the failing case (and nothing else) locally.
///
/// Per-case deadlines reuse \ref mnt::res::run_guarded, so a hung case
/// surfaces as a timeout failure instead of wedging the suite, and the
/// `proptest.case` fault-injection site (MNT_FAULT_INJECT=proptest.case)
/// forces failures end-to-end through shrinking and reporting.

#include "common/resilience.hpp"
#include "testing/generators.hpp"
#include "testing/oracles.hpp"

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>

namespace mnt::pbt
{

/// Configuration of one property run.
struct proptest_config
{
    /// Stable property name; part of the case-seed derivation, so renaming a
    /// property reshuffles its cases (by design: the name identifies the
    /// input distribution).
    std::string property;

    /// Master seed (see the seed-replay contract above).
    std::uint64_t seed{default_seed};

    /// Number of cases to run.
    std::size_t cases{200};

    /// Per-case deadline in seconds (0 = unbounded).
    double case_deadline_s{20.0};

    /// Check budget handed to shrinkers via \ref max_shrink_checks.
    std::size_t max_shrink_checks{200};

    /// True when the master seed is the case seed (replay mode).
    bool replay_single{false};

    /// Test binary name for the replay command (filled by the gtest glue
    /// from the MNT_TEST_BINARY compile definition).
    std::string binary;

    /// --gtest_filter value for the replay command (Suite.Test).
    std::string gtest_filter;

    static constexpr std::uint64_t default_seed = 0x6d6e745f70627431ull;  // "mnt_pbt1"

    /// Reads MNT_PROPTEST_SEED / MNT_PROPTEST_CASES and returns a config for
    /// \p property with \p default_cases as the fallback case count.
    [[nodiscard]] static proptest_config from_environment(std::string property, std::size_t default_cases = 200);
};

/// Deterministic case-seed derivation (splitmix64 over master ⊕ FNV-1a of
/// the property name ⊕ the case index).
[[nodiscard]] std::uint64_t derive_case_seed(std::uint64_t master_seed, std::string_view property,
                                             std::size_t case_index);

/// The exact shell command that replays one case of \p config.
[[nodiscard]] std::string replay_command(const proptest_config& config, std::uint64_t case_seed);

/// One failed case, fully rendered.
struct proptest_failure
{
    std::size_t case_index{0};
    std::uint64_t case_seed{0};

    /// Violation of the original input.
    std::string reason;

    /// Printable form of the *shrunk* input.
    std::string reproducer;

    /// Violation of the shrunk input (usually == reason).
    std::string shrunk_reason;

    /// One-command local replay (see the seed-replay contract).
    std::string replay;
};

/// Result of \ref run_property.
struct proptest_result
{
    std::size_t cases_run{0};
    std::optional<proptest_failure> failure;

    [[nodiscard]] bool passed() const noexcept
    {
        return !failure.has_value();
    }

    /// Human-readable failure report (empty string when passed).
    [[nodiscard]] std::string report() const;
};

/// One property: how to generate a value, how to check it, and (optionally)
/// how to shrink a failing one and how to print it.
template <typename Value>
struct property
{
    /// Generates a value from a seeded rng. Must be deterministic per seed.
    std::function<Value(rng&)> generate;

    /// Checks the value; the deadline is the per-case budget (thread it into
    /// algorithm params where supported).
    std::function<oracle_result(const Value&, const res::deadline_clock&)> check;

    /// Optional: minimizes a failing value. Receives the value and a
    /// `still_fails` predicate; returns the minimized value (see shrink.hpp
    /// for ready-made shrinkers).
    std::function<Value(Value, const std::function<bool(const Value&)>&)> shrink;

    /// Optional: renders a value for the reproducer section of the report.
    std::function<std::string(const Value&)> show;
};

/// Runs \p prop for config.cases seeded cases; stops at the first failure,
/// shrinks it, and returns the rendered failure. Oracle failures, typed
/// errors, foreign exceptions and per-case deadline expiry all count as
/// failures (mapped through \ref mnt::res::run_guarded).
template <typename Value>
[[nodiscard]] proptest_result run_property(const proptest_config& config, const property<Value>& prop)
{
    proptest_result result{};

    // one guarded evaluation; empty string = the property holds
    const auto check_once = [&](const Value& value) -> std::string
    {
        oracle_result oracle{};
        const auto deadline = config.case_deadline_s > 0.0 ? res::deadline_clock::after(config.case_deadline_s) :
                                                             res::deadline_clock::unbounded();
        res::guard_params guard{};
        guard.deadline = deadline;
        const auto outcome = res::run_guarded(config.property, guard,
                                              [&](std::size_t)
                                              {
                                                  MNT_FAULT_POINT("proptest.case");
                                                  oracle = prop.check(value, deadline);
                                              });
        if (!outcome.is_ok())
        {
            return std::string{res::outcome_kind_name(outcome.kind)} + ": " + outcome.message;
        }
        return oracle.passed ? std::string{} : oracle.reason;
    };

    for (std::size_t index = 0; index < config.cases; ++index)
    {
        const auto case_seed =
            config.replay_single ? config.seed : derive_case_seed(config.seed, config.property, index);

        proptest_failure failure{};
        failure.case_index = index;
        failure.case_seed = case_seed;
        failure.replay = replay_command(config, case_seed);

        rng random{case_seed};
        Value value;
        try
        {
            value = prop.generate(random);
        }
        catch (const std::exception& e)
        {
            // a generator must never throw — report it with full seed info
            failure.reason = std::string{"generator threw: "} + e.what();
            failure.shrunk_reason = failure.reason;
            result.failure = std::move(failure);
            ++result.cases_run;
            return result;
        }

        auto reason = check_once(value);
        ++result.cases_run;
        if (reason.empty())
        {
            continue;
        }
        failure.reason = std::move(reason);

        Value minimized = std::move(value);
        if (prop.shrink)
        {
            minimized = prop.shrink(std::move(minimized),
                                    [&](const Value& candidate) { return !check_once(candidate).empty(); });
        }
        failure.shrunk_reason = check_once(minimized);
        if (failure.shrunk_reason.empty())
        {
            failure.shrunk_reason = failure.reason;  // flaky check; report the original
        }
        if (prop.show)
        {
            failure.reproducer = prop.show(minimized);
        }
        result.failure = std::move(failure);
        return result;
    }
    return result;
}

}  // namespace mnt::pbt
