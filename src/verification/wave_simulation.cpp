#include "verification/wave_simulation.hpp"

#include "common/types.hpp"
#include "layout/layout_utils.hpp"
#include "network/gate_type.hpp"
#include "network/simulation.hpp"
#include "verification/simd/simd.hpp"

#include <algorithm>
#include <array>
#include <cstdint>
#include <random>
#include <set>
#include <unordered_map>
#include <vector>

namespace mnt::ver
{

namespace
{

using lyt::coordinate;
using lyt::gate_level_layout;
using ntk::gate_type;

/// Dense tile-value table indexed like the layout grid. The wave simulators
/// read up to three fanin values per tile per tick, so the per-lookup hash
/// of a coordinate-keyed map dominates; a flat array addressed by
/// (z·h + y)·w + x makes every lookup a single indexed load.
class value_grid
{
  public:
    explicit value_grid(const gate_level_layout& layout) :
            w{static_cast<std::size_t>(layout.width())},
            h{static_cast<std::size_t>(layout.height())},
            values(2 * w * h, 0)
    {}

    [[nodiscard]] std::uint64_t operator[](const coordinate& c) const noexcept
    {
        return values[index_of(c)];
    }
    void set(const coordinate& c, const std::uint64_t v) noexcept
    {
        values[index_of(c)] = v;
    }

  private:
    [[nodiscard]] std::size_t index_of(const coordinate& c) const noexcept
    {
        return (static_cast<std::size_t>(c.z) * h + static_cast<std::size_t>(c.y)) * w +
               static_cast<std::size_t>(c.x);
    }

    std::size_t w;
    std::size_t h;
    std::vector<std::uint64_t> values;
};

}  // namespace

wave_result wave_simulate(const gate_level_layout& layout, const std::vector<std::uint64_t>& pi_words,
                          const wave_options& options)
{
    if (pi_words.size() != layout.num_pis())
    {
        throw precondition_error{"wave_simulate: one input word per PI required"};
    }

    // tile values; zero-initialized = the reset state
    value_grid values{layout};

    // group tiles by clock zone for fast per-tick iteration
    std::array<std::vector<coordinate>, 4> by_zone;
    layout.foreach_tile([&](const coordinate& c, const gate_level_layout::tile_data&)
                        { by_zone[layout.clock_number(c) % 4].push_back(c); });
    for (auto& zone : by_zone)
    {
        std::sort(zone.begin(), zone.end());
    }

    // fixed PI values
    value_grid pi_values{layout};
    for (std::size_t i = 0; i < layout.pi_tiles().size(); ++i)
    {
        pi_values.set(layout.pi_tiles()[i], pi_words[i]);
    }

    const auto max_ticks =
        options.max_ticks != 0 ? options.max_ticks : 8 * (layout.num_occupied() + 4) + 16;

    const auto value_of = [&](const coordinate& c) -> std::uint64_t { return values[c]; };

    wave_result result{};
    std::size_t stable_ticks = 0;

    for (std::size_t tick = 0; tick < max_ticks; ++tick)
    {
        bool changed = false;
        for (const auto& c : by_zone[tick % 4])
        {
            const auto& d = layout.get(c);
            std::uint64_t next{};
            if (d.type == gate_type::pi)
            {
                next = pi_values[c];
            }
            else
            {
                const auto& in = d.incoming;
                const auto a = !in.empty() ? value_of(in[0]) : 0ull;
                const auto b = in.size() > 1 ? value_of(in[1]) : 0ull;
                const auto e = in.size() > 2 ? value_of(in[2]) : 0ull;
                next = ntk::evaluate_gate_word(d.type, a, b, e);
            }
            if (value_of(c) != next)
            {
                values.set(c, next);
                changed = true;
            }
        }

        if (changed)
        {
            stable_ticks = 0;
        }
        else if (++stable_ticks >= 4)
        {
            // one full clock cycle without any change: steady state
            result.stabilized = true;
            result.settle_ticks = tick + 1 >= 4 ? tick + 1 - 4 : 0;
            break;
        }
    }

    for (const auto& po : layout.po_tiles())
    {
        result.po_words.push_back(value_of(po));
        result.po_names.push_back(layout.get(po).io_name);
    }
    if (!result.stabilized)
    {
        result.settle_ticks = max_ticks;
    }
    return result;
}

wave_block_result wave_simulate_block(const gate_level_layout& layout, const std::vector<std::uint64_t>& pi_rows,
                                      const std::size_t n, const wave_options& options)
{
    if (pi_rows.size() != layout.num_pis() * n)
    {
        throw precondition_error{"wave_simulate_block: num_pis * n input words required"};
    }

    const auto& kernel = simd::kernels();

    const auto w = static_cast<std::size_t>(layout.width());
    const auto h = static_cast<std::size_t>(layout.height());
    const auto row_index = [&](const coordinate& c) -> std::size_t
    { return ((static_cast<std::size_t>(c.z) * h + static_cast<std::size_t>(c.y)) * w + static_cast<std::size_t>(c.x)) *
             n; };

    // n words per tile; zero-initialized = the reset state
    std::vector<std::uint64_t> values(2 * w * h * n, 0ull);

    // group tiles by clock zone for fast per-tick iteration (same sorted
    // order as wave_simulate — lanes must latch identically)
    std::array<std::vector<coordinate>, 4> by_zone;
    layout.foreach_tile([&](const coordinate& c, const gate_level_layout::tile_data&)
                        { by_zone[layout.clock_number(c) % 4].push_back(c); });
    for (auto& zone : by_zone)
    {
        std::sort(zone.begin(), zone.end());
    }

    // fixed PI rows, addressed like the value grid
    std::vector<std::uint64_t> pi_values(2 * w * h * n, 0ull);
    for (std::size_t i = 0; i < layout.pi_tiles().size(); ++i)
    {
        std::copy_n(pi_rows.data() + i * n, n, pi_values.data() + row_index(layout.pi_tiles()[i]));
    }

    const auto max_ticks = options.max_ticks != 0 ? options.max_ticks : 8 * (layout.num_occupied() + 4) + 16;

    wave_block_result result{};
    std::size_t stable_ticks = 0;
    std::vector<std::uint64_t> next(n, 0ull);

    for (std::size_t tick = 0; tick < max_ticks; ++tick)
    {
        bool changed = false;
        for (const auto& c : by_zone[tick % 4])
        {
            const auto& d = layout.get(c);
            const std::uint64_t* next_row = nullptr;
            if (d.type == gate_type::pi)
            {
                next_row = pi_values.data() + row_index(c);
            }
            else
            {
                const auto& in = d.incoming;
                const auto* a = !in.empty() ? values.data() + row_index(in[0]) : nullptr;
                const auto* b = in.size() > 1 ? values.data() + row_index(in[1]) : nullptr;
                const auto* e = in.size() > 2 ? values.data() + row_index(in[2]) : nullptr;
                kernel.gate_row(d.type, next.data(), a, b, e, n);
                next_row = next.data();
            }
            auto* current = values.data() + row_index(c);
            if (kernel.mismatch(current, next_row, n) != n)
            {
                std::copy_n(next_row, n, current);
                changed = true;
            }
        }

        if (changed)
        {
            stable_ticks = 0;
        }
        else if (++stable_ticks >= 4)
        {
            // one full clock cycle without any change: steady state
            result.stabilized = true;
            result.settle_ticks = tick + 1 >= 4 ? tick + 1 - 4 : 0;
            break;
        }
    }

    result.po_rows.reserve(layout.po_tiles().size() * n);
    for (const auto& po : layout.po_tiles())
    {
        const auto* row = values.data() + row_index(po);
        result.po_rows.insert(result.po_rows.end(), row, row + n);
        result.po_names.push_back(layout.get(po).io_name);
    }
    if (!result.stabilized)
    {
        result.settle_ticks = max_ticks;
    }
    return result;
}

stream_result wave_stream_simulate(const gate_level_layout& layout,
                                   const std::vector<std::vector<std::uint64_t>>& frames,
                                   const std::vector<std::vector<std::uint64_t>>& expected,
                                   const stream_options& options)
{
    if (frames.empty())
    {
        throw precondition_error{"wave_stream_simulate: at least one input frame required"};
    }
    for (const auto& frame : frames)
    {
        if (frame.size() != layout.num_pis())
        {
            throw precondition_error{"wave_stream_simulate: each frame needs one word per PI"};
        }
    }
    if (expected.size() != layout.num_pos())
    {
        throw precondition_error{"wave_stream_simulate: expected streams must cover every PO"};
    }

    // safe default rate: deep enough for any signal to traverse the layout
    auto cycles_per_frame = options.cycles_per_frame;
    if (cycles_per_frame == 0)
    {
        const auto stats_depth = lyt::collect_layout_statistics(layout).critical_path;
        cycles_per_frame = stats_depth / 4 + 2;
    }

    // persistent tile state across frames
    value_grid values{layout};
    std::array<std::vector<coordinate>, 4> by_zone;
    layout.foreach_tile([&](const coordinate& c, const gate_level_layout::tile_data&)
                        { by_zone[layout.clock_number(c) % 4].push_back(c); });
    for (auto& zone : by_zone)
    {
        std::sort(zone.begin(), zone.end());
    }
    const auto value_of = [&](const coordinate& c) -> std::uint64_t { return values[c]; };

    stream_result result{};
    for (const auto& po : layout.po_tiles())
    {
        result.po_names.push_back(layout.get(po).io_name);
    }
    std::vector<std::vector<std::uint64_t>> raw(layout.num_pos());

    // run warmup frames so the pipeline can fill, then the real frames; the
    // last frame is held a few extra windows to flush the pipe
    const auto flush = options.max_latency_frames;
    for (std::size_t f = 0; f < frames.size() + flush; ++f)
    {
        const auto& frame = frames[std::min(f, frames.size() - 1)];
        value_grid pi_values{layout};
        for (std::size_t i = 0; i < layout.pi_tiles().size(); ++i)
        {
            pi_values.set(layout.pi_tiles()[i], frame[i]);
        }

        for (std::size_t tick = 0; tick < 4 * cycles_per_frame; ++tick)
        {
            for (const auto& c : by_zone[tick % 4])
            {
                const auto& d = layout.get(c);
                if (d.type == gate_type::pi)
                {
                    values.set(c, pi_values[c]);
                    continue;
                }
                const auto& in = d.incoming;
                const auto a = !in.empty() ? value_of(in[0]) : 0ull;
                const auto b = in.size() > 1 ? value_of(in[1]) : 0ull;
                const auto e = in.size() > 2 ? value_of(in[2]) : 0ull;
                values.set(c, ntk::evaluate_gate_word(d.type, a, b, e));
            }
        }
        for (std::size_t o = 0; o < layout.po_tiles().size(); ++o)
        {
            raw[o].push_back(value_of(layout.po_tiles()[o]));
        }
    }

    // align each PO's raw stream with its expected stream
    result.aligned = true;
    result.po_frames.assign(layout.num_pos(), {});
    result.latency_cycles.assign(layout.num_pos(), 0);
    for (std::size_t o = 0; o < layout.num_pos(); ++o)
    {
        bool found = false;
        for (std::size_t lat = 0; lat <= options.max_latency_frames && !found; ++lat)
        {
            bool match = true;
            for (std::size_t f = 0; f < frames.size(); ++f)
            {
                if (raw[o][f + lat] != expected[o][f])
                {
                    match = false;
                    break;
                }
            }
            if (match)
            {
                found = true;
                result.latency_cycles[o] = lat * cycles_per_frame;
                for (std::size_t f = 0; f < frames.size(); ++f)
                {
                    result.po_frames[o].push_back(raw[o][f + lat]);
                }
            }
        }
        if (!found)
        {
            result.aligned = false;
            result.po_frames[o] = raw[o];  // diagnostics
        }
    }
    return result;
}

wave_equivalence_result check_stream_equivalence(const ntk::logic_network& specification,
                                                 const gate_level_layout& layout, const std::size_t rounds,
                                                 const std::uint64_t seed)
{
    wave_equivalence_result result{};

    // match PIs by name
    std::vector<std::string> layout_pis;
    for (const auto& c : layout.pi_tiles())
    {
        layout_pis.push_back(layout.get(c).io_name);
    }
    std::unordered_map<std::string, std::size_t> spec_po_index;
    for (std::size_t i = 0; i < specification.num_pos(); ++i)
    {
        spec_po_index.emplace(specification.name_of(specification.po_at(i)), i);
    }

    std::mt19937_64 rng{seed};
    std::vector<std::vector<std::uint64_t>> frames;
    std::vector<std::vector<std::uint64_t>> expected(layout.num_pos());
    for (std::size_t r = 0; r < rounds; ++r)
    {
        std::unordered_map<std::string, std::uint64_t> by_name;
        for (const auto& name : layout_pis)
        {
            by_name.emplace(name, rng());
        }

        std::vector<std::uint64_t> spec_words;
        bool names_ok = true;
        specification.foreach_pi(
            [&](const auto pi)
            {
                const auto it = by_name.find(specification.name_of(pi));
                if (it == by_name.cend())
                {
                    names_ok = false;
                    spec_words.push_back(0);
                    return;
                }
                spec_words.push_back(it->second);
            });
        if (!names_ok || by_name.size() != specification.num_pis())
        {
            result.reason = "primary input name sets differ";
            return result;
        }
        const auto spec_out = ntk::simulate_word(specification, spec_words);

        std::vector<std::uint64_t> frame;
        frame.reserve(layout_pis.size());
        for (const auto& name : layout_pis)
        {
            frame.push_back(by_name.at(name));
        }
        frames.push_back(std::move(frame));
        for (std::size_t o = 0; o < layout.num_pos(); ++o)
        {
            const auto it = spec_po_index.find(layout.get(layout.po_tiles()[o]).io_name);
            if (it == spec_po_index.cend())
            {
                result.reason = "unknown layout output '" + layout.get(layout.po_tiles()[o]).io_name + "'";
                return result;
            }
            expected[o].push_back(spec_out[it->second]);
        }
    }

    const auto stream = wave_stream_simulate(layout, frames, expected);
    if (!stream.aligned)
    {
        result.reason = "output stream could not be aligned (unbalanced or mis-clocked paths)";
        return result;
    }
    result.equivalent = true;
    return result;
}

wave_equivalence_result check_wave_equivalence(const ntk::logic_network& specification,
                                               const gate_level_layout& layout,
                                               const wave_equivalence_options& options)
{
    wave_equivalence_result result{};

    // match PIs/POs by name
    std::vector<std::string> spec_pis;
    specification.foreach_pi([&](const auto pi) { spec_pis.push_back(specification.name_of(pi)); });
    std::vector<std::string> layout_pis;
    for (const auto& c : layout.pi_tiles())
    {
        layout_pis.push_back(layout.get(c).io_name);
    }
    if (std::set<std::string>(spec_pis.cbegin(), spec_pis.cend()) !=
        std::set<std::string>(layout_pis.cbegin(), layout_pis.cend()))
    {
        result.reason = "primary input name sets differ";
        return result;
    }

    std::unordered_map<std::string, std::size_t> spec_po_index;
    for (std::size_t i = 0; i < specification.num_pos(); ++i)
    {
        spec_po_index.emplace(specification.name_of(specification.po_at(i)), i);
    }

    const auto k = spec_pis.size();
    const bool formal = k <= options.formal_threshold;
    const auto total_bits = formal ? (1ull << k) : 0ull;
    const auto rounds = formal ? std::max<std::uint64_t>(1, total_bits / 64) : options.random_rounds;
    const auto mask = formal && total_bits < 64 ? (1ull << total_bits) - 1ull : ~0ull;

    std::mt19937_64 rng{options.seed};

    // Row-batched: rounds are grouped into blocks and driven through the
    // specification simulator and the wave simulator as whole rows via the
    // simd kernels. Word-major comparison preserves the first-mismatch
    // reporting of the former one-round-at-a-time loop.
    constexpr std::uint64_t block_rounds = 64;

    for (std::uint64_t r0 = 0; r0 < rounds; r0 += block_rounds)
    {
        const auto n = static_cast<std::size_t>(std::min(block_rounds, rounds - r0));

        // canonical per-name rows for this block
        std::unordered_map<std::string, const std::uint64_t*> row_by_name;
        std::vector<std::uint64_t> canonical_rows(k * n, 0ull);
        if (formal)
        {
            for (std::size_t v = 0; v < k; ++v)
            {
                static constexpr std::uint64_t patterns[6] = {0xaaaaaaaaaaaaaaaaull, 0xccccccccccccccccull,
                                                              0xf0f0f0f0f0f0f0f0ull, 0xff00ff00ff00ff00ull,
                                                              0xffff0000ffff0000ull, 0xffffffff00000000ull};
                for (std::size_t i = 0; i < n; ++i)
                {
                    canonical_rows[v * n + i] =
                        v < 6 ? patterns[v] : (((((r0 + i) * 64ull) >> v) & 1ull) ? ~0ull : 0ull);
                }
            }
        }
        else
        {
            // round-major draw order: identical rng consumption to the former
            // per-round loop (one word per PI per round, PI-creation order)
            for (std::size_t i = 0; i < n; ++i)
            {
                for (std::size_t v = 0; v < k; ++v)
                {
                    canonical_rows[v * n + i] = rng();
                }
            }
        }
        row_by_name.reserve(k);
        for (std::size_t v = 0; v < k; ++v)
        {
            row_by_name.emplace(spec_pis[v], canonical_rows.data() + v * n);
        }

        // specification outputs
        std::vector<std::uint64_t> spec_rows;
        spec_rows.reserve(k * n);
        specification.foreach_pi(
            [&](const auto pi)
            {
                const auto* row = row_by_name.at(specification.name_of(pi));
                spec_rows.insert(spec_rows.end(), row, row + n);
            });
        const auto spec_out = ntk::simulate_rows(specification, spec_rows, n);

        // layout outputs through the wave simulator
        std::vector<std::uint64_t> layout_rows;
        layout_rows.reserve(layout_pis.size() * n);
        for (const auto& name : layout_pis)
        {
            const auto* row = row_by_name.at(name);
            layout_rows.insert(layout_rows.end(), row, row + n);
        }
        const auto wave = wave_simulate_block(layout, layout_rows, n);
        if (!wave.stabilized)
        {
            result.stabilized = false;
            result.reason = "layout did not stabilize (mis-clocked or cyclic connectivity)";
            return result;
        }

        for (std::size_t i = 0; i < n; ++i)
        {
            for (std::size_t o = 0; o < wave.po_names.size(); ++o)
            {
                const auto it = spec_po_index.find(wave.po_names[o]);
                if (it == spec_po_index.cend())
                {
                    result.reason = "unknown layout output '" + wave.po_names[o] + "'";
                    return result;
                }
                if ((wave.po_rows[o * n + i] & mask) != (spec_out[it->second * n + i] & mask))
                {
                    result.reason = "output '" + wave.po_names[o] + "' differs in steady state";
                    return result;
                }
            }
        }
    }

    result.equivalent = true;
    return result;
}

}  // namespace mnt::ver
