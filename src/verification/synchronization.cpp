#include "verification/synchronization.hpp"

#include "layout/layout_utils.hpp"

#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

namespace mnt::ver
{

synchronization_report analyze_synchronization(const lyt::gate_level_layout& layout)
{
    synchronization_report report{};

    // earliest/latest PI-path arrival per tile, in ticks; a tile's own latch
    // adds one tick on top of its fanins' arrivals. The table is a dense
    // array indexed like the layout grid — the topological walk guarantees
    // every fanin's entry is written before it is read.
    const auto w = static_cast<std::size_t>(layout.width());
    const auto h = static_cast<std::size_t>(layout.height());
    const auto index_of = [w, h](const lyt::coordinate& c)
    { return (static_cast<std::size_t>(c.z) * h + static_cast<std::size_t>(c.y)) * w + static_cast<std::size_t>(c.x); };
    std::vector<std::pair<std::size_t, std::size_t>> arrival(2 * w * h);

    for (const auto& c : lyt::topological_tile_order(layout))
    {
        const auto& d = layout.get(c);
        if (d.incoming.empty())
        {
            arrival[index_of(c)] = {0, 0};  // PIs (and floating tiles) start the wave
            continue;
        }

        std::size_t min_in = std::numeric_limits<std::size_t>::max();
        std::size_t max_in = 0;
        for (const auto& in : d.incoming)
        {
            const auto& [lo, hi] = arrival[index_of(in)];
            min_in = std::min(min_in, lo);
            max_in = std::max(max_in, hi);
        }
        arrival[index_of(c)] = {min_in + 1, max_in + 1};

        // skew matters where data is *combined*: gates with several fanins
        if (d.incoming.size() > 1)
        {
            // compare the latest arrival of each individual fanin path
            std::size_t lo = std::numeric_limits<std::size_t>::max();
            std::size_t hi = 0;
            for (const auto& in : d.incoming)
            {
                const auto latest = arrival[index_of(in)].second;
                lo = std::min(lo, latest);
                hi = std::max(hi, latest);
            }
            if (hi != lo)
            {
                report.violations.push_back({c, lo + 1, hi + 1});
                report.max_skew = std::max(report.max_skew, hi - lo);
            }
        }

        if (d.type == ntk::gate_type::po)
        {
            report.max_po_arrival = std::max(report.max_po_arrival, arrival[index_of(c)].second);
        }
    }

    std::sort(report.violations.begin(), report.violations.end(),
              [](const skew_violation& a, const skew_violation& b)
              { return a.skew() != b.skew() ? a.skew() > b.skew() : a.tile < b.tile; });
    return report;
}

}  // namespace mnt::ver
