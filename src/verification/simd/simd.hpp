#pragma once

/// \file simd.hpp
/// \brief Row-batched verification kernels with runtime SIMD dispatch.
///
/// The wave simulator, the truth-table equivalence checker and the DRC scan
/// all reduce to the same inner loop: evaluate one gate function lane-wise
/// over rows of packed 64-assignment words. This module provides that loop
/// in two interchangeable backends:
///
///  - \b scalar: a plain loop over \ref mnt::ntk::evaluate_gate_word. This is
///    the reference implementation; it is correct by construction because it
///    calls the exact function the per-word simulators use.
///  - \b avx2: the same loop four words at a time with AVX2 intrinsics,
///    compiled in a dedicated translation unit with `-mavx2`.
///
/// Both backends are bit-identical by contract: every kernel is pure bitwise
/// arithmetic, so vectorization cannot change results (no floating point, no
/// reassociation hazards). The contract is enforced, not assumed — the
/// differential property suite in tests/test_properties_simd.cpp pits the two
/// backends against each other on randomized rows, networks and layouts.
///
/// Backend selection happens once at first use: the `MNT_SIMD` environment
/// variable (`scalar`, `avx2` or `auto`) takes precedence, otherwise AVX2 is
/// used when the CPU supports it. Tests may force a backend with
/// \ref set_backend.

#include "network/gate_type.hpp"

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace mnt::simd
{

/// Available kernel backends.
enum class backend : std::uint8_t
{
    /// Reference loop over \ref mnt::ntk::evaluate_gate_word.
    scalar = 0,
    /// AVX2 256-bit lanes (4 words per step), scalar tail.
    avx2
};

/// Stable lower-case identifier for \p b ("scalar"/"avx2").
[[nodiscard]] std::string_view backend_name(backend b) noexcept;

/// True when the executing CPU (and this build) can run the AVX2 backend.
[[nodiscard]] bool avx2_supported() noexcept;

/// Function table of the row kernels. All kernels tolerate n == 0; row
/// pointers may alias only if dst == a (in-place buffer evaluation is used by
/// the wave simulator's PI latch).
struct kernel_table
{
    /// dst[i] = evaluate_gate_word(t, a[i], b ? b[i] : 0, c ? c[i] : 0).
    /// \p b and \p c may be nullptr for arities below their position.
    void (*gate_row)(ntk::gate_type t, std::uint64_t* dst, const std::uint64_t* a, const std::uint64_t* b,
                     const std::uint64_t* c, std::size_t n);

    /// Returns the smallest i with a[i] != b[i], or n if the rows are equal.
    std::size_t (*mismatch)(const std::uint64_t* a, const std::uint64_t* b, std::size_t n);
};

/// Kernel table for a specific backend. Requesting \ref backend::avx2 on a
/// machine without AVX2 support throws precondition_error.
[[nodiscard]] const kernel_table& kernels_for(backend b);

/// Kernel table of the active backend (resolved once; see file comment).
[[nodiscard]] const kernel_table& kernels();

/// The currently active backend.
[[nodiscard]] backend active_backend();

/// Forces the active backend (test hook; pairs with \ref reset_backend).
/// \throws precondition_error if \p b is not supported on this machine
void set_backend(backend b);

/// Reverts \ref set_backend to the MNT_SIMD/auto-detected default.
void reset_backend();

}  // namespace mnt::simd
