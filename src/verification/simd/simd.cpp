/// \file simd.cpp
/// \brief Backend resolution and dispatch for the row kernels.

#include "verification/simd/simd.hpp"

#include "verification/simd/simd_tables.hpp"

#include "common/types.hpp"

#include <atomic>
#include <cstdlib>
#include <string>

namespace mnt::simd
{

namespace
{

/// -1 = not resolved yet; otherwise a backend value.
std::atomic<int> resolved{-1};

[[nodiscard]] bool cpu_has_avx2() noexcept
{
#if (defined(__x86_64__) || defined(__i386__)) && (defined(__GNUC__) || defined(__clang__))
    return __builtin_cpu_supports("avx2") != 0;
#else
    return false;
#endif
}

/// Resolves the default backend: MNT_SIMD env override first (`scalar`,
/// `avx2`, anything else = auto), then CPU detection. An `avx2` request on a
/// machine that cannot run it degrades to scalar — verification must work,
/// not crash, under a stale environment; tests that need a hard guarantee
/// use set_backend, which throws instead.
[[nodiscard]] backend resolve_default()
{
    if (const char* env = std::getenv("MNT_SIMD"); env != nullptr)
    {
        const std::string value{env};
        if (value == "scalar")
        {
            return backend::scalar;
        }
        if (value == "avx2")
        {
            return avx2_supported() ? backend::avx2 : backend::scalar;
        }
    }
    return avx2_supported() ? backend::avx2 : backend::scalar;
}

}  // namespace

std::string_view backend_name(const backend b) noexcept
{
    return b == backend::avx2 ? "avx2" : "scalar";
}

bool avx2_supported() noexcept
{
    return detail::avx2_compiled && cpu_has_avx2();
}

const kernel_table& kernels_for(const backend b)
{
    if (b == backend::avx2)
    {
        if (!avx2_supported())
        {
            throw precondition_error{"simd::kernels_for: avx2 backend is not supported on this machine"};
        }
        return detail::avx2_kernels;
    }
    return detail::scalar_kernels;
}

const kernel_table& kernels()
{
    return active_backend() == backend::avx2 ? detail::avx2_kernels : detail::scalar_kernels;
}

backend active_backend()
{
    auto current = resolved.load(std::memory_order_acquire);
    if (current < 0)
    {
        const auto def = resolve_default();
        current = static_cast<int>(def);
        int expected = -1;
        // a concurrent first use resolves to the same value; keep theirs
        if (!resolved.compare_exchange_strong(expected, current, std::memory_order_acq_rel))
        {
            current = expected;
        }
    }
    return static_cast<backend>(current);
}

void set_backend(const backend b)
{
    if (b == backend::avx2 && !avx2_supported())
    {
        throw precondition_error{"simd::set_backend: avx2 backend is not supported on this machine"};
    }
    resolved.store(static_cast<int>(b), std::memory_order_release);
}

void reset_backend()
{
    resolved.store(-1, std::memory_order_release);
}

}  // namespace mnt::simd
