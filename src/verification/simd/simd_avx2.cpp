/// \file simd_avx2.cpp
/// \brief AVX2 row kernels: four 64-assignment words per step.
///
/// This is the only translation unit in the repository compiled with
/// `-mavx2` (see src/CMakeLists.txt); nothing here may be inlined into
/// generic code, which is why the kernels are reached exclusively through
/// the function-pointer table in \ref mnt::simd::kernels.
///
/// Every kernel is pure bitwise arithmetic over uint64 lanes, so the vector
/// and scalar paths are bit-identical by construction; the differential
/// property suite verifies this on randomized inputs rather than trusting
/// the argument.

#include "verification/simd/simd_tables.hpp"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace mnt::simd::detail
{

namespace
{

#if defined(__AVX2__)

using ntk::gate_type;

[[nodiscard]] inline __m256i load(const std::uint64_t* p) noexcept
{
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
}

inline void store(std::uint64_t* p, const __m256i v) noexcept
{
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
}

void gate_row_avx2(const gate_type t, std::uint64_t* dst, const std::uint64_t* a, const std::uint64_t* b,
                   const std::uint64_t* c, const std::size_t n)
{
    const auto ones = _mm256_set1_epi64x(-1);
    std::size_t i = 0;

    // vector body: one case per function, 4 words per step. Types that the
    // tail handles via evaluate_gate_word anyway (constants, none, pi) are
    // cheap enough that vectorizing them would only add code.
    switch (t)
    {
        case gate_type::po:
        case gate_type::buf:
        case gate_type::fanout:
            for (; i + 4 <= n; i += 4)
            {
                store(dst + i, load(a + i));
            }
            break;
        case gate_type::inv:
            for (; i + 4 <= n; i += 4)
            {
                store(dst + i, _mm256_xor_si256(load(a + i), ones));
            }
            break;
        case gate_type::and2:
            for (; i + 4 <= n; i += 4)
            {
                store(dst + i, _mm256_and_si256(load(a + i), load(b + i)));
            }
            break;
        case gate_type::nand2:
            for (; i + 4 <= n; i += 4)
            {
                store(dst + i, _mm256_xor_si256(_mm256_and_si256(load(a + i), load(b + i)), ones));
            }
            break;
        case gate_type::or2:
            for (; i + 4 <= n; i += 4)
            {
                store(dst + i, _mm256_or_si256(load(a + i), load(b + i)));
            }
            break;
        case gate_type::nor2:
            for (; i + 4 <= n; i += 4)
            {
                store(dst + i, _mm256_xor_si256(_mm256_or_si256(load(a + i), load(b + i)), ones));
            }
            break;
        case gate_type::xor2:
            for (; i + 4 <= n; i += 4)
            {
                store(dst + i, _mm256_xor_si256(load(a + i), load(b + i)));
            }
            break;
        case gate_type::xnor2:
            for (; i + 4 <= n; i += 4)
            {
                store(dst + i, _mm256_xor_si256(_mm256_xor_si256(load(a + i), load(b + i)), ones));
            }
            break;
        case gate_type::lt2:
            // ~a & b == andnot(a, b)
            for (; i + 4 <= n; i += 4)
            {
                store(dst + i, _mm256_andnot_si256(load(a + i), load(b + i)));
            }
            break;
        case gate_type::gt2:
            for (; i + 4 <= n; i += 4)
            {
                store(dst + i, _mm256_andnot_si256(load(b + i), load(a + i)));
            }
            break;
        case gate_type::le2:
            for (; i + 4 <= n; i += 4)
            {
                store(dst + i, _mm256_or_si256(_mm256_xor_si256(load(a + i), ones), load(b + i)));
            }
            break;
        case gate_type::ge2:
            for (; i + 4 <= n; i += 4)
            {
                store(dst + i, _mm256_or_si256(load(a + i), _mm256_xor_si256(load(b + i), ones)));
            }
            break;
        case gate_type::maj3:
            for (; i + 4 <= n; i += 4)
            {
                const auto va = load(a + i);
                const auto vb = load(b + i);
                const auto vc = load(c + i);
                store(dst + i, _mm256_or_si256(_mm256_or_si256(_mm256_and_si256(va, vb), _mm256_and_si256(va, vc)),
                                               _mm256_and_si256(vb, vc)));
            }
            break;
        default: break;
    }

    // scalar tail — also the full body for non-vectorized types
    for (; i < n; ++i)
    {
        dst[i] = ntk::evaluate_gate_word(t, a != nullptr ? a[i] : 0ull, b != nullptr ? b[i] : 0ull,
                                         c != nullptr ? c[i] : 0ull);
    }
}

std::size_t mismatch_avx2(const std::uint64_t* a, const std::uint64_t* b, const std::size_t n)
{
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
    {
        const auto eq = _mm256_cmpeq_epi64(load(a + i), load(b + i));
        if (_mm256_movemask_epi8(eq) != -1)
        {
            break;  // the exact lane is found by the scalar loop below
        }
    }
    for (; i < n; ++i)
    {
        if (a[i] != b[i])
        {
            return i;
        }
    }
    return n;
}

#endif  // __AVX2__

}  // namespace

#if defined(__AVX2__)
const kernel_table avx2_kernels{&gate_row_avx2, &mismatch_avx2};
const bool avx2_compiled = true;
#else
const kernel_table avx2_kernels = scalar_kernels;
const bool avx2_compiled = false;
#endif

}  // namespace mnt::simd::detail
