#pragma once

/// \file simd_tables.hpp
/// \brief Internal linkage between the simd backend translation units and
///        the dispatcher. Not part of the public API.

#include "verification/simd/simd.hpp"

namespace mnt::simd::detail
{

/// Reference kernels (simd_scalar.cpp).
extern const kernel_table scalar_kernels;

/// AVX2 kernels (simd_avx2.cpp, compiled with -mavx2). When that TU was
/// built without AVX2 support (non-x86 target or missing compiler flag) the
/// table aliases the scalar loops and \ref avx2_compiled is false.
extern const kernel_table avx2_kernels;

/// True when the avx2 table really contains AVX2 code paths.
extern const bool avx2_compiled;

}  // namespace mnt::simd::detail
