/// \file simd_scalar.cpp
/// \brief Reference row kernels: plain loops over evaluate_gate_word.
///
/// This translation unit is the ground truth of the differential contract —
/// it must stay a direct per-lane transcription of the per-word simulator
/// semantics with no cleverness, so that "SIMD == scalar" keeps meaning
/// "SIMD == the single-word reference path".

#include "verification/simd/simd.hpp"
#include "verification/simd/simd_tables.hpp"

namespace mnt::simd::detail
{

namespace
{

void gate_row_scalar(const ntk::gate_type t, std::uint64_t* dst, const std::uint64_t* a, const std::uint64_t* b,
                     const std::uint64_t* c, const std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
    {
        dst[i] = ntk::evaluate_gate_word(t, a != nullptr ? a[i] : 0ull, b != nullptr ? b[i] : 0ull,
                                         c != nullptr ? c[i] : 0ull);
    }
}

std::size_t mismatch_scalar(const std::uint64_t* a, const std::uint64_t* b, const std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
    {
        if (a[i] != b[i])
        {
            return i;
        }
    }
    return n;
}

}  // namespace

const kernel_table scalar_kernels{&gate_row_scalar, &mismatch_scalar};

}  // namespace mnt::simd::detail
