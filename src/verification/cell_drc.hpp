#pragma once

/// \file cell_drc.hpp
/// \brief Design rule checking at the cell level: sanity rules that QCA and
///        SiDB cell layouts must satisfy independent of their gate-level
///        origin (connectivity, clocking plausibility, I/O labeling).

#include "gate_library/cell_layout.hpp"

#include <string>
#include <vector>

namespace mnt::ver
{

/// Outcome of a cell-level design rule check.
struct cell_drc_report
{
    std::vector<std::string> errors;
    std::vector<std::string> warnings;

    [[nodiscard]] bool passed() const noexcept
    {
        return errors.empty();
    }
};

/// Runs the cell-level checks on \p cells:
///
/// - every input/output cell carries a name; names are unique per role,
/// - crossover cells appear only in the crossing layer and sit above or
///   below another cell (they realize a vertical interconnect),
/// - fixed-polarization cells have at least one same-layer neighbor within
///   a 1-cell radius (a floating fixed cell drives nothing),
/// - no completely isolated cells (no neighbor within a 2-cell radius;
///   warning only — border I/O pads can legitimately stick out),
/// - neighboring same-layer cells differ by at most one clock zone step
///   (information cannot jump zones; wrap-around 3 -> 0 is one step).
[[nodiscard]] cell_drc_report cell_level_drc(const gl::cell_level_layout& cells);

}  // namespace mnt::ver
