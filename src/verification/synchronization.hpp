#pragma once

/// \file synchronization.hpp
/// \brief Path-delay (synchronization) analysis of gate-level layouts.
///
/// FCN layouts are wave pipelines: every tile delays its signal by exactly
/// one clock phase. A multi-input gate therefore combines *consistent* data
/// only if all its fanin paths from the primary inputs have equal tick
/// delay; any skew makes the gate mix different input frames once the
/// layout is streamed at full rate (one frame per clock cycle). Keeping
/// that skew at zero is the job of signal distribution networks — the
/// subject of the InOrd paper in MNT Bench's tool set. This analyzer
/// measures the skew so harnesses can predict (and tests can cross-check
/// against \ref wave_stream_simulate) whether a layout is full-rate
/// streamable.

#include "layout/coordinates.hpp"
#include "layout/gate_level_layout.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace mnt::ver
{

/// One unsynchronized gate: fanin paths of different tick delay.
struct skew_violation
{
    lyt::coordinate tile;
    /// Arrival ticks of the earliest and latest fanin path.
    std::size_t min_arrival{0};
    std::size_t max_arrival{0};

    [[nodiscard]] std::size_t skew() const noexcept
    {
        return max_arrival - min_arrival;
    }
};

/// Synchronization analysis result.
struct synchronization_report
{
    /// Gates whose fanin paths are skewed, largest skew first.
    std::vector<skew_violation> violations;

    /// Largest fanin skew in the layout (0 = fully balanced).
    std::size_t max_skew{0};

    /// Ticks from the primary inputs to the latest primary output.
    std::size_t max_po_arrival{0};

    /// True iff every multi-input gate is perfectly balanced — the layout
    /// can then stream one new input frame per clock cycle.
    [[nodiscard]] bool full_rate_streamable() const noexcept
    {
        return max_skew == 0;
    }

    /// Throughput as a fraction of the clock rate: 1 / (1 + ceil(skew/4)).
    /// A balanced layout runs at 1; every four ticks of skew cost one
    /// additional cycle of frame holding.
    [[nodiscard]] double relative_throughput() const noexcept
    {
        return 1.0 / (1.0 + static_cast<double>((max_skew + 3) / 4));
    }
};

/// Analyzes the fanin-path delays of \p layout. Arrival times are measured
/// in ticks (clock phases) from the PIs; every tile adds one tick.
///
/// \throws mnt::design_rule_error on cyclic connectivity
[[nodiscard]] synchronization_report analyze_synchronization(const lyt::gate_level_layout& layout);

}  // namespace mnt::ver
