#pragma once

/// \file wave_simulation.hpp
/// \brief Clock-phase-accurate simulation of gate-level FCN layouts.
///
/// FCN circuits are deeply pipelined: the external clock fields move
/// information one clock zone per phase tick, four phases per full cycle.
/// This simulator executes a layout tick by tick — at tick t every tile in
/// zone (t mod 4) latches the function of its fanin tiles — until the
/// outputs stabilize. It is an independent semantic check from
/// \ref mnt::lyt::extract_network: a layout whose connections violate the
/// clocking discipline settles to wrong or unstable outputs here even if
/// its connection graph looks sound, and the measured settle latency is the
/// physical signal delay of the layout.

#include "layout/gate_level_layout.hpp"
#include "network/logic_network.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace mnt::ver
{

/// Result of a wave simulation run.
struct wave_result
{
    /// One 64-assignment word per PO, in PO tile creation order, taken from
    /// the stabilized state.
    std::vector<std::uint64_t> po_words;

    /// PO names aligned with \ref po_words.
    std::vector<std::string> po_names;

    /// Ticks (clock phases) until all tile values stopped changing.
    std::size_t settle_ticks{0};

    /// False if the layout did not stabilize within the tick budget (a
    /// symptom of cyclic or mis-clocked connectivity).
    bool stabilized{false};
};

/// Options of \ref wave_simulate.
struct wave_options
{
    /// Tick budget; 0 derives a generous bound from the layout size.
    std::size_t max_ticks{0};
};

/// Simulates \p layout with one 64-assignment input word per PI (in PI tile
/// creation order; inputs are held constant for the whole run).
///
/// \throws mnt::precondition_error if pi_words.size() != layout.num_pis()
[[nodiscard]] wave_result wave_simulate(const lyt::gate_level_layout& layout,
                                        const std::vector<std::uint64_t>& pi_words,
                                        const wave_options& options = {});

/// Result of a row-batched wave simulation (\ref wave_simulate_block).
struct wave_block_result
{
    /// Flat row-major PO rows: word \c i of PO \c o at `po_rows[o * n + i]`,
    /// POs in tile creation order.
    std::vector<std::uint64_t> po_rows;

    /// PO names aligned with \ref po_rows.
    std::vector<std::string> po_names;

    /// Ticks until *all* word lanes stopped changing (the max over lanes).
    std::size_t settle_ticks{0};

    /// False if any lane failed to stabilize within the tick budget.
    bool stabilized{false};
};

/// Row-batched variant of \ref wave_simulate: runs \p n 64-assignment words
/// per PI through the layout in one tick loop, evaluating every tile's
/// function over whole rows with the active \ref mnt::simd kernels.
///
/// Bit-identical to \p n independent \ref wave_simulate runs: tiles latch in
/// the same zone-major/coordinate order, the kernels are pure bitwise
/// arithmetic, and the stabilized state is a fixpoint of the tick map — a
/// lane that settles early is simply re-latched to the same values while
/// slower lanes catch up.
///
/// \param pi_rows flat row-major input rows: word \c i of PI \c p (PI tile
///                creation order) at `pi_rows[p * n + i]`
/// \throws mnt::precondition_error if pi_rows.size() != num_pis * n
[[nodiscard]] wave_block_result wave_simulate_block(const lyt::gate_level_layout& layout,
                                                    const std::vector<std::uint64_t>& pi_rows, std::size_t n,
                                                    const wave_options& options = {});

/// Full equivalence check through the wave simulator: PIs/POs are matched
/// by name against \p specification, assignments are enumerated completely
/// (<= formal_threshold inputs) or sampled randomly. Catches clocking
/// violations that graph extraction cannot.
struct wave_equivalence_options
{
    std::size_t formal_threshold{12};
    std::size_t random_rounds{16};
    std::uint64_t seed{0x57415645ull};  // "WAVE"
};

struct wave_equivalence_result
{
    bool equivalent{false};
    bool stabilized{true};
    std::string reason;

    explicit operator bool() const noexcept
    {
        return equivalent;
    }
};

[[nodiscard]] wave_equivalence_result check_wave_equivalence(const ntk::logic_network& specification,
                                                             const lyt::gate_level_layout& layout,
                                                             const wave_equivalence_options& options = {});

// ---------------------------------------------------------------------------
// streaming (pipelined) simulation
// ---------------------------------------------------------------------------

/// Result of a streaming simulation: FCN layouts are deep pipelines that
/// accept one input frame per clock cycle and emit one output frame per
/// cycle after a fixed latency.
struct stream_result
{
    /// Output frames per PO (outer: PO in tile creation order; inner: one
    /// word per input frame), aligned to the input stream: frame f of PO o
    /// is the layout's response to input frame f.
    std::vector<std::vector<std::uint64_t>> po_frames;

    /// PO names aligned with po_frames.
    std::vector<std::string> po_names;

    /// Measured pipeline latency in full clock cycles per PO (frames of
    /// delay between an input and its response).
    std::vector<std::size_t> latency_cycles;

    /// True if every PO produced a consistent latency (a mis-clocked layout
    /// garbles the stream and fails alignment).
    bool aligned{false};
};

/// Options of \ref wave_stream_simulate.
struct stream_options
{
    /// Clock cycles each input frame is held. 1 = full rate (requires a
    /// path-balanced layout, as on real FCN hardware); 0 = automatic safe
    /// rate derived from the layout's depth (every frame settles fully).
    std::size_t cycles_per_frame{0};

    /// Largest latency (in frames) considered during stream alignment.
    std::size_t max_latency_frames{16};
};

/// Feeds input frames through \p layout — frame f is applied for
/// \ref stream_options::cycles_per_frame clock cycles — and records the PO
/// streams. The per-frame responses are recovered by aligning each PO's raw
/// stream with the expected response stream \p expected (indexed
/// [po][frame], PO order as in the layout).
///
/// At full rate this is the strongest functional check in the repository:
/// an FCN layout transports a *changing* data stream correctly only if all
/// reconvergent paths are delay-balanced — the synchronization property the
/// signal distribution networks of the InOrd paper exist for.
[[nodiscard]] stream_result wave_stream_simulate(const lyt::gate_level_layout& layout,
                                                 const std::vector<std::vector<std::uint64_t>>& frames,
                                                 const std::vector<std::vector<std::uint64_t>>& expected,
                                                 const stream_options& options = {});

/// Stream-based equivalence: drives \p rounds random frames through the
/// layout at full rate (one new frame per clock cycle) and checks that every
/// PO emits the specification's responses in order at a constant latency.
[[nodiscard]] wave_equivalence_result check_stream_equivalence(const ntk::logic_network& specification,
                                                               const lyt::gate_level_layout& layout,
                                                               std::size_t rounds = 24,
                                                               std::uint64_t seed = 0x53545245ull);

}  // namespace mnt::ver
