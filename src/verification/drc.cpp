#include "verification/drc.hpp"

#include "common/taskrt/taskrt.hpp"
#include "layout/layout_utils.hpp"

#include "common/types.hpp"

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace mnt::ver
{

namespace
{

using lyt::coordinate;
using lyt::gate_level_layout;

/// Per-row DRC findings, bucketed by check family so the fused single scan
/// reproduces the historic two-pass message order exactly: all tile-rule
/// errors (in scan order) first, then all connectivity errors, then the
/// connectivity warnings.
struct row_findings
{
    std::vector<std::string> rule_errors;
    std::vector<std::string> conn_errors;
    std::vector<std::string> conn_warnings;
};

/// Both per-tile check families — the old check_tile_rules and
/// check_connectivity bodies — fused into one visit, so the grid is scanned
/// once instead of twice. Reads only const layout state: rows are checked
/// concurrently by the task runtime.
void check_tile(const gate_level_layout& layout, const coordinate& c, const gate_level_layout::tile_data& d,
                row_findings& out)
{
    // --- tile rules
    if (!layout.within_bounds(c))
    {
        out.rule_errors.push_back("tile " + c.to_string() + " lies outside the layout bounds");
    }
    if (c.z == 1)
    {
        if (d.type != ntk::gate_type::buf)
        {
            out.rule_errors.push_back("crossing tile " + c.to_string() + " hosts a non-wire gate");
        }
        if (layout.type_of(c.ground()) != ntk::gate_type::buf)
        {
            out.rule_errors.push_back("crossing tile " + c.to_string() +
                                      " does not sit above a ground-layer wire");
        }
    }

    // --- connectivity
    const auto expected = (c.z == 1) ? std::size_t{1} : static_cast<std::size_t>(ntk::gate_arity(d.type));
    if (d.incoming.size() != expected)
    {
        out.conn_errors.push_back("tile " + c.to_string() + " (" + std::string{ntk::gate_type_name(d.type)} +
                                  ") has " + std::to_string(d.incoming.size()) + " fanins, expected " +
                                  std::to_string(expected));
    }

    for (const auto& in : d.incoming)
    {
        if (layout.is_empty_tile(in))
        {
            out.conn_errors.push_back("tile " + c.to_string() + " is fed by empty tile " + in.to_string());
            continue;
        }
        if (!lyt::are_adjacent(in, c, layout.topology()))
        {
            out.conn_errors.push_back("connection " + in.to_string() + " -> " + c.to_string() +
                                      " links non-adjacent tiles");
        }
        if (!layout.clocking().is_incoming_clocked(c, in))
        {
            out.conn_errors.push_back("connection " + in.to_string() + " -> " + c.to_string() +
                                      " violates the clocking (zones " +
                                      std::to_string(layout.clock_number(in)) + " -> " +
                                      std::to_string(layout.clock_number(c)) + ")");
        }
    }

    // fanout capacity
    const auto branches = layout.outgoing_of(c).size();
    const auto capacity = [&]() -> std::size_t
    {
        switch (d.type)
        {
            case ntk::gate_type::po: return 0;
            case ntk::gate_type::fanout: return max_fanout_branches;
            default: return 1;
        }
    }();
    if (branches > capacity)
    {
        out.conn_errors.push_back("tile " + c.to_string() + " (" + std::string{ntk::gate_type_name(d.type)} +
                                  ") drives " + std::to_string(branches) + " successors, allowed " +
                                  std::to_string(capacity));
    }
    if (d.type != ntk::gate_type::po && branches == 0)
    {
        out.conn_warnings.push_back("tile " + c.to_string() + " drives no successor (dead output)");
    }
}

void check_io(const gate_level_layout& layout, drc_report& report)
{
    std::set<std::string> pi_names;
    for (const auto& c : layout.pi_tiles())
    {
        const auto& name = layout.get(c).io_name;
        if (name.empty())
        {
            report.errors.push_back("PI tile " + c.to_string() + " has no name");
        }
        else if (!pi_names.insert(name).second)
        {
            report.errors.push_back("duplicate PI name '" + name + "'");
        }
        const bool border = c.x == 0 || c.y == 0 || c.x == static_cast<std::int32_t>(layout.width()) - 1 ||
                            c.y == static_cast<std::int32_t>(layout.height()) - 1;
        if (!border)
        {
            report.warnings.push_back("PI '" + name + "' at " + c.to_string() + " is not on the layout border");
        }
    }

    std::set<std::string> po_names;
    for (const auto& c : layout.po_tiles())
    {
        const auto& name = layout.get(c).io_name;
        if (name.empty())
        {
            report.errors.push_back("PO tile " + c.to_string() + " has no name");
        }
        else if (!po_names.insert(name).second)
        {
            report.errors.push_back("duplicate PO name '" + name + "'");
        }
        const bool border = c.x == 0 || c.y == 0 || c.x == static_cast<std::int32_t>(layout.width()) - 1 ||
                            c.y == static_cast<std::int32_t>(layout.height()) - 1;
        if (!border)
        {
            report.warnings.push_back("PO '" + name + "' at " + c.to_string() + " is not on the layout border");
        }
    }
}

void check_acyclic(const gate_level_layout& layout, drc_report& report)
{
    try
    {
        static_cast<void>(lyt::topological_tile_order(layout));
    }
    catch (const mnt::design_rule_error& e)
    {
        report.errors.emplace_back(e.what());
    }
}

}  // namespace

drc_report gate_level_drc(const lyt::gate_level_layout& layout)
{
    drc_report report{};

    // Row-batched fused sweep: one grid scan (instead of the historic
    // tile-rules + connectivity double scan) over independent (z, y) rows,
    // parallelized by the task runtime on multi-core configurations. Row
    // buckets are concatenated in row order per check family, so the report
    // is byte-identical to the sequential two-pass output at any thread
    // count.
    const auto height = layout.height();
    const auto rows   = 2 * height;  // ground layer rows, then crossing layer rows

    // occupancy prefilter: one pass over the occupied tiles marks which
    // (z, y) rows actually host gates, and only those enter the parallel
    // sweep. The crossing layer is almost entirely empty on real layouts,
    // so this halves (or better) the number of scanned rows.
    std::vector<std::uint8_t> row_occupied(rows, 0);
    layout.foreach_tile(
        [&](const coordinate& c, const gate_level_layout::tile_data&)
        { row_occupied[static_cast<std::size_t>(c.z) * height + static_cast<std::size_t>(c.y)] = 1; });
    std::vector<std::size_t> occupied_rows;
    occupied_rows.reserve(rows);
    for (std::size_t r = 0; r < rows; ++r)
    {
        if (row_occupied[r] != 0)
        {
            occupied_rows.push_back(r);
        }
    }

    // findings are bucketed per occupied row; concatenating the buckets in
    // (ascending-row) bucket order below yields the exact sequential report
    // because empty rows contribute nothing.
    std::vector<row_findings> findings(occupied_rows.size());
    trt::parallel_for(0, occupied_rows.size(), 1,
                      [&](const std::size_t bucket_begin, const std::size_t bucket_end)
                      {
                          for (std::size_t i = bucket_begin; i < bucket_end; ++i)
                          {
                              const auto r = occupied_rows[i];
                              const auto z = static_cast<std::uint8_t>(r / height);
                              const auto y = static_cast<std::int32_t>(r % height);
                              layout.foreach_tile_in_row(
                                  z, y, [&](const coordinate& c, const gate_level_layout::tile_data& d)
                                  { check_tile(layout, c, d, findings[i]); });
                          }
                      });

    for (auto& row : findings)
    {
        for (auto& message : row.rule_errors)
        {
            report.errors.push_back(std::move(message));
        }
    }
    for (auto& row : findings)
    {
        for (auto& message : row.conn_errors)
        {
            report.errors.push_back(std::move(message));
        }
    }
    for (auto& row : findings)
    {
        for (auto& message : row.conn_warnings)
        {
            report.warnings.push_back(std::move(message));
        }
    }

    check_io(layout, report);
    check_acyclic(layout, report);
    return report;
}

}  // namespace mnt::ver
