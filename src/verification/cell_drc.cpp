#include "verification/cell_drc.hpp"

#include <cmath>
#include <set>
#include <string>

namespace mnt::ver
{

namespace
{

using gl::cell_kind;
using gl::cell_level_layout;
using lyt::coordinate;

/// True if zones a and b are at most one 4-phase step apart (in either
/// direction, wrapping).
bool zones_compatible(const std::uint8_t a, const std::uint8_t b)
{
    const auto diff = (a + 4 - b) % 4;
    return diff == 0 || diff == 1 || diff == 3;
}

}  // namespace

cell_drc_report cell_level_drc(const cell_level_layout& cells)
{
    cell_drc_report report{};

    std::set<std::string> input_names;
    std::set<std::string> output_names;

    cells.foreach_cell(
        [&](const coordinate& c, const gl::cell& payload, const std::uint8_t zone)
        {
            // I/O labeling
            if (payload.kind == cell_kind::input)
            {
                if (payload.name.empty())
                {
                    report.errors.push_back("input cell " + c.to_string() + " has no name");
                }
                else if (!input_names.insert(payload.name).second)
                {
                    report.errors.push_back("duplicate input cell name '" + payload.name + "'");
                }
            }
            if (payload.kind == cell_kind::output)
            {
                if (payload.name.empty())
                {
                    report.errors.push_back("output cell " + c.to_string() + " has no name");
                }
                else if (!output_names.insert(payload.name).second)
                {
                    report.errors.push_back("duplicate output cell name '" + payload.name + "'");
                }
            }

            // crossover layer rule
            if (payload.kind == cell_kind::crossover && c.z != 1)
            {
                report.errors.push_back("crossover cell " + c.to_string() + " outside the crossing layer");
            }

            // neighborhood scans
            bool has_close_neighbor = false;      // radius 1, same layer
            bool has_any_neighbor = false;        // radius 2, any layer
            bool zone_clash = false;
            for (std::int32_t dy = -2; dy <= 2; ++dy)
            {
                for (std::int32_t dx = -2; dx <= 2; ++dx)
                {
                    if (dx == 0 && dy == 0)
                    {
                        continue;
                    }
                    for (const std::uint8_t dz : {0, 1})
                    {
                        const coordinate n{c.x + dx, c.y + dy, dz};
                        if (cells.is_empty_cell(n))
                        {
                            continue;
                        }
                        has_any_neighbor = true;
                        if (std::abs(dx) <= 1 && std::abs(dy) <= 1 && dz == c.z)
                        {
                            has_close_neighbor = true;
                            if (!zones_compatible(zone, cells.clock_zone_of(n)))
                            {
                                zone_clash = true;
                            }
                        }
                    }
                }
            }
            // the crossing layer also counts the cell directly below/above
            const coordinate stacked{c.x, c.y, static_cast<std::uint8_t>(c.z == 0 ? 1 : 0)};
            if (!cells.is_empty_cell(stacked))
            {
                has_any_neighbor = true;
            }

            if (payload.kind == cell_kind::fixed_0 || payload.kind == cell_kind::fixed_1)
            {
                if (!has_close_neighbor)
                {
                    report.errors.push_back("fixed cell " + c.to_string() + " drives no neighbor");
                }
            }
            if (!has_any_neighbor)
            {
                report.warnings.push_back("cell " + c.to_string() + " is isolated");
            }
            if (zone_clash)
            {
                report.errors.push_back("cell " + c.to_string() + " neighbors a cell more than one clock zone away");
            }
        });

    return report;
}

}  // namespace mnt::ver
