#pragma once

/// \file equivalence.hpp
/// \brief Equivalence checking between logic networks and gate-level
///        layouts. Every physical design algorithm in this repository is
///        validated against this module: a layout that is not equivalent to
///        its specification network is a bug, full stop.
///
/// PIs and POs are matched *by name*, so transformations may reorder or
/// rebuild I/Os freely as long as names are preserved. Networks with up to
/// \ref equivalence_options::formal_threshold inputs are checked formally by
/// complete truth-table enumeration; larger ones by seeded random simulation
/// (64 assignments per round).

#include "layout/gate_level_layout.hpp"
#include "network/logic_network.hpp"

#include <cstdint>
#include <string>

namespace mnt::ver
{

/// Options for \ref check_equivalence.
struct equivalence_options
{
    /// Up to this many PIs, a complete truth-table check is performed.
    std::size_t formal_threshold{16};

    /// Number of random 64-assignment words simulated beyond the threshold.
    std::size_t random_rounds{64};

    /// Seed for the random vectors (deterministic by default).
    std::uint64_t seed{0x4d4e545f42454eull};  // "MNT_BEN"
};

/// Result of an equivalence check.
struct equivalence_result
{
    /// Outcome; when false, \ref reason explains the first mismatch.
    bool equivalent{false};

    /// True if the result was established by complete enumeration.
    bool formal{false};

    /// Human-readable explanation on failure (empty on success).
    std::string reason;

    explicit operator bool() const noexcept
    {
        return equivalent;
    }
};

/// Checks functional equivalence of two networks with name-matched I/Os.
[[nodiscard]] equivalence_result check_equivalence(const ntk::logic_network& a, const ntk::logic_network& b,
                                                   const equivalence_options& options = {});

/// Extracts the network realized by \p layout and checks it against
/// \p specification.
[[nodiscard]] equivalence_result check_layout_equivalence(const ntk::logic_network& specification,
                                                          const lyt::gate_level_layout& layout,
                                                          const equivalence_options& options = {});

}  // namespace mnt::ver
