#pragma once

/// \file drc.hpp
/// \brief Gate-level design rule checking for FCN layouts.
///
/// The DRC verifies the structural legality of a layout independent of its
/// function:
///
/// - bounds and layer rules (z = 1 hosts wire segments only, above a wire),
/// - fanin completeness (every gate has exactly its arity of connections),
/// - adjacency (connected tiles are planar neighbors under the topology),
/// - clocking (every connection advances the clock zone by one),
/// - fanout capacity (gates drive one successor, fan-outs up to two),
/// - I/O hygiene (named, unique PIs/POs; border placement as a warning),
/// - acyclicity of the connection graph.

#include "layout/gate_level_layout.hpp"

#include <cstddef>
#include <string>
#include <vector>

namespace mnt::ver
{

/// Outcome of a design rule check.
struct drc_report
{
    /// Hard violations; a layout with errors is not fabricable.
    std::vector<std::string> errors;

    /// Soft findings (e.g. non-border I/O pins).
    std::vector<std::string> warnings;

    /// True if no errors were found (warnings allowed).
    [[nodiscard]] bool passed() const noexcept
    {
        return errors.empty();
    }
};

/// Maximum number of successors a fanout tile may drive.
inline constexpr std::size_t max_fanout_branches = 2;

/// Runs all design rule checks on \p layout.
[[nodiscard]] drc_report gate_level_drc(const lyt::gate_level_layout& layout);

}  // namespace mnt::ver
