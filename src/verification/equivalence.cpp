#include "verification/equivalence.hpp"

#include "layout/layout_utils.hpp"
#include "network/simulation.hpp"

#include <algorithm>
#include <random>
#include <set>
#include <unordered_map>
#include <vector>

namespace mnt::ver
{

namespace
{

using ntk::logic_network;

/// Collects PI names in creation order.
std::vector<std::string> pi_names(const logic_network& network)
{
    std::vector<std::string> names;
    names.reserve(network.num_pis());
    network.foreach_pi([&](const logic_network::node pi) { names.push_back(network.name_of(pi)); });
    return names;
}

std::vector<std::string> po_names(const logic_network& network)
{
    std::vector<std::string> names;
    names.reserve(network.num_pos());
    network.foreach_po([&](const logic_network::node po) { names.push_back(network.name_of(po)); });
    return names;
}

/// Canonical variable pattern for variable index v within 64-assignment word w.
std::uint64_t variable_pattern(const std::size_t v, const std::uint64_t w)
{
    static constexpr std::uint64_t patterns[6] = {0xaaaaaaaaaaaaaaaaull, 0xccccccccccccccccull,
                                                  0xf0f0f0f0f0f0f0f0ull, 0xff00ff00ff00ff00ull,
                                                  0xffff0000ffff0000ull, 0xffffffff00000000ull};
    if (v < 6)
    {
        return patterns[v];
    }
    return (((w * 64ull) >> v) & 1ull) ? ~0ull : 0ull;
}

}  // namespace

equivalence_result check_equivalence(const logic_network& a, const logic_network& b,
                                     const equivalence_options& options)
{
    equivalence_result result{};

    const auto a_pis = pi_names(a);
    const auto b_pis = pi_names(b);
    if (std::set<std::string>(a_pis.cbegin(), a_pis.cend()) != std::set<std::string>(b_pis.cbegin(), b_pis.cend()))
    {
        result.reason = "primary input name sets differ";
        return result;
    }

    const auto a_pos = po_names(a);
    const auto b_pos = po_names(b);
    if (std::set<std::string>(a_pos.cbegin(), a_pos.cend()) != std::set<std::string>(b_pos.cbegin(), b_pos.cend()))
    {
        result.reason = "primary output name sets differ";
        return result;
    }

    // map PO name -> position per network for output matching
    std::unordered_map<std::string, std::size_t> a_po_index;
    std::unordered_map<std::string, std::size_t> b_po_index;
    for (std::size_t i = 0; i < a_pos.size(); ++i)
    {
        a_po_index.emplace(a_pos[i], i);
    }
    for (std::size_t i = 0; i < b_pos.size(); ++i)
    {
        b_po_index.emplace(b_pos[i], i);
    }
    if (a_po_index.size() != a_pos.size() || b_po_index.size() != b_pos.size())
    {
        result.reason = "duplicate primary output names";
        return result;
    }

    const auto k = a_pis.size();
    const bool formal = k <= options.formal_threshold;
    result.formal = formal;

    // Row-batched compare: `canonical_rows` holds one n-word row per PI in
    // a_pis order; both networks are simulated once per block through the
    // simd kernels, then words are compared in word-major order so the first
    // reported mismatch matches what the former one-word-per-round loop
    // produced.
    const auto compare_block = [&](const std::vector<std::uint64_t>& canonical_rows, const std::size_t n,
                                   const std::uint64_t mask) -> bool
    {
        std::unordered_map<std::string, const std::uint64_t*> row_by_name;
        row_by_name.reserve(k);
        for (std::size_t v = 0; v < k; ++v)
        {
            row_by_name.emplace(a_pis[v], canonical_rows.data() + v * n);
        }
        const auto rows_for = [&](const logic_network& network)
        {
            std::vector<std::uint64_t> rows;
            rows.reserve(network.num_pis() * n);
            network.foreach_pi(
                [&](const logic_network::node pi)
                {
                    const auto* row = row_by_name.at(network.name_of(pi));
                    rows.insert(rows.end(), row, row + n);
                });
            return rows;
        };
        const auto a_out = ntk::simulate_rows(a, rows_for(a), n);
        const auto b_out = ntk::simulate_rows(b, rows_for(b), n);
        for (std::size_t i = 0; i < n; ++i)
        {
            for (const auto& [name, ai] : a_po_index)
            {
                const auto bi = b_po_index.at(name);
                if ((a_out[ai * n + i] & mask) != (b_out[bi * n + i] & mask))
                {
                    result.reason = "output '" + name + "' differs";
                    return false;
                }
            }
        }
        return true;
    };

    constexpr std::uint64_t block_words = 256;
    std::vector<std::uint64_t> canonical_rows;

    if (formal)
    {
        const auto total_bits = 1ull << k;
        const auto num_words = std::max<std::uint64_t>(1, total_bits / 64);
        const auto mask = total_bits < 64 ? (1ull << total_bits) - 1ull : ~0ull;
        for (std::uint64_t w0 = 0; w0 < num_words; w0 += block_words)
        {
            const auto n = static_cast<std::size_t>(std::min(block_words, num_words - w0));
            canonical_rows.assign(k * n, 0ull);
            for (std::size_t v = 0; v < k; ++v)
            {
                for (std::size_t i = 0; i < n; ++i)
                {
                    canonical_rows[v * n + i] = variable_pattern(v, w0 + i);
                }
            }
            if (!compare_block(canonical_rows, n, mask))
            {
                return result;
            }
        }
    }
    else
    {
        std::mt19937_64 rng{options.seed};
        for (std::size_t r0 = 0; r0 < options.random_rounds; r0 += block_words)
        {
            const auto n = static_cast<std::size_t>(
                std::min<std::uint64_t>(block_words, static_cast<std::uint64_t>(options.random_rounds - r0)));
            canonical_rows.assign(k * n, 0ull);
            // round-major draw order: identical rng consumption to the former
            // one-round-at-a-time loop (one word per PI per round)
            for (std::size_t i = 0; i < n; ++i)
            {
                for (std::size_t v = 0; v < k; ++v)
                {
                    canonical_rows[v * n + i] = rng();
                }
            }
            if (!compare_block(canonical_rows, n, ~0ull))
            {
                return result;
            }
        }
    }

    result.equivalent = true;
    return result;
}

equivalence_result check_layout_equivalence(const logic_network& specification, const lyt::gate_level_layout& layout,
                                            const equivalence_options& options)
{
    try
    {
        const auto extracted = lyt::extract_network(layout);
        return check_equivalence(specification, extracted, options);
    }
    catch (const mnt_error& e)
    {
        equivalence_result result{};
        result.reason = std::string{"layout extraction failed: "} + e.what();
        return result;
    }
}

}  // namespace mnt::ver
