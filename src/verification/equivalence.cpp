#include "verification/equivalence.hpp"

#include "layout/layout_utils.hpp"
#include "network/simulation.hpp"

#include <algorithm>
#include <random>
#include <set>
#include <unordered_map>
#include <vector>

namespace mnt::ver
{

namespace
{

using ntk::logic_network;

/// Collects PI names in creation order.
std::vector<std::string> pi_names(const logic_network& network)
{
    std::vector<std::string> names;
    names.reserve(network.num_pis());
    network.foreach_pi([&](const logic_network::node pi) { names.push_back(network.name_of(pi)); });
    return names;
}

std::vector<std::string> po_names(const logic_network& network)
{
    std::vector<std::string> names;
    names.reserve(network.num_pos());
    network.foreach_po([&](const logic_network::node po) { names.push_back(network.name_of(po)); });
    return names;
}

/// Builds per-network PI word vectors from a canonical name -> word map.
std::vector<std::uint64_t> words_for(const logic_network& network,
                                     const std::unordered_map<std::string, std::uint64_t>& by_name)
{
    std::vector<std::uint64_t> words;
    words.reserve(network.num_pis());
    network.foreach_pi([&](const logic_network::node pi) { words.push_back(by_name.at(network.name_of(pi))); });
    return words;
}

/// Canonical variable pattern for variable index v within 64-assignment word w.
std::uint64_t variable_pattern(const std::size_t v, const std::uint64_t w)
{
    static constexpr std::uint64_t patterns[6] = {0xaaaaaaaaaaaaaaaaull, 0xccccccccccccccccull,
                                                  0xf0f0f0f0f0f0f0f0ull, 0xff00ff00ff00ff00ull,
                                                  0xffff0000ffff0000ull, 0xffffffff00000000ull};
    if (v < 6)
    {
        return patterns[v];
    }
    return (((w * 64ull) >> v) & 1ull) ? ~0ull : 0ull;
}

}  // namespace

equivalence_result check_equivalence(const logic_network& a, const logic_network& b,
                                     const equivalence_options& options)
{
    equivalence_result result{};

    const auto a_pis = pi_names(a);
    const auto b_pis = pi_names(b);
    if (std::set<std::string>(a_pis.cbegin(), a_pis.cend()) != std::set<std::string>(b_pis.cbegin(), b_pis.cend()))
    {
        result.reason = "primary input name sets differ";
        return result;
    }

    const auto a_pos = po_names(a);
    const auto b_pos = po_names(b);
    if (std::set<std::string>(a_pos.cbegin(), a_pos.cend()) != std::set<std::string>(b_pos.cbegin(), b_pos.cend()))
    {
        result.reason = "primary output name sets differ";
        return result;
    }

    // map PO name -> position per network for output matching
    std::unordered_map<std::string, std::size_t> a_po_index;
    std::unordered_map<std::string, std::size_t> b_po_index;
    for (std::size_t i = 0; i < a_pos.size(); ++i)
    {
        a_po_index.emplace(a_pos[i], i);
    }
    for (std::size_t i = 0; i < b_pos.size(); ++i)
    {
        b_po_index.emplace(b_pos[i], i);
    }
    if (a_po_index.size() != a_pos.size() || b_po_index.size() != b_pos.size())
    {
        result.reason = "duplicate primary output names";
        return result;
    }

    const auto k = a_pis.size();
    const bool formal = k <= options.formal_threshold;
    result.formal = formal;

    const auto compare_round = [&](const std::unordered_map<std::string, std::uint64_t>& by_name,
                                   const std::uint64_t mask) -> bool
    {
        const auto a_out = ntk::simulate_word(a, words_for(a, by_name));
        const auto b_out = ntk::simulate_word(b, words_for(b, by_name));
        for (const auto& [name, ai] : a_po_index)
        {
            const auto bi = b_po_index.at(name);
            if ((a_out[ai] & mask) != (b_out[bi] & mask))
            {
                result.reason = "output '" + name + "' differs";
                return false;
            }
        }
        return true;
    };

    if (formal)
    {
        const auto total_bits = 1ull << k;
        const auto num_words = std::max<std::uint64_t>(1, total_bits / 64);
        const auto mask = total_bits < 64 ? (1ull << total_bits) - 1ull : ~0ull;
        for (std::uint64_t w = 0; w < num_words; ++w)
        {
            std::unordered_map<std::string, std::uint64_t> by_name;
            for (std::size_t v = 0; v < k; ++v)
            {
                by_name.emplace(a_pis[v], variable_pattern(v, w));
            }
            if (!compare_round(by_name, mask))
            {
                return result;
            }
        }
    }
    else
    {
        std::mt19937_64 rng{options.seed};
        for (std::size_t r = 0; r < options.random_rounds; ++r)
        {
            std::unordered_map<std::string, std::uint64_t> by_name;
            for (const auto& name : a_pis)
            {
                by_name.emplace(name, rng());
            }
            if (!compare_round(by_name, ~0ull))
            {
                return result;
            }
        }
    }

    result.equivalent = true;
    return result;
}

equivalence_result check_layout_equivalence(const logic_network& specification, const lyt::gate_level_layout& layout,
                                            const equivalence_options& options)
{
    try
    {
        const auto extracted = lyt::extract_network(layout);
        return check_equivalence(specification, extracted, options);
    }
    catch (const mnt_error& e)
    {
        equivalence_result result{};
        result.reason = std::string{"layout extraction failed: "} + e.what();
        return result;
    }
}

}  // namespace mnt::ver
