#include "layout/coordinates.hpp"

#include "common/types.hpp"

#include <cmath>
#include <cstdlib>

namespace mnt::lyt
{

std::string topology_name(const layout_topology topo)
{
    return topo == layout_topology::cartesian ? "cartesian" : "hexagonal";
}

layout_topology topology_from_name(const std::string& name)
{
    if (name == "cartesian")
    {
        return layout_topology::cartesian;
    }
    if (name == "hexagonal" || name == "hexagonal_even_row" || name == "even_row_hex")
    {
        return layout_topology::hexagonal_even_row;
    }
    throw mnt_error{"unknown layout topology '" + name + "'"};
}

std::string coordinate::to_string() const
{
    return "(" + std::to_string(x) + ", " + std::to_string(y) + ", " + std::to_string(z) + ")";
}

std::vector<coordinate> planar_neighbors(const coordinate& c, const layout_topology topo)
{
    if (topo == layout_topology::cartesian)
    {
        return {{c.x + 1, c.y, c.z}, {c.x, c.y + 1, c.z}, {c.x - 1, c.y, c.z}, {c.x, c.y - 1, c.z}};
    }

    // even-row offset hexagons, pointy-top; odd rows shifted right
    if ((c.y & 1) == 0)
    {
        return {{c.x + 1, c.y, c.z},     {c.x - 1, c.y, c.z},     {c.x - 1, c.y - 1, c.z},
                {c.x, c.y - 1, c.z},     {c.x - 1, c.y + 1, c.z}, {c.x, c.y + 1, c.z}};
    }
    return {{c.x + 1, c.y, c.z},     {c.x - 1, c.y, c.z},     {c.x, c.y - 1, c.z},
            {c.x + 1, c.y - 1, c.z}, {c.x, c.y + 1, c.z},     {c.x + 1, c.y + 1, c.z}};
}

bool are_adjacent(const coordinate& a, const coordinate& b, const layout_topology topo)
{
    for (const auto& n : planar_neighbors(coordinate{a.x, a.y, 0}, topo))
    {
        if (n.x == b.x && n.y == b.y)
        {
            return true;
        }
    }
    return false;
}

std::uint32_t grid_distance(const coordinate& a, const coordinate& b, const layout_topology topo)
{
    const auto dx = std::abs(a.x - b.x);
    const auto dy = std::abs(a.y - b.y);
    if (topo == layout_topology::cartesian)
    {
        return static_cast<std::uint32_t>(dx + dy);
    }
    // hexagonal offset grids: moving one row can also change x by one, so the
    // row difference may "absorb" part of the column difference
    return static_cast<std::uint32_t>(std::max<std::int64_t>(dy, dx));
}

}  // namespace mnt::lyt
