#pragma once

/// \file gate_level_layout.hpp
/// \brief Clocked, tile-based gate-level FCN layout — the abstraction-level
///        "Gate-level (.fgl)" artifact of MNT Bench.
///
/// A gate-level layout places typed gates (see \ref mnt::ntk::gate_type) on
/// the tiles of a clocked grid. Connections are explicit: every tile stores
/// the coordinates of the tiles feeding it, in fanin-slot order. Wires are
/// buffer gates; a wire crossing is a second buffer in layer z = 1 above a
/// ground-layer wire. Layout area is width x height tiles — the figure of
/// merit of the paper's Table I.
///
/// The class is deliberately permissive while a layout is under
/// construction; \ref mnt::ver::gate_level_drc performs the full design-rule
/// check (adjacency, clocking, fanin/fanout capacities, crossing rules).
///
/// Storage is a dense flat grid: one slot per (x, y, z) cell, indexed
/// (z * height + y) * width + x, with the gate type doubling as the
/// occupancy flag (\ref ntk::gate_type::none = empty) and fixed-capacity
/// inline fanout lists (FCN fanout is at most 2). All point queries are
/// O(1) array lookups, full traversals are linear row-major scans, and
/// \ref tiles_sorted needs no sort — the scan order *is* the documented
/// (y, x, z) order.

#include "layout/clocking_scheme.hpp"
#include "layout/coordinates.hpp"
#include "network/gate_type.hpp"

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace mnt::lyt
{

/// A tile-based gate-level layout on a clocked Cartesian or hexagonal grid.
class gate_level_layout
{
public:
    /// Payload of an occupied tile.
    struct tile_data
    {
        ntk::gate_type type{ntk::gate_type::none};
        /// Fanin tiles in slot order (slot 0 first).
        std::vector<coordinate> incoming;
        /// PI/PO name; empty for other gate types.
        std::string io_name;
    };

    /// Creates an empty layout of the given dimensions.
    ///
    /// \param layout_name design name (usually the benchmark function name)
    /// \param topo grid topology
    /// \param scheme clocking scheme (must be ROW or OPEN for hexagonal)
    /// \param width initial width in tiles (> 0)
    /// \param height initial height in tiles (> 0)
    gate_level_layout(std::string layout_name, layout_topology topo, clocking_scheme scheme, std::uint32_t width,
                      std::uint32_t height);

    /// Creates an empty 1x1 placeholder layout (for record types that fill
    /// in a real layout later).
    gate_level_layout();

    // ----------------------------------------------------------- geometry

    [[nodiscard]] std::uint32_t width() const noexcept;
    [[nodiscard]] std::uint32_t height() const noexcept;

    /// Layout area in tiles (width x height) — the "A" column of Table I.
    [[nodiscard]] std::uint64_t area() const noexcept;

    [[nodiscard]] layout_topology topology() const noexcept;

    [[nodiscard]] const clocking_scheme& clocking() const noexcept;

    /// Mutable access for OPEN schemes (per-tile zone assignment).
    [[nodiscard]] clocking_scheme& clocking_mutable() noexcept;

    /// True if (x, y) lies within the current bounds and z < 2.
    [[nodiscard]] bool within_bounds(const coordinate& c) const noexcept;

    /// Grows or shrinks the bounding dimensions. Validate-then-commit: on
    /// failure the layout (tiles, connectivity, PI/PO lists and per-tile
    /// clock overrides) is left untouched. On shrink, OPEN-scheme clock
    /// overrides outside the new bounds are pruned so a later re-grow cannot
    /// resurrect stale zones.
    ///
    /// \throws precondition_error if an occupied tile would fall outside
    void resize(std::uint32_t width, std::uint32_t height);

    /// Shrinks the dimensions to the occupied bounding box (translating all
    /// tiles so the box starts at the origin).
    void shrink_to_fit();

    /// Smallest/largest occupied ground-layer coordinates; {0,0}/{0,0} if
    /// the layout is empty.
    [[nodiscard]] std::pair<coordinate, coordinate> bounding_box() const;

    // ------------------------------------------------------- construction

    /// Places a gate of type \p t on tile \p c. Crossing-layer tiles
    /// (z == 1) may only host \ref ntk::gate_type::buf.
    ///
    /// \throws precondition_error if the tile is occupied, out of bounds,
    ///         the type is none/const, or the crossing-layer rule is violated
    void place(const coordinate& c, ntk::gate_type t, const std::string& io_name = {});

    /// Maximum number of outgoing connections per tile. FCN gates drive one
    /// successor, fanout gates two — the inline fanout lists of the dense
    /// grid are sized accordingly (the DRC additionally enforces the
    /// per-gate-type budget).
    static constexpr std::size_t max_fanout = 2;

    /// Declares that the output of tile \p src feeds the next free fanin
    /// slot of tile \p dst.
    ///
    /// \throws precondition_error if either tile is empty, all fanin slots
    ///         of \p dst are taken, or \p src already drives
    ///         \ref max_fanout successors
    void connect(const coordinate& src, const coordinate& dst);

    /// Removes a previously declared connection.
    void disconnect(const coordinate& src, const coordinate& dst);

    /// Reorders the fanin slots of \p dst to match \p order (which must be a
    /// permutation of the current incoming list). Needed by optimization
    /// passes that rip up and re-establish connections of non-commutative
    /// gates.
    ///
    /// \throws precondition_error if \p order is not a permutation of the
    ///         current incoming list
    void set_incoming_order(const coordinate& dst, const std::vector<coordinate>& order);

    /// Removes the gate on \p c together with all its connections.
    void clear_tile(const coordinate& c);

    /// Relocates the gate on \p from to the empty tile \p to, preserving all
    /// connections (coordinates in neighbor fanin lists are patched).
    ///
    /// \throws precondition_error if \p from is empty or \p to is occupied
    void move_tile(const coordinate& from, const coordinate& to);

    // ------------------------------------------------------------ queries

    [[nodiscard]] bool is_empty_tile(const coordinate& c) const;
    [[nodiscard]] bool has_tile(const coordinate& c) const;

    /// Read access to an occupied tile.
    ///
    /// \throws precondition_error if the tile is empty
    [[nodiscard]] const tile_data& get(const coordinate& c) const;

    /// Gate type on \p c; \ref ntk::gate_type::none for empty tiles.
    [[nodiscard]] ntk::gate_type type_of(const coordinate& c) const;

    /// Fanin tiles of \p c in slot order (empty vector for empty tiles).
    [[nodiscard]] const std::vector<coordinate>& incoming_of(const coordinate& c) const;

    /// Tiles fed by \p c in connection order (empty span for empty tiles).
    /// The span views the tile's inline fanout list; it is invalidated by
    /// any mutation of the layout.
    [[nodiscard]] std::span<const coordinate> outgoing_of(const coordinate& c) const;

    /// PI/PO tiles in creation order.
    [[nodiscard]] const std::vector<coordinate>& pi_tiles() const noexcept;
    [[nodiscard]] const std::vector<coordinate>& po_tiles() const noexcept;

    [[nodiscard]] std::size_t num_pis() const noexcept;
    [[nodiscard]] std::size_t num_pos() const noexcept;

    /// Number of logic gates (excluding PIs, POs, buffers, fan-outs).
    [[nodiscard]] std::size_t num_gates() const;

    /// Number of wire segments (buffers + fan-outs, both layers).
    [[nodiscard]] std::size_t num_wires() const;

    /// Number of crossing-layer tiles (z == 1).
    [[nodiscard]] std::size_t num_crossings() const;

    /// Number of occupied tiles overall.
    [[nodiscard]] std::size_t num_occupied() const noexcept;

    /// Clock zone of \p c under the layout's scheme.
    [[nodiscard]] std::uint8_t clock_number(const coordinate& c) const;

    /// In-bounds planar neighbors of \p c that may *receive* information
    /// from it (zone + 1), as ground-layer coordinates.
    [[nodiscard]] std::vector<coordinate> outgoing_clocked(const coordinate& c) const;

    /// In-bounds planar neighbors of \p c that may *send* information to it
    /// (zone - 1), as ground-layer coordinates.
    [[nodiscard]] std::vector<coordinate> incoming_clocked(const coordinate& c) const;

    /// Iterates all occupied tiles in deterministic layer-major
    /// (z, y, x) scan order: fn(coordinate, tile_data).
    template <typename Fn>
    void foreach_tile(Fn&& fn) const
    {
        std::size_t index = 0;
        for (std::uint8_t z = 0; z < 2; ++z)
        {
            for (std::int32_t y = 0; y < static_cast<std::int32_t>(h); ++y)
            {
                for (std::int32_t x = 0; x < static_cast<std::int32_t>(w); ++x, ++index)
                {
                    const auto& slot = grid[index];
                    if (slot.data.type != ntk::gate_type::none)
                    {
                        fn(coordinate{x, y, z}, slot.data);
                    }
                }
            }
        }
    }

    /// Scans one (z, y) row of the grid in x order — the row-batched unit of
    /// DRC's parallel sweep. Same callback shape as \ref foreach_tile;
    /// visiting rows z-major (z*height + y ascending) reproduces the exact
    /// foreach_tile visit order.
    template <typename Fn>
    void foreach_tile_in_row(const std::uint8_t z, const std::int32_t y, Fn&& fn) const
    {
        auto index = (static_cast<std::size_t>(z) * h + static_cast<std::size_t>(y)) * w;
        for (std::int32_t x = 0; x < static_cast<std::int32_t>(w); ++x, ++index)
        {
            const auto& slot = grid[index];
            if (slot.data.type != ntk::gate_type::none)
            {
                fn(coordinate{x, y, z}, slot.data);
            }
        }
    }

    /// All occupied coordinates in deterministic (y, x, z) order — a cheap
    /// row-major scan of the dense grid, no sort involved.
    [[nodiscard]] std::vector<coordinate> tiles_sorted() const;

    [[nodiscard]] const std::string& layout_name() const noexcept;
    void set_layout_name(std::string layout_name);

private:
    /// One dense grid slot: the public tile payload plus the inline fanout
    /// list. An empty slot is data.type == none with empty vectors — cheap
    /// enough that the grid stores slots for every cell.
    struct grid_slot
    {
        tile_data data{};
        std::array<coordinate, max_fanout> outs{};
        std::uint8_t out_count{0};
    };

    [[nodiscard]] std::size_t index_of(const coordinate& c) const noexcept
    {
        return (static_cast<std::size_t>(c.z) * h + static_cast<std::size_t>(c.y)) * w +
               static_cast<std::size_t>(c.x);
    }

    /// Slot lookup; callers must ensure within_bounds(c).
    [[nodiscard]] grid_slot& slot_at(const coordinate& c) noexcept
    {
        return grid[index_of(c)];
    }
    [[nodiscard]] const grid_slot& slot_at(const coordinate& c) const noexcept
    {
        return grid[index_of(c)];
    }

    [[nodiscard]] bool occupied_at(const coordinate& c) const noexcept
    {
        return within_bounds(c) && slot_at(c).data.type != ntk::gate_type::none;
    }

    void check_occupied(const coordinate& c, const char* ctx) const;
    void erase_outgoing(grid_slot& slot, const coordinate& dst) noexcept;

    std::string design_name;
    layout_topology topo;
    clocking_scheme scheme;
    std::uint32_t w;
    std::uint32_t h;

    /// 2 * w * h slots, indexed (z * h + y) * w + x.
    std::vector<grid_slot> grid;
    std::size_t occupied_count{0};
    std::vector<coordinate> pis;
    std::vector<coordinate> pos;
};

}  // namespace mnt::lyt
