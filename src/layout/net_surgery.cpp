#include "layout/net_surgery.hpp"

#include "common/types.hpp"

#include <algorithm>

namespace mnt::lyt
{

using ntk::gate_type;

net_surgeon::net_surgeon(gate_level_layout& layout_ref, const std::size_t route_expansions) : target{layout_ref}
{
    opts.allow_crossings = true;
    opts.max_expansions = route_expansions;
}

connection net_surgeon::trace_incoming(const coordinate& dst, const std::size_t slot) const
{
    connection conn;
    conn.dst = dst;
    conn.dst_slot = slot;
    auto cur = target.incoming_of(dst)[slot];
    while (target.type_of(cur) == gate_type::buf)
    {
        conn.chain.push_back(cur);
        cur = target.incoming_of(cur)[0];
    }
    conn.src = cur;
    std::reverse(conn.chain.begin(), conn.chain.end());
    return conn;
}

std::vector<connection> net_surgeon::all_connections() const
{
    std::vector<connection> result;
    for (const auto& c : target.tiles_sorted())
    {
        if (target.type_of(c) == gate_type::buf)
        {
            continue;
        }
        for (std::size_t slot = 0; slot < target.incoming_of(c).size(); ++slot)
        {
            result.push_back(trace_incoming(c, slot));
        }
    }
    return result;
}

std::vector<connection> net_surgeon::incident_connections(const coordinate& g) const
{
    std::vector<connection> result;
    for (std::size_t slot = 0; slot < target.incoming_of(g).size(); ++slot)
    {
        result.push_back(trace_incoming(g, slot));
    }
    const auto outs_view = target.outgoing_of(g);
    for (const auto& out : std::vector<coordinate>(outs_view.begin(), outs_view.end()))
    {
        connection conn;
        conn.src = g;
        auto cur = out;
        while (target.type_of(cur) == gate_type::buf)
        {
            conn.chain.push_back(cur);
            cur = target.outgoing_of(cur)[0];
        }
        conn.dst = cur;
        const auto& dst_in = target.incoming_of(conn.dst);
        const auto feeder = conn.chain.empty() ? g : conn.chain.back();
        const auto it = std::find(dst_in.cbegin(), dst_in.cend(), feeder);
        conn.dst_slot = static_cast<std::size_t>(it - dst_in.cbegin());
        result.push_back(conn);
    }
    return result;
}

void net_surgeon::rip(const connection& conn)
{
    const auto feeder = conn.chain.empty() ? conn.src : conn.chain.back();
    target.disconnect(feeder, conn.dst);
    for (auto it = conn.chain.rbegin(); it != conn.chain.rend(); ++it)
    {
        const auto tile = *it;
        target.clear_tile(tile);
        if (tile.z == 0 && target.has_tile(tile.elevated()))
        {
            target.move_tile(tile.elevated(), tile);
        }
    }
}

coordinate net_surgeon::restore(const connection& conn)
{
    auto prev = conn.src;
    coordinate feeder = conn.src;
    for (const auto& stored : conn.chain)
    {
        const auto placed = place_wire(stored.x, stored.y);
        target.connect(prev, placed);
        prev = placed;
        feeder = placed;
    }
    target.connect(prev, conn.dst);
    return feeder;
}

std::optional<coordinate> net_surgeon::route_shortest(const coordinate& src, const coordinate& dst)
{
    const auto path = find_path(target, src, dst, opts);
    if (!path.has_value())
    {
        return std::nullopt;
    }
    establish_path(target, src, dst, *path);
    return path->empty() ? src : path->back();
}

std::optional<std::size_t> net_surgeon::shortest_length(const coordinate& src, const coordinate& dst) const
{
    const auto path = find_path(target, src, dst, opts);
    if (!path.has_value())
    {
        return std::nullopt;
    }
    return path->size();
}

gate_level_layout& net_surgeon::layout() noexcept
{
    return target;
}

const gate_level_layout& net_surgeon::layout() const noexcept
{
    return target;
}

routing_options& net_surgeon::options() noexcept
{
    return opts;
}

coordinate net_surgeon::place_wire(const std::int32_t x, const std::int32_t y)
{
    const coordinate ground{x, y, 0};
    if (target.is_empty_tile(ground))
    {
        target.place(ground, gate_type::buf);
        return ground;
    }
    const auto elevated = ground.elevated();
    if (target.type_of(ground) == gate_type::buf && target.is_empty_tile(elevated))
    {
        target.place(elevated, gate_type::buf);
        return elevated;
    }
    throw mnt_error{"net_surgeon: cannot restore wire at " + ground.to_string()};
}

}  // namespace mnt::lyt
