#include "layout/gate_level_layout.hpp"

#include "common/types.hpp"

#include <algorithm>
#include <limits>
#include <utility>

namespace mnt::lyt
{

gate_level_layout::gate_level_layout(std::string layout_name, const layout_topology topology_kind,
                                     clocking_scheme clock_scheme, const std::uint32_t width,
                                     const std::uint32_t height) :
        design_name{std::move(layout_name)},
        topo{topology_kind},
        scheme{std::move(clock_scheme)},
        w{width},
        h{height}
{
    if (width == 0 || height == 0)
    {
        throw precondition_error{"gate_level_layout: dimensions must be positive"};
    }
    if (topo == layout_topology::hexagonal_even_row && scheme.is_regular() &&
        scheme.kind() != clocking_kind::row)
    {
        throw precondition_error{"gate_level_layout: hexagonal layouts support only ROW or OPEN clocking"};
    }
}

gate_level_layout::gate_level_layout() :
        gate_level_layout{"", layout_topology::cartesian, clocking_scheme::open(), 1, 1}
{}

std::uint32_t gate_level_layout::width() const noexcept
{
    return w;
}

std::uint32_t gate_level_layout::height() const noexcept
{
    return h;
}

std::uint64_t gate_level_layout::area() const noexcept
{
    return static_cast<std::uint64_t>(w) * static_cast<std::uint64_t>(h);
}

layout_topology gate_level_layout::topology() const noexcept
{
    return topo;
}

const clocking_scheme& gate_level_layout::clocking() const noexcept
{
    return scheme;
}

clocking_scheme& gate_level_layout::clocking_mutable() noexcept
{
    return scheme;
}

bool gate_level_layout::within_bounds(const coordinate& c) const noexcept
{
    return c.x >= 0 && c.y >= 0 && c.x < static_cast<std::int32_t>(w) && c.y < static_cast<std::int32_t>(h) &&
           c.z < 2;
}

void gate_level_layout::resize(const std::uint32_t width, const std::uint32_t height)
{
    if (width == 0 || height == 0)
    {
        throw precondition_error{"resize: dimensions must be positive"};
    }
    for (const auto& [c, d] : tiles)
    {
        if (c.x >= static_cast<std::int32_t>(width) || c.y >= static_cast<std::int32_t>(height))
        {
            throw precondition_error{"resize: occupied tile " + c.to_string() + " would fall out of bounds"};
        }
    }
    w = width;
    h = height;
}

std::pair<coordinate, coordinate> gate_level_layout::bounding_box() const
{
    if (tiles.empty())
    {
        return {{0, 0}, {0, 0}};
    }
    std::int32_t min_x = std::numeric_limits<std::int32_t>::max();
    std::int32_t min_y = std::numeric_limits<std::int32_t>::max();
    std::int32_t max_x = std::numeric_limits<std::int32_t>::min();
    std::int32_t max_y = std::numeric_limits<std::int32_t>::min();
    for (const auto& [c, d] : tiles)
    {
        min_x = std::min(min_x, c.x);
        min_y = std::min(min_y, c.y);
        max_x = std::max(max_x, c.x);
        max_y = std::max(max_y, c.y);
    }
    return {{min_x, min_y}, {max_x, max_y}};
}

void gate_level_layout::shrink_to_fit()
{
    if (tiles.empty())
    {
        w = 1;
        h = 1;
        return;
    }
    const auto [min_c, max_c] = bounding_box();

    if (min_c.x != 0 || min_c.y != 0)
    {
        // Translate everything toward the origin by the largest shift that
        // preserves all clock zones (regular schemes are 4-periodic, so at
        // most 3 rows/columns of margin remain). Hexagonal layouts
        // additionally require an even row shift to keep the offset parity.
        const auto zone_preserving = [this](const std::int32_t sx, const std::int32_t sy)
        {
            if (!scheme.is_regular())
            {
                return true;  // zones are re-keyed below
            }
            if (topo == layout_topology::hexagonal_even_row && sy % 2 != 0)
            {
                return false;
            }
            for (std::int32_t y = 0; y < 4; ++y)
            {
                for (std::int32_t x = 0; x < 4; ++x)
                {
                    if (scheme.clock_number({x + sx, y + sy}) != scheme.clock_number({x, y}))
                    {
                        return false;
                    }
                }
            }
            return true;
        };

        std::int32_t dx = 0;
        std::int32_t dy = 0;
        for (std::int32_t sx = min_c.x; sx >= std::max(0, min_c.x - 3); --sx)
        {
            for (std::int32_t sy = min_c.y; sy >= std::max(0, min_c.y - 3); --sy)
            {
                if ((sx > dx || (sx == dx && sy > dy)) && zone_preserving(sx, sy))
                {
                    dx = sx;
                    dy = sy;
                }
            }
        }

        if (dx != 0 || dy != 0)
        {
            std::unordered_map<coordinate, tile_data, coordinate_hash> new_tiles;
            std::unordered_map<coordinate, std::vector<coordinate>, coordinate_hash> new_outgoing;
            const auto shift = [dx, dy](const coordinate& c) { return coordinate{c.x - dx, c.y - dy, c.z}; };
            for (auto& [c, d] : tiles)
            {
                auto nd = std::move(d);
                for (auto& in : nd.incoming)
                {
                    in = shift(in);
                }
                new_tiles.emplace(shift(c), std::move(nd));
            }
            for (auto& [c, outs] : outgoing)
            {
                auto no = std::move(outs);
                for (auto& o : no)
                {
                    o = shift(o);
                }
                new_outgoing.emplace(shift(c), std::move(no));
            }
            tiles = std::move(new_tiles);
            outgoing = std::move(new_outgoing);
            for (auto& c : pis)
            {
                c = shift(c);
            }
            for (auto& c : pos)
            {
                c = shift(c);
            }
            if (!scheme.is_regular())
            {
                // re-key the assigned zones
                clocking_scheme shifted = clocking_scheme::open();
                for (const auto& [c, d] : tiles)
                {
                    shifted.assign_clock(c.ground(), scheme.clock_number(coordinate{c.x + dx, c.y + dy, 0}));
                }
                scheme = std::move(shifted);
            }
            w = static_cast<std::uint32_t>(max_c.x - dx + 1);
            h = static_cast<std::uint32_t>(max_c.y - dy + 1);
            return;
        }
    }
    w = static_cast<std::uint32_t>(max_c.x + 1);
    h = static_cast<std::uint32_t>(max_c.y + 1);
}

void gate_level_layout::place(const coordinate& c, const ntk::gate_type t, const std::string& io_name)
{
    if (!within_bounds(c))
    {
        throw precondition_error{"place: tile " + c.to_string() + " is out of bounds"};
    }
    if (tiles.contains(c))
    {
        throw precondition_error{"place: tile " + c.to_string() + " is already occupied"};
    }
    if (t == ntk::gate_type::none || t == ntk::gate_type::const0 || t == ntk::gate_type::const1)
    {
        throw precondition_error{"place: constants and 'none' cannot be placed on tiles"};
    }
    if (c.z == 1 && t != ntk::gate_type::buf)
    {
        throw precondition_error{"place: crossing layer tiles may only host wire segments"};
    }

    tile_data d{};
    d.type = t;
    d.io_name = io_name;
    tiles.emplace(c, std::move(d));

    if (t == ntk::gate_type::pi)
    {
        pis.push_back(c);
    }
    else if (t == ntk::gate_type::po)
    {
        pos.push_back(c);
    }
}

void gate_level_layout::check_occupied(const coordinate& c, const char* ctx) const
{
    if (!tiles.contains(c))
    {
        throw precondition_error{std::string{ctx} + ": tile " + c.to_string() + " is empty"};
    }
}

void gate_level_layout::connect(const coordinate& src, const coordinate& dst)
{
    check_occupied(src, "connect (source)");
    check_occupied(dst, "connect (target)");

    auto& d = tiles.at(dst);
    const auto capacity = (dst.z == 1) ? std::size_t{1} : static_cast<std::size_t>(ntk::gate_arity(d.type));
    if (d.incoming.size() >= capacity)
    {
        throw precondition_error{"connect: all fanin slots of " + dst.to_string() + " are taken"};
    }
    d.incoming.push_back(src);
    outgoing[src].push_back(dst);
}

void gate_level_layout::disconnect(const coordinate& src, const coordinate& dst)
{
    const auto it = tiles.find(dst);
    if (it != tiles.end())
    {
        auto& in = it->second.incoming;
        const auto pos_it = std::find(in.begin(), in.end(), src);
        if (pos_it != in.end())
        {
            in.erase(pos_it);
        }
    }
    const auto out_it = outgoing.find(src);
    if (out_it != outgoing.end())
    {
        auto& outs = out_it->second;
        const auto pos_it = std::find(outs.begin(), outs.end(), dst);
        if (pos_it != outs.end())
        {
            outs.erase(pos_it);
        }
        if (outs.empty())
        {
            outgoing.erase(out_it);
        }
    }
}

void gate_level_layout::set_incoming_order(const coordinate& dst, const std::vector<coordinate>& order)
{
    check_occupied(dst, "set_incoming_order");
    auto& in = tiles.at(dst).incoming;
    auto sorted_current = in;
    auto sorted_order = order;
    std::sort(sorted_current.begin(), sorted_current.end());
    std::sort(sorted_order.begin(), sorted_order.end());
    if (sorted_current != sorted_order)
    {
        throw precondition_error{"set_incoming_order: order is not a permutation of the incoming list of " +
                                 dst.to_string()};
    }
    in = order;
}

void gate_level_layout::clear_tile(const coordinate& c)
{
    const auto it = tiles.find(c);
    if (it == tiles.end())
    {
        return;
    }

    // sever incoming connections
    for (const auto& src : std::vector<coordinate>{it->second.incoming})
    {
        disconnect(src, c);
    }
    // sever outgoing connections
    if (const auto out_it = outgoing.find(c); out_it != outgoing.end())
    {
        for (const auto& dst : std::vector<coordinate>{out_it->second})
        {
            disconnect(c, dst);
        }
    }
    outgoing.erase(c);

    const auto t = it->second.type;
    tiles.erase(it);
    if (t == ntk::gate_type::pi)
    {
        pis.erase(std::remove(pis.begin(), pis.end(), c), pis.end());
    }
    else if (t == ntk::gate_type::po)
    {
        pos.erase(std::remove(pos.begin(), pos.end(), c), pos.end());
    }
}

void gate_level_layout::move_tile(const coordinate& from, const coordinate& to)
{
    if (from == to)
    {
        return;
    }
    check_occupied(from, "move_tile");
    if (tiles.contains(to))
    {
        throw precondition_error{"move_tile: target " + to.to_string() + " is occupied"};
    }
    if (!within_bounds(to))
    {
        throw precondition_error{"move_tile: target " + to.to_string() + " is out of bounds"};
    }

    auto d = std::move(tiles.at(from));
    tiles.erase(from);
    if (to.z == 1 && d.type != ntk::gate_type::buf)
    {
        tiles.emplace(from, std::move(d));
        throw precondition_error{"move_tile: crossing layer tiles may only host wire segments"};
    }

    // patch fanin lists of successors
    if (const auto out_it = outgoing.find(from); out_it != outgoing.end())
    {
        for (const auto& dst : out_it->second)
        {
            auto& in = tiles.at(dst).incoming;
            std::replace(in.begin(), in.end(), from, to);
        }
        outgoing.emplace(to, std::move(out_it->second));
        outgoing.erase(from);
    }
    // patch outgoing lists of predecessors
    for (const auto& src : d.incoming)
    {
        if (const auto src_out = outgoing.find(src); src_out != outgoing.end())
        {
            std::replace(src_out->second.begin(), src_out->second.end(), from, to);
        }
    }

    const auto t = d.type;
    tiles.emplace(to, std::move(d));
    if (t == ntk::gate_type::pi)
    {
        std::replace(pis.begin(), pis.end(), from, to);
    }
    else if (t == ntk::gate_type::po)
    {
        std::replace(pos.begin(), pos.end(), from, to);
    }
}

bool gate_level_layout::is_empty_tile(const coordinate& c) const
{
    return !tiles.contains(c);
}

bool gate_level_layout::has_tile(const coordinate& c) const
{
    return tiles.contains(c);
}

const gate_level_layout::tile_data& gate_level_layout::get(const coordinate& c) const
{
    check_occupied(c, "get");
    return tiles.at(c);
}

ntk::gate_type gate_level_layout::type_of(const coordinate& c) const
{
    const auto it = tiles.find(c);
    return it == tiles.cend() ? ntk::gate_type::none : it->second.type;
}

const std::vector<coordinate>& gate_level_layout::incoming_of(const coordinate& c) const
{
    static const std::vector<coordinate> empty{};
    const auto it = tiles.find(c);
    return it == tiles.cend() ? empty : it->second.incoming;
}

const std::vector<coordinate>& gate_level_layout::outgoing_of(const coordinate& c) const
{
    static const std::vector<coordinate> empty{};
    const auto it = outgoing.find(c);
    return it == outgoing.cend() ? empty : it->second;
}

const std::vector<coordinate>& gate_level_layout::pi_tiles() const noexcept
{
    return pis;
}

const std::vector<coordinate>& gate_level_layout::po_tiles() const noexcept
{
    return pos;
}

std::size_t gate_level_layout::num_pis() const noexcept
{
    return pis.size();
}

std::size_t gate_level_layout::num_pos() const noexcept
{
    return pos.size();
}

std::size_t gate_level_layout::num_gates() const
{
    return static_cast<std::size_t>(std::count_if(tiles.cbegin(), tiles.cend(), [](const auto& kv)
                                                  { return ntk::is_logic_gate(kv.second.type); }));
}

std::size_t gate_level_layout::num_wires() const
{
    return static_cast<std::size_t>(
        std::count_if(tiles.cbegin(), tiles.cend(),
                      [](const auto& kv)
                      { return kv.second.type == ntk::gate_type::buf || kv.second.type == ntk::gate_type::fanout; }));
}

std::size_t gate_level_layout::num_crossings() const
{
    return static_cast<std::size_t>(
        std::count_if(tiles.cbegin(), tiles.cend(), [](const auto& kv) { return kv.first.z == 1; }));
}

std::size_t gate_level_layout::num_occupied() const noexcept
{
    return tiles.size();
}

std::uint8_t gate_level_layout::clock_number(const coordinate& c) const
{
    return scheme.clock_number(c);
}

std::vector<coordinate> gate_level_layout::outgoing_clocked(const coordinate& c) const
{
    std::vector<coordinate> result;
    for (const auto& n : planar_neighbors(c.ground(), topo))
    {
        if (within_bounds(n) && scheme.is_incoming_clocked(n, c))
        {
            result.push_back(n);
        }
    }
    return result;
}

std::vector<coordinate> gate_level_layout::incoming_clocked(const coordinate& c) const
{
    std::vector<coordinate> result;
    for (const auto& n : planar_neighbors(c.ground(), topo))
    {
        if (within_bounds(n) && scheme.is_incoming_clocked(c, n))
        {
            result.push_back(n);
        }
    }
    return result;
}

std::vector<coordinate> gate_level_layout::tiles_sorted() const
{
    std::vector<coordinate> result;
    result.reserve(tiles.size());
    for (const auto& [c, d] : tiles)
    {
        result.push_back(c);
    }
    std::sort(result.begin(), result.end());
    return result;
}

const std::string& gate_level_layout::layout_name() const noexcept
{
    return design_name;
}

void gate_level_layout::set_layout_name(std::string layout_name)
{
    design_name = std::move(layout_name);
}

}  // namespace mnt::lyt
