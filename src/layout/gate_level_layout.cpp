#include "layout/gate_level_layout.hpp"

#include "common/types.hpp"

#include <algorithm>
#include <limits>
#include <utility>

namespace mnt::lyt
{

gate_level_layout::gate_level_layout(std::string layout_name, const layout_topology topology_kind,
                                     clocking_scheme clock_scheme, const std::uint32_t width,
                                     const std::uint32_t height) :
        design_name{std::move(layout_name)},
        topo{topology_kind},
        scheme{std::move(clock_scheme)},
        w{width},
        h{height}
{
    if (width == 0 || height == 0)
    {
        throw precondition_error{"gate_level_layout: dimensions must be positive"};
    }
    if (topo == layout_topology::hexagonal_even_row && scheme.is_regular() &&
        scheme.kind() != clocking_kind::row)
    {
        throw precondition_error{"gate_level_layout: hexagonal layouts support only ROW or OPEN clocking"};
    }
    grid.resize(static_cast<std::size_t>(2) * w * h);
}

gate_level_layout::gate_level_layout() :
        gate_level_layout{"", layout_topology::cartesian, clocking_scheme::open(), 1, 1}
{}

std::uint32_t gate_level_layout::width() const noexcept
{
    return w;
}

std::uint32_t gate_level_layout::height() const noexcept
{
    return h;
}

std::uint64_t gate_level_layout::area() const noexcept
{
    return static_cast<std::uint64_t>(w) * static_cast<std::uint64_t>(h);
}

layout_topology gate_level_layout::topology() const noexcept
{
    return topo;
}

const clocking_scheme& gate_level_layout::clocking() const noexcept
{
    return scheme;
}

clocking_scheme& gate_level_layout::clocking_mutable() noexcept
{
    return scheme;
}

bool gate_level_layout::within_bounds(const coordinate& c) const noexcept
{
    return c.x >= 0 && c.y >= 0 && c.x < static_cast<std::int32_t>(w) && c.y < static_cast<std::int32_t>(h) &&
           c.z < 2;
}

void gate_level_layout::resize(const std::uint32_t width, const std::uint32_t height)
{
    if (width == 0 || height == 0)
    {
        throw precondition_error{"resize: dimensions must be positive"};
    }
    // validate-then-commit: a failed resize must leave the layout untouched
    if (width < w || height < h)
    {
        bool all_inside = true;
        coordinate offender{};
        foreach_tile(
            [&](const coordinate& c, const tile_data&)
            {
                if (all_inside &&
                    (c.x >= static_cast<std::int32_t>(width) || c.y >= static_cast<std::int32_t>(height)))
                {
                    all_inside = false;
                    offender = c;
                }
            });
        if (!all_inside)
        {
            throw precondition_error{"resize: occupied tile " + offender.to_string() +
                                     " would fall out of bounds"};
        }
    }

    std::vector<grid_slot> remapped(static_cast<std::size_t>(2) * width * height);
    std::size_t index = 0;
    for (std::uint8_t z = 0; z < 2; ++z)
    {
        for (std::uint32_t y = 0; y < h; ++y)
        {
            for (std::uint32_t x = 0; x < w; ++x, ++index)
            {
                auto& slot = grid[index];
                if (slot.data.type == ntk::gate_type::none || x >= width || y >= height)
                {
                    continue;
                }
                remapped[(static_cast<std::size_t>(z) * height + y) * width + x] = std::move(slot);
            }
        }
    }
    grid = std::move(remapped);
    w = width;
    h = height;
    scheme.prune_assigned_outside(width, height);
}

std::pair<coordinate, coordinate> gate_level_layout::bounding_box() const
{
    if (occupied_count == 0)
    {
        return {{0, 0}, {0, 0}};
    }
    std::int32_t min_x = std::numeric_limits<std::int32_t>::max();
    std::int32_t min_y = std::numeric_limits<std::int32_t>::max();
    std::int32_t max_x = std::numeric_limits<std::int32_t>::min();
    std::int32_t max_y = std::numeric_limits<std::int32_t>::min();
    foreach_tile(
        [&](const coordinate& c, const tile_data&)
        {
            min_x = std::min(min_x, c.x);
            min_y = std::min(min_y, c.y);
            max_x = std::max(max_x, c.x);
            max_y = std::max(max_y, c.y);
        });
    return {{min_x, min_y}, {max_x, max_y}};
}

void gate_level_layout::shrink_to_fit()
{
    if (occupied_count == 0)
    {
        w = 1;
        h = 1;
        grid.assign(2, grid_slot{});
        scheme.prune_assigned_outside(1, 1);
        return;
    }
    const auto [min_c, max_c] = bounding_box();

    std::int32_t dx = 0;
    std::int32_t dy = 0;
    if (min_c.x != 0 || min_c.y != 0)
    {
        // Translate everything toward the origin by the largest shift that
        // preserves all clock zones (regular schemes are 4-periodic, so at
        // most 3 rows/columns of margin remain). Hexagonal layouts
        // additionally require an even row shift to keep the offset parity —
        // for OPEN schemes as well: zones can be re-keyed, but an odd row
        // shift would change the offset neighborhoods themselves.
        const auto zone_preserving = [this](const std::int32_t sx, const std::int32_t sy)
        {
            if (topo == layout_topology::hexagonal_even_row && sy % 2 != 0)
            {
                return false;
            }
            if (!scheme.is_regular())
            {
                return true;  // zones are re-keyed below
            }
            for (std::int32_t y = 0; y < 4; ++y)
            {
                for (std::int32_t x = 0; x < 4; ++x)
                {
                    if (scheme.clock_number({x + sx, y + sy}) != scheme.clock_number({x, y}))
                    {
                        return false;
                    }
                }
            }
            return true;
        };

        for (std::int32_t sx = min_c.x; sx >= std::max(0, min_c.x - 3); --sx)
        {
            for (std::int32_t sy = min_c.y; sy >= std::max(0, min_c.y - 3); --sy)
            {
                if ((sx > dx || (sx == dx && sy > dy)) && zone_preserving(sx, sy))
                {
                    dx = sx;
                    dy = sy;
                }
            }
        }
    }

    const auto new_w = static_cast<std::uint32_t>(max_c.x - dx + 1);
    const auto new_h = static_cast<std::uint32_t>(max_c.y - dy + 1);
    const auto shift = [dx, dy](const coordinate& c) { return coordinate{c.x - dx, c.y - dy, c.z}; };

    if (dx != 0 || dy != 0)
    {
        // remap the grid under the translation, patching the coordinates
        // embedded in fanin/fanout lists
        std::vector<grid_slot> remapped(static_cast<std::size_t>(2) * new_w * new_h);
        std::size_t index = 0;
        for (std::uint8_t z = 0; z < 2; ++z)
        {
            for (std::uint32_t y = 0; y < h; ++y)
            {
                for (std::uint32_t x = 0; x < w; ++x, ++index)
                {
                    auto& slot = grid[index];
                    if (slot.data.type == ntk::gate_type::none)
                    {
                        continue;
                    }
                    const auto to = shift({static_cast<std::int32_t>(x), static_cast<std::int32_t>(y), z});
                    for (auto& in : slot.data.incoming)
                    {
                        in = shift(in);
                    }
                    for (std::uint8_t i = 0; i < slot.out_count; ++i)
                    {
                        slot.outs[i] = shift(slot.outs[i]);
                    }
                    remapped[(static_cast<std::size_t>(to.z) * new_h + static_cast<std::size_t>(to.y)) * new_w +
                             static_cast<std::size_t>(to.x)] = std::move(slot);
                }
            }
        }

        if (!scheme.is_regular())
        {
            // re-key the assigned zones of the occupied ground positions
            // (crossings share their ground tile's zone, so assign per ground
            // coordinate of every occupied tile)
            clocking_scheme shifted = clocking_scheme::open();
            index = 0;
            for (std::uint8_t z = 0; z < 2; ++z)
            {
                for (std::uint32_t y = 0; y < new_h; ++y)
                {
                    for (std::uint32_t x = 0; x < new_w; ++x, ++index)
                    {
                        if (remapped[index].data.type != ntk::gate_type::none)
                        {
                            shifted.assign_clock(
                                {static_cast<std::int32_t>(x), static_cast<std::int32_t>(y), 0},
                                scheme.clock_number(
                                    {static_cast<std::int32_t>(x) + dx, static_cast<std::int32_t>(y) + dy, 0}));
                        }
                    }
                }
            }
            scheme = std::move(shifted);
        }

        grid = std::move(remapped);
        for (auto& c : pis)
        {
            c = shift(c);
        }
        for (auto& c : pos)
        {
            c = shift(c);
        }
        w = new_w;
        h = new_h;
        scheme.prune_assigned_outside(new_w, new_h);
        return;
    }

    resize(new_w, new_h);
}

void gate_level_layout::place(const coordinate& c, const ntk::gate_type t, const std::string& io_name)
{
    if (!within_bounds(c))
    {
        throw precondition_error{"place: tile " + c.to_string() + " is out of bounds"};
    }
    auto& slot = slot_at(c);
    if (slot.data.type != ntk::gate_type::none)
    {
        throw precondition_error{"place: tile " + c.to_string() + " is already occupied"};
    }
    if (t == ntk::gate_type::none || t == ntk::gate_type::const0 || t == ntk::gate_type::const1)
    {
        throw precondition_error{"place: constants and 'none' cannot be placed on tiles"};
    }
    if (c.z == 1 && t != ntk::gate_type::buf)
    {
        throw precondition_error{"place: crossing layer tiles may only host wire segments"};
    }

    slot.data.type = t;
    slot.data.io_name = io_name;
    ++occupied_count;

    if (t == ntk::gate_type::pi)
    {
        pis.push_back(c);
    }
    else if (t == ntk::gate_type::po)
    {
        pos.push_back(c);
    }
}

void gate_level_layout::check_occupied(const coordinate& c, const char* ctx) const
{
    if (!occupied_at(c))
    {
        throw precondition_error{std::string{ctx} + ": tile " + c.to_string() + " is empty"};
    }
}

void gate_level_layout::connect(const coordinate& src, const coordinate& dst)
{
    check_occupied(src, "connect (source)");
    check_occupied(dst, "connect (target)");

    auto& d = slot_at(dst).data;
    const auto capacity = (dst.z == 1) ? std::size_t{1} : static_cast<std::size_t>(ntk::gate_arity(d.type));
    if (d.incoming.size() >= capacity)
    {
        throw precondition_error{"connect: all fanin slots of " + dst.to_string() + " are taken"};
    }
    auto& src_slot = slot_at(src);
    if (src_slot.out_count >= max_fanout)
    {
        throw precondition_error{"connect: fanout capacity (" + std::to_string(max_fanout) + ") of " +
                                 src.to_string() + " is exhausted"};
    }
    d.incoming.push_back(src);
    src_slot.outs[src_slot.out_count++] = dst;
}

void gate_level_layout::erase_outgoing(grid_slot& slot, const coordinate& dst) noexcept
{
    for (std::uint8_t i = 0; i < slot.out_count; ++i)
    {
        if (slot.outs[i] == dst)
        {
            for (std::uint8_t j = i; j + 1 < slot.out_count; ++j)
            {
                slot.outs[j] = slot.outs[j + 1];
            }
            --slot.out_count;
            return;
        }
    }
}

void gate_level_layout::disconnect(const coordinate& src, const coordinate& dst)
{
    if (occupied_at(dst))
    {
        auto& in = slot_at(dst).data.incoming;
        const auto pos_it = std::find(in.begin(), in.end(), src);
        if (pos_it != in.end())
        {
            in.erase(pos_it);
        }
    }
    if (within_bounds(src))
    {
        erase_outgoing(slot_at(src), dst);
    }
}

void gate_level_layout::set_incoming_order(const coordinate& dst, const std::vector<coordinate>& order)
{
    check_occupied(dst, "set_incoming_order");
    auto& in = slot_at(dst).data.incoming;
    auto sorted_current = in;
    auto sorted_order = order;
    std::sort(sorted_current.begin(), sorted_current.end());
    std::sort(sorted_order.begin(), sorted_order.end());
    if (sorted_current != sorted_order)
    {
        throw precondition_error{"set_incoming_order: order is not a permutation of the incoming list of " +
                                 dst.to_string()};
    }
    in = order;
}

void gate_level_layout::clear_tile(const coordinate& c)
{
    if (!occupied_at(c))
    {
        return;
    }
    auto& slot = slot_at(c);

    // sever incoming connections
    for (const auto& src : std::vector<coordinate>{slot.data.incoming})
    {
        disconnect(src, c);
    }
    // sever outgoing connections
    while (slot.out_count > 0)
    {
        disconnect(c, slot.outs[0]);
    }

    const auto t = slot.data.type;
    slot.data = tile_data{};
    --occupied_count;
    if (t == ntk::gate_type::pi)
    {
        pis.erase(std::remove(pis.begin(), pis.end(), c), pis.end());
    }
    else if (t == ntk::gate_type::po)
    {
        pos.erase(std::remove(pos.begin(), pos.end(), c), pos.end());
    }
}

void gate_level_layout::move_tile(const coordinate& from, const coordinate& to)
{
    if (from == to)
    {
        return;
    }
    check_occupied(from, "move_tile");
    if (!within_bounds(to))
    {
        throw precondition_error{"move_tile: target " + to.to_string() + " is out of bounds"};
    }
    if (slot_at(to).data.type != ntk::gate_type::none)
    {
        throw precondition_error{"move_tile: target " + to.to_string() + " is occupied"};
    }
    auto& src_slot = slot_at(from);
    if (to.z == 1 && src_slot.data.type != ntk::gate_type::buf)
    {
        throw precondition_error{"move_tile: crossing layer tiles may only host wire segments"};
    }

    // patch fanin lists of successors
    for (std::uint8_t i = 0; i < src_slot.out_count; ++i)
    {
        auto& in = slot_at(src_slot.outs[i]).data.incoming;
        std::replace(in.begin(), in.end(), from, to);
    }
    // patch outgoing lists of predecessors
    for (const auto& src : src_slot.data.incoming)
    {
        if (within_bounds(src))
        {
            auto& pred = slot_at(src);
            for (std::uint8_t i = 0; i < pred.out_count; ++i)
            {
                if (pred.outs[i] == from)
                {
                    pred.outs[i] = to;
                }
            }
        }
    }

    auto& dst_slot = slot_at(to);
    dst_slot.data = std::move(src_slot.data);
    dst_slot.outs = src_slot.outs;
    dst_slot.out_count = src_slot.out_count;
    src_slot.data = tile_data{};
    src_slot.out_count = 0;

    const auto t = dst_slot.data.type;
    if (t == ntk::gate_type::pi)
    {
        std::replace(pis.begin(), pis.end(), from, to);
    }
    else if (t == ntk::gate_type::po)
    {
        std::replace(pos.begin(), pos.end(), from, to);
    }
}

bool gate_level_layout::is_empty_tile(const coordinate& c) const
{
    return !occupied_at(c);
}

bool gate_level_layout::has_tile(const coordinate& c) const
{
    return occupied_at(c);
}

const gate_level_layout::tile_data& gate_level_layout::get(const coordinate& c) const
{
    check_occupied(c, "get");
    return slot_at(c).data;
}

ntk::gate_type gate_level_layout::type_of(const coordinate& c) const
{
    return occupied_at(c) ? slot_at(c).data.type : ntk::gate_type::none;
}

const std::vector<coordinate>& gate_level_layout::incoming_of(const coordinate& c) const
{
    static const std::vector<coordinate> empty{};
    return occupied_at(c) ? slot_at(c).data.incoming : empty;
}

std::span<const coordinate> gate_level_layout::outgoing_of(const coordinate& c) const
{
    if (!occupied_at(c))
    {
        return {};
    }
    const auto& slot = slot_at(c);
    return {slot.outs.data(), slot.out_count};
}

const std::vector<coordinate>& gate_level_layout::pi_tiles() const noexcept
{
    return pis;
}

const std::vector<coordinate>& gate_level_layout::po_tiles() const noexcept
{
    return pos;
}

std::size_t gate_level_layout::num_pis() const noexcept
{
    return pis.size();
}

std::size_t gate_level_layout::num_pos() const noexcept
{
    return pos.size();
}

std::size_t gate_level_layout::num_gates() const
{
    std::size_t count = 0;
    foreach_tile([&](const coordinate&, const tile_data& d) { count += ntk::is_logic_gate(d.type) ? 1u : 0u; });
    return count;
}

std::size_t gate_level_layout::num_wires() const
{
    std::size_t count = 0;
    foreach_tile(
        [&](const coordinate&, const tile_data& d)
        { count += (d.type == ntk::gate_type::buf || d.type == ntk::gate_type::fanout) ? 1u : 0u; });
    return count;
}

std::size_t gate_level_layout::num_crossings() const
{
    // the crossing layer is the second half of the grid
    std::size_t count = 0;
    const auto plane = static_cast<std::size_t>(w) * h;
    for (std::size_t i = plane; i < grid.size(); ++i)
    {
        count += grid[i].data.type != ntk::gate_type::none ? 1u : 0u;
    }
    return count;
}

std::size_t gate_level_layout::num_occupied() const noexcept
{
    return occupied_count;
}

std::uint8_t gate_level_layout::clock_number(const coordinate& c) const
{
    return scheme.clock_number(c);
}

std::vector<coordinate> gate_level_layout::outgoing_clocked(const coordinate& c) const
{
    std::vector<coordinate> result;
    for (const auto& n : planar_neighbors(c.ground(), topo))
    {
        if (within_bounds(n) && scheme.is_incoming_clocked(n, c))
        {
            result.push_back(n);
        }
    }
    return result;
}

std::vector<coordinate> gate_level_layout::incoming_clocked(const coordinate& c) const
{
    std::vector<coordinate> result;
    for (const auto& n : planar_neighbors(c.ground(), topo))
    {
        if (within_bounds(n) && scheme.is_incoming_clocked(c, n))
        {
            result.push_back(n);
        }
    }
    return result;
}

std::vector<coordinate> gate_level_layout::tiles_sorted() const
{
    std::vector<coordinate> result;
    result.reserve(occupied_count);
    const auto plane = static_cast<std::size_t>(w) * h;
    std::size_t row_base = 0;
    for (std::int32_t y = 0; y < static_cast<std::int32_t>(h); ++y, row_base += w)
    {
        for (std::int32_t x = 0; x < static_cast<std::int32_t>(w); ++x)
        {
            if (grid[row_base + static_cast<std::size_t>(x)].data.type != ntk::gate_type::none)
            {
                result.push_back({x, y, 0});
            }
            if (grid[plane + row_base + static_cast<std::size_t>(x)].data.type != ntk::gate_type::none)
            {
                result.push_back({x, y, 1});
            }
        }
    }
    return result;
}

const std::string& gate_level_layout::layout_name() const noexcept
{
    return design_name;
}

void gate_level_layout::set_layout_name(std::string layout_name)
{
    design_name = std::move(layout_name);
}

}  // namespace mnt::lyt
