#pragma once

/// \file routing.hpp
/// \brief Wire routing on clocked gate-level layouts.
///
/// The router performs breadth-first search over the clocked grid: a step
/// from tile a to tile b is legal iff b is a planar neighbor of a (under the
/// layout topology) and zone(b) == zone(a) + 1 (mod 4). Paths consist of new
/// wire tiles; existing ground-layer wires may be crossed by elevating the
/// new wire to layer z = 1 (wire-over-wire crossings only, as in QCA/SiDB
/// technologies). BFS yields shortest (minimum-tile) connections.

#include "common/resilience.hpp"
#include "layout/coordinates.hpp"
#include "layout/gate_level_layout.hpp"

#include <cstddef>
#include <optional>
#include <vector>

namespace mnt::lyt
{

/// Options controlling path search.
struct routing_options
{
    /// Permit wire-over-wire crossings via layer z = 1.
    bool allow_crossings{true};

    /// Abort the search after expanding this many tiles (0 = unlimited).
    std::size_t max_expansions{0};

    /// Cooperative global run deadline: the BFS polls it (strided) and
    /// unwinds with mnt::res::deadline_exceeded once expired. Unbounded by
    /// default (zero overhead beyond one branch per stride).
    res::deadline_clock deadline{};

    /// Refuse steps that fill a position completely (crossing layer) when
    /// that position is the last usable exit of an adjacent gate that still
    /// needs outgoing connections. Keeps incremental placement flows
    /// (constructive placement, annealing, PLO surgery) from walling in
    /// not-yet-routed gates. The path's own source and target are exempt.
    bool respect_needy_exits{false};
};

/// Finds a shortest clocked path of new wire tiles connecting the output of
/// the gate on \p src to a fanin slot of the gate on \p dst.
///
/// \returns the intermediate tiles in order (excluding \p src and \p dst;
///          empty if the tiles are directly flow-connected), with z = 1 for
///          crossing segments; std::nullopt if no path exists
[[nodiscard]] std::optional<std::vector<coordinate>> find_path(const gate_level_layout& layout, const coordinate& src,
                                                               const coordinate& dst,
                                                               const routing_options& options = {});

/// Materializes a path previously returned by \ref find_path: places buffer
/// gates on every path tile and declares the connections
/// src -> path[0] -> ... -> path[k] -> dst.
void establish_path(gate_level_layout& layout, const coordinate& src, const coordinate& dst,
                    const std::vector<coordinate>& path);

/// Convenience wrapper: find_path + establish_path.
///
/// \returns true if a connection was made
bool route(gate_level_layout& layout, const coordinate& src, const coordinate& dst,
           const routing_options& options = {});

/// Removes the wire chain that connects \p src to \p dst (inverse of
/// \ref establish_path): walks from \p dst backwards over wire tiles with a
/// single user and clears them. Gate tiles and shared wires are kept.
void rip_up_path(gate_level_layout& layout, const coordinate& src, const coordinate& dst);

}  // namespace mnt::lyt
