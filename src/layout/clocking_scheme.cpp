#include "layout/clocking_scheme.hpp"

#include "common/types.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace mnt::lyt
{

std::string clocking_name(const clocking_kind kind)
{
    switch (kind)
    {
        case clocking_kind::twoddwave: return "2DDWave";
        case clocking_kind::use: return "USE";
        case clocking_kind::res: return "RES";
        case clocking_kind::esr: return "ESR";
        case clocking_kind::row: return "ROW";
        case clocking_kind::open: return "OPEN";
    }
    return "OPEN";
}

clocking_kind clocking_from_name(const std::string& name)
{
    std::string lower(name.size(), '\0');
    std::transform(name.cbegin(), name.cend(), lower.begin(),
                   [](const unsigned char ch) { return static_cast<char>(std::tolower(ch)); });
    if (lower == "2ddwave" || lower == "twoddwave" || lower == "2dd")
    {
        return clocking_kind::twoddwave;
    }
    if (lower == "use")
    {
        return clocking_kind::use;
    }
    if (lower == "res")
    {
        return clocking_kind::res;
    }
    if (lower == "esr")
    {
        return clocking_kind::esr;
    }
    if (lower == "row")
    {
        return clocking_kind::row;
    }
    if (lower == "open")
    {
        return clocking_kind::open;
    }
    throw mnt_error{"unknown clocking scheme '" + name + "'"};
}

clocking_scheme::clocking_scheme(const clocking_kind kind) : scheme_kind{kind}
{
    switch (kind)
    {
        case clocking_kind::twoddwave:
            cutout = {{{{0, 1, 2, 3}}, {{1, 2, 3, 0}}, {{2, 3, 0, 1}}, {{3, 0, 1, 2}}}};
            break;
        case clocking_kind::use:
            cutout = {{{{0, 1, 2, 3}}, {{3, 2, 1, 0}}, {{2, 3, 0, 1}}, {{1, 0, 3, 2}}}};
            break;
        case clocking_kind::res:
            cutout = {{{{3, 0, 1, 2}}, {{0, 1, 0, 3}}, {{1, 2, 3, 0}}, {{0, 3, 2, 1}}}};
            break;
        case clocking_kind::esr:
            // serpentine rows: even rows flow east, odd rows flow west, with
            // descents at both ends of each row pair — a
            // richly-connected snake (reconstruction, see DESIGN.md)
            cutout = {{{{0, 1, 2, 3}}, {{3, 2, 1, 0}}, {{0, 1, 2, 3}}, {{3, 2, 1, 0}}}};
            break;
        case clocking_kind::row:
            cutout = {{{{0, 0, 0, 0}}, {{1, 1, 1, 1}}, {{2, 2, 2, 2}}, {{3, 3, 3, 3}}}};
            break;
        case clocking_kind::open: break;
    }
}

clocking_scheme clocking_scheme::create(const clocking_kind kind)
{
    return clocking_scheme{kind};
}

clocking_scheme clocking_scheme::twoddwave()
{
    return clocking_scheme{clocking_kind::twoddwave};
}

clocking_scheme clocking_scheme::use()
{
    return clocking_scheme{clocking_kind::use};
}

clocking_scheme clocking_scheme::res()
{
    return clocking_scheme{clocking_kind::res};
}

clocking_scheme clocking_scheme::esr()
{
    return clocking_scheme{clocking_kind::esr};
}

clocking_scheme clocking_scheme::row()
{
    return clocking_scheme{clocking_kind::row};
}

clocking_scheme clocking_scheme::open()
{
    return clocking_scheme{clocking_kind::open};
}

clocking_kind clocking_scheme::kind() const noexcept
{
    return scheme_kind;
}

std::string clocking_scheme::name() const
{
    return clocking_name(scheme_kind);
}

bool clocking_scheme::is_regular() const noexcept
{
    return scheme_kind != clocking_kind::open;
}

std::uint8_t clocking_scheme::zone_at(const std::int32_t x, const std::int32_t y) const noexcept
{
    if (x < 0 || y < 0 || x >= static_cast<std::int32_t>(assigned_w) || y >= static_cast<std::int32_t>(assigned_h))
    {
        return unassigned;
    }
    return assigned[static_cast<std::size_t>(y) * assigned_w + static_cast<std::size_t>(x)];
}

std::uint8_t clocking_scheme::clock_number(const coordinate& c) const
{
    if (scheme_kind == clocking_kind::open)
    {
        const auto zone = zone_at(c.x, c.y);
        return zone == unassigned ? std::uint8_t{0} : zone;
    }
    const auto yy = ((c.y % 4) + 4) % 4;
    const auto xx = ((c.x % 4) + 4) % 4;
    return cutout[static_cast<std::size_t>(yy)][static_cast<std::size_t>(xx)];
}

void clocking_scheme::assign_clock(const coordinate& c, const std::uint8_t zone)
{
    if (scheme_kind != clocking_kind::open)
    {
        throw precondition_error{"assign_clock: only OPEN clocking schemes accept per-tile zones"};
    }
    if (zone >= num_clocks)
    {
        throw precondition_error{"assign_clock: zone must be in [0, 4)"};
    }
    if (c.x < 0 || c.y < 0)
    {
        throw precondition_error{"assign_clock: tile " + c.to_string() + " has negative coordinates"};
    }
    const auto x = static_cast<std::uint32_t>(c.x);
    const auto y = static_cast<std::uint32_t>(c.y);
    if (x >= assigned_w || y >= assigned_h)
    {
        // grow the dense grid geometrically so repeated assignments along a
        // diagonal stay amortized-linear
        const auto new_w = std::max({x + 1, assigned_w, assigned_w * 2});
        const auto new_h = std::max({y + 1, assigned_h, assigned_h * 2});
        std::vector<std::uint8_t> grown(static_cast<std::size_t>(new_w) * new_h, unassigned);
        for (std::uint32_t row = 0; row < assigned_h; ++row)
        {
            std::copy_n(assigned.begin() + static_cast<std::ptrdiff_t>(row) * assigned_w, assigned_w,
                        grown.begin() + static_cast<std::ptrdiff_t>(row) * new_w);
        }
        assigned = std::move(grown);
        assigned_w = new_w;
        assigned_h = new_h;
    }
    auto& cell = assigned[static_cast<std::size_t>(y) * assigned_w + x];
    if (cell == unassigned)
    {
        ++assigned_count;
    }
    cell = zone;
}

bool clocking_scheme::has_assigned_clock(const coordinate& c) const
{
    return scheme_kind != clocking_kind::open || zone_at(c.x, c.y) != unassigned;
}

std::size_t clocking_scheme::num_assigned_clocks() const noexcept
{
    return assigned_count;
}

void clocking_scheme::prune_assigned_outside(const std::uint32_t width, const std::uint32_t height)
{
    if (scheme_kind != clocking_kind::open || assigned_count == 0)
    {
        return;
    }
    for (std::uint32_t y = 0; y < assigned_h; ++y)
    {
        for (std::uint32_t x = 0; x < assigned_w; ++x)
        {
            if (x < width && y < height)
            {
                continue;
            }
            auto& cell = assigned[static_cast<std::size_t>(y) * assigned_w + x];
            if (cell != unassigned)
            {
                cell = unassigned;
                --assigned_count;
            }
        }
    }
}

bool clocking_scheme::is_incoming_clocked(const coordinate& to, const coordinate& from) const
{
    return clock_number(to) == static_cast<std::uint8_t>((clock_number(from) + 1) % num_clocks);
}

bool clocking_scheme::operator==(const clocking_scheme& other) const
{
    if (scheme_kind != other.scheme_kind || cutout != other.cutout || assigned_count != other.assigned_count)
    {
        return false;
    }
    // dense extents may differ (they track assignment history, not content):
    // compare the assigned sets semantically
    for (std::uint32_t y = 0; y < assigned_h; ++y)
    {
        for (std::uint32_t x = 0; x < assigned_w; ++x)
        {
            const auto zone = assigned[static_cast<std::size_t>(y) * assigned_w + x];
            if (zone != unassigned &&
                zone != other.zone_at(static_cast<std::int32_t>(x), static_cast<std::int32_t>(y)))
            {
                return false;
            }
        }
    }
    return true;
}

bool may_flow(const clocking_kind kind, const layout_topology topo, const coordinate& from, const coordinate& to)
{
    if (kind == clocking_kind::twoddwave)
    {
        return to.x >= from.x && to.y >= from.y && !(to.x == from.x && to.y == from.y);
    }
    if (kind == clocking_kind::row)
    {
        if (topo == layout_topology::hexagonal_even_row)
        {
            return to.y > from.y && std::abs(to.x - from.x) <= to.y - from.y;
        }
        return to.y > from.y && to.x == from.x;  // Cartesian ROW: straight columns only
    }
    return true;
}

std::vector<clocking_kind> regular_schemes_for(const layout_topology topo)
{
    if (topo == layout_topology::cartesian)
    {
        return {clocking_kind::twoddwave, clocking_kind::use, clocking_kind::res, clocking_kind::esr,
                clocking_kind::row};
    }
    return {clocking_kind::row};
}

}  // namespace mnt::lyt
