#pragma once

/// \file coordinates.hpp
/// \brief Tile coordinates and grid topologies for FCN layouts.
///
/// Layouts are 2.5-dimensional: tiles live on an (x, y) grid with a small
/// number of vertical layers z. Layer 0 is the ground layer hosting gates and
/// wires; layer 1 hosts the second wire of a crossing. Two grid topologies
/// are supported:
///
/// - \ref layout_topology::cartesian — square tiles with 4-neighborhood
///   (used with the QCA ONE gate library),
/// - \ref layout_topology::hexagonal_even_row — pointy-top hexagons in
///   even-row offset coordinates with 6-neighborhood (used with the Bestagon
///   SiDB gate library).

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace mnt::lyt
{

/// Grid topology of a layout.
enum class layout_topology : std::uint8_t
{
    /// Square tiles, 4-neighborhood (N/E/S/W).
    cartesian,
    /// Pointy-top hexagons in even-row offset coordinates: odd rows are
    /// shifted half a tile to the right (fiction's even_row_hex convention).
    hexagonal_even_row
};

/// Returns a printable name ("cartesian"/"hexagonal") for \p topo.
[[nodiscard]] std::string topology_name(layout_topology topo);

/// Parses a topology name; throws mnt::mnt_error on unknown names.
[[nodiscard]] layout_topology topology_from_name(const std::string& name);

/// A tile coordinate. x grows eastward, y grows southward, z upward
/// (z = 0: ground layer, z = 1: crossing layer).
struct coordinate
{
    std::int32_t x{0};
    std::int32_t y{0};
    std::uint8_t z{0};

    constexpr coordinate() = default;
    constexpr coordinate(const std::int32_t x_pos, const std::int32_t y_pos, const std::uint8_t z_layer = 0) :
            x{x_pos},
            y{y_pos},
            z{z_layer}
    {}

    constexpr bool operator==(const coordinate& other) const noexcept = default;

    /// Lexicographic (y, x, z) order: row-major like the clocking cutouts.
    constexpr auto operator<=>(const coordinate& other) const noexcept
    {
        if (const auto c = y <=> other.y; c != 0)
        {
            return c;
        }
        if (const auto c = x <=> other.x; c != 0)
        {
            return c;
        }
        return z <=> other.z;
    }

    /// The same position in the ground layer.
    [[nodiscard]] constexpr coordinate ground() const noexcept
    {
        return {x, y, 0};
    }

    /// The same position in the crossing layer.
    [[nodiscard]] constexpr coordinate elevated() const noexcept
    {
        return {x, y, 1};
    }

    /// "(x, y, z)" string for diagnostics and the .fgl format.
    [[nodiscard]] std::string to_string() const;
};

/// FNV-1a style hash so coordinates can key unordered containers.
struct coordinate_hash
{
    std::size_t operator()(const coordinate& c) const noexcept
    {
        auto h = static_cast<std::size_t>(1469598103934665603ull);
        const auto mix = [&h](const std::uint64_t v)
        {
            h ^= static_cast<std::size_t>(v);
            h *= static_cast<std::size_t>(1099511628211ull);
        };
        mix(static_cast<std::uint32_t>(c.x));
        mix(static_cast<std::uint32_t>(c.y));
        mix(c.z);
        return h;
    }
};

/// All planar (same-z) neighbors of \p c under topology \p topo, without any
/// bounds checking. Cartesian: E, S, W, N. Hexagonal: the six offset
/// neighbors.
[[nodiscard]] std::vector<coordinate> planar_neighbors(const coordinate& c, layout_topology topo);

/// True if \p a and \p b occupy planar-adjacent grid positions (z ignored).
[[nodiscard]] bool are_adjacent(const coordinate& a, const coordinate& b, layout_topology topo);

/// Manhattan-like distance used as a router heuristic: exact for Cartesian,
/// admissible lower bound for hexagonal grids.
[[nodiscard]] std::uint32_t grid_distance(const coordinate& a, const coordinate& b, layout_topology topo);

}  // namespace mnt::lyt
