#pragma once

/// \file clocking_scheme.hpp
/// \brief The clocking schemes offered by MNT Bench: 2DDWave, USE, RES, ESR
///        (Cartesian), ROW (Cartesian and hexagonal), and OPEN (irregular).
///
/// FCN circuits are synchronized by external clock fields that partition the
/// layout into clock zones 0..3. Information flows from a tile in zone k to
/// an adjacent tile in zone (k + 1) mod 4. Regular schemes assign zones via a
/// periodic cutout; the OPEN scheme allows per-tile assignment (used by
/// exact physical design to co-optimize the clocking).

#include "layout/coordinates.hpp"

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace mnt::lyt
{

/// Identifier of a predefined clocking scheme.
enum class clocking_kind : std::uint8_t
{
    /// Diagonal wave: clock(x, y) = (x + y) mod 4. Information flows east
    /// and south. The workhorse scheme of scalable FCN physical design.
    twoddwave,
    /// Universal, Scalable, Efficient (Campos et al., 2016): a 4x4 cutout
    /// that forms clock paths snaking through the grid.
    use,
    /// Robust, Efficient, Scalable (Goes et al., 2017).
    res,
    /// Efficient, Scalable, Reliable (Torres et al., 2019-style cutout as
    /// reconstructed for this reproduction; see DESIGN.md).
    esr,
    /// Row clocking: clock(x, y) = y mod 4. Information flows strictly
    /// downward; the scheme of hexagonal Bestagon layouts.
    row,
    /// Irregular scheme with per-tile zones chosen by the designer.
    open
};

/// Returns the canonical lower-case name of \p kind ("2DDWave", "USE", ...).
[[nodiscard]] std::string clocking_name(clocking_kind kind);

/// Parses a clocking scheme name (case-insensitive); throws mnt::mnt_error on
/// unknown names.
[[nodiscard]] clocking_kind clocking_from_name(const std::string& name);

/// A clocking scheme: maps tiles to clock zones and answers information-flow
/// queries. Copyable value type.
class clocking_scheme
{
public:
    /// Number of clock phases (fixed at 4 for all MNT Bench schemes).
    static constexpr std::uint8_t num_clocks = 4;

    /// Constructs one of the predefined schemes.
    static clocking_scheme create(clocking_kind kind);

    /// Convenience factories.
    static clocking_scheme twoddwave();
    static clocking_scheme use();
    static clocking_scheme res();
    static clocking_scheme esr();
    static clocking_scheme row();
    static clocking_scheme open();

    /// The scheme's kind.
    [[nodiscard]] clocking_kind kind() const noexcept;

    /// The scheme's display name.
    [[nodiscard]] std::string name() const;

    /// True if zones come from a periodic cutout (everything except OPEN).
    [[nodiscard]] bool is_regular() const noexcept;

    /// Clock zone of tile \p c (z is ignored: a crossing shares the zone of
    /// its ground tile). For OPEN schemes, returns the assigned zone or 0 if
    /// unassigned.
    [[nodiscard]] std::uint8_t clock_number(const coordinate& c) const;

    /// Assigns a zone in an OPEN scheme.
    ///
    /// \throws precondition_error when called on a regular scheme, with a
    ///         zone >= 4, or with negative coordinates (per-tile zones live
    ///         on the non-negative layout grid)
    void assign_clock(const coordinate& c, std::uint8_t zone);

    /// For OPEN schemes: whether a zone has been explicitly assigned.
    [[nodiscard]] bool has_assigned_clock(const coordinate& c) const;

    /// Number of explicitly assigned per-tile zones (0 for regular schemes).
    [[nodiscard]] std::size_t num_assigned_clocks() const noexcept;

    /// Drops every per-tile zone at x >= width or y >= height. Called by
    /// layout resize/shrink so that stale overrides outside the new bounds
    /// cannot resurface when the layout later grows again. No-op on regular
    /// schemes.
    void prune_assigned_outside(std::uint32_t width, std::uint32_t height);

    /// True if information can flow from tile \p from to planar-adjacent tile
    /// \p to, i.e. zone(to) == zone(from) + 1 (mod 4). Adjacency itself is
    /// *not* checked here (it depends on the layout topology).
    [[nodiscard]] bool is_incoming_clocked(const coordinate& to, const coordinate& from) const;

    bool operator==(const clocking_scheme& other) const;

private:
    explicit clocking_scheme(clocking_kind scheme_kind);

    /// Sentinel marking an unassigned cell of the dense zone grid.
    static constexpr std::uint8_t unassigned = 0xFF;

    /// Grid cell for \p c, or \ref unassigned if outside the stored extent.
    [[nodiscard]] std::uint8_t zone_at(std::int32_t x, std::int32_t y) const noexcept;

    clocking_kind scheme_kind;
    /// 4x4 cutout for regular schemes, indexed [y % 4][x % 4].
    std::array<std::array<std::uint8_t, 4>, 4> cutout{};
    /// Per-tile zones for OPEN schemes as a dense row-major grid over the
    /// ground layer; \ref unassigned marks untouched cells. The extent grows
    /// on demand in \ref assign_clock — layouts assign zones for their own
    /// (non-negative, in-bounds) tiles, so the grid tracks the layout area.
    std::vector<std::uint8_t> assigned;
    std::uint32_t assigned_w{0};
    std::uint32_t assigned_h{0};
    std::size_t assigned_count{0};
};

/// Lists all regular scheme kinds applicable to a topology: Cartesian
/// supports {2DDWave, USE, RES, ESR, ROW}; hexagonal supports {ROW}.
[[nodiscard]] std::vector<clocking_kind> regular_schemes_for(layout_topology topo);

/// Conservative reachability test: returns false only when information
/// provably cannot flow from \p from to \p to under the scheme/topology
/// (e.g. 2DDWave flows strictly east/south; ROW flows strictly down).
/// Snaking schemes (USE/RES/ESR) and OPEN always return true.
[[nodiscard]] bool may_flow(clocking_kind kind, layout_topology topo, const coordinate& from, const coordinate& to);

}  // namespace mnt::lyt
