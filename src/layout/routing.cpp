#include "layout/routing.hpp"

#include "common/types.hpp"
#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <deque>
#include <cstdint>
#include <vector>

namespace mnt::lyt
{

namespace
{

/// True if \p c is usable as the first tile of some future wire (empty, or a
/// crossable ground wire).
bool usable_step(const gate_level_layout& layout, const coordinate& c)
{
    return layout.is_empty_tile(c) ||
           (layout.type_of(c) == ntk::gate_type::buf && layout.is_empty_tile(c.elevated()));
}

/// True if completely filling position \p pos (both layers occupied
/// afterwards) would take the last usable exit of an adjacent gate that
/// still needs outgoing connections. \p src and \p dst of the current path
/// are exempt.
bool steals_last_exit(const gate_level_layout& layout, const coordinate& pos, const coordinate& src,
                      const coordinate& dst)
{
    for (const auto& nb : planar_neighbors(pos.ground(), layout.topology()))
    {
        if (!layout.within_bounds(nb) || layout.is_empty_tile(nb))
        {
            continue;
        }
        if (nb == src.ground() || nb == dst.ground())
        {
            continue;
        }
        const auto t = layout.type_of(nb);
        if (t == ntk::gate_type::buf || t == ntk::gate_type::po || t == ntk::gate_type::none)
        {
            continue;
        }
        const auto capacity = t == ntk::gate_type::fanout ? std::size_t{2} : std::size_t{1};
        const auto used = layout.outgoing_of(nb).size();
        if (used >= capacity)
        {
            continue;
        }
        std::size_t free_exits = 0;
        for (const auto& exit : layout.outgoing_clocked(nb))
        {
            if (!(exit == pos.ground()) && usable_step(layout, exit))
            {
                ++free_exits;
            }
        }
        if (free_exits < capacity - used)
        {
            return true;
        }
    }
    return false;
}

/// Decides whether the search may step onto position \p n (a ground-layer
/// coordinate), and if so, at which layer the new wire would be placed.
std::optional<coordinate> admissible_step(const gate_level_layout& layout, const coordinate& n,
                                          const routing_options& options, const coordinate& src,
                                          const coordinate& dst)
{
    const auto ground = n.ground();
    if (layout.is_empty_tile(ground))
    {
        return ground;
    }
    if (options.allow_crossings && layout.type_of(ground) == ntk::gate_type::buf &&
        layout.is_empty_tile(ground.elevated()))
    {
        // the crossing layer fill makes the position fully occupied
        if (options.respect_needy_exits && steals_last_exit(layout, ground, src, dst))
        {
            return std::nullopt;
        }
        return ground.elevated();
    }
    return std::nullopt;
}

/// One flush per find_path call. The search loop itself only bumps a local
/// counter; the registry is touched once here, through references resolved a
/// single time per process (find_path is the hottest call site in the
/// annealer, so even the name lookup is hoisted out).
void flush_search_telemetry(const std::size_t expansions, const bool found)
{
    if (!tel::enabled())
    {
        return;
    }
    auto& reg = tel::registry::instance();
    static tel::counter& searches = reg.get_counter("route.searches");
    static tel::counter& expanded = reg.get_counter("route.expansions");
    static tel::counter& failed = reg.get_counter("route.failed");
    searches.add();
    expanded.add(expansions);
    if (!found)
    {
        failed.add();
    }
}

}  // namespace

std::optional<std::vector<coordinate>> find_path(const gate_level_layout& layout, const coordinate& src,
                                                 const coordinate& dst, const routing_options& options)
{
    if (src.ground() == dst.ground())
    {
        throw precondition_error{"find_path: source and target coincide"};
    }
    if (layout.is_empty_tile(src) || layout.is_empty_tile(dst))
    {
        throw precondition_error{"find_path: source and target must host gates"};
    }
    MNT_FAULT_POINT("route.search");
    res::deadline_guard deadline{options.deadline, 256};

    // visited/parent bookkeeping is on ground positions: at most one new wire
    // per (x, y) position may join this path (stacking a path above itself is
    // never useful for shortest paths). Both tables are dense arrays indexed
    // like the layout grid — the search touches them once per neighbor, and
    // a w*h byte/coordinate fill is cheaper than hash-map churn at every
    // realistic grid size.
    const auto w = static_cast<std::size_t>(layout.width());
    const auto h = static_cast<std::size_t>(layout.height());
    const auto ground_index = [w](const coordinate& c)
    { return static_cast<std::size_t>(c.y) * w + static_cast<std::size_t>(c.x); };
    const auto placed_index = [w, h](const coordinate& c)
    { return (static_cast<std::size_t>(c.z) * h + static_cast<std::size_t>(c.y)) * w + static_cast<std::size_t>(c.x); };

    std::vector<std::uint8_t> visited(w * h, 0);   // ground position seen?
    std::vector<coordinate> parent(2 * w * h);     // placed coord -> predecessor placed coord

    std::deque<coordinate> queue;  // placed coords (or src)
    queue.push_back(src);
    visited[ground_index(src)] = 1;

    std::size_t expansions = 0;
    const auto target_ground = dst.ground();

    while (!queue.empty())
    {
        const auto current = queue.front();
        queue.pop_front();

        if (options.max_expansions != 0 && ++expansions > options.max_expansions)
        {
            flush_search_telemetry(expansions, false);
            return std::nullopt;
        }
        deadline.poll_or_throw("routing/find_path");

        for (const auto& n : layout.outgoing_clocked(current.ground()))
        {
            if (n == target_ground)
            {
                // reconstruct: walk parents from current back to src
                std::vector<coordinate> path;
                auto walk = current;
                while (!(walk.ground() == src.ground()))
                {
                    path.push_back(walk);
                    walk = parent[placed_index(walk)];
                }
                std::reverse(path.begin(), path.end());
                flush_search_telemetry(expansions, true);
                return path;
            }
            if (visited[ground_index(n)] != 0)
            {
                continue;
            }
            const auto step = admissible_step(layout, n, options, src, dst);
            if (!step.has_value())
            {
                continue;
            }
            visited[ground_index(n)] = 1;
            parent[placed_index(*step)] = current;
            queue.push_back(*step);
        }
    }
    flush_search_telemetry(expansions, false);
    return std::nullopt;
}

void establish_path(gate_level_layout& layout, const coordinate& src, const coordinate& dst,
                    const std::vector<coordinate>& path)
{
    for (const auto& p : path)
    {
        layout.place(p, ntk::gate_type::buf);
    }
    auto prev = src;
    for (const auto& p : path)
    {
        layout.connect(prev, p);
        prev = p;
    }
    layout.connect(prev, dst);
}

bool route(gate_level_layout& layout, const coordinate& src, const coordinate& dst, const routing_options& options)
{
    const auto path = find_path(layout, src, dst, options);
    if (!path.has_value())
    {
        return false;
    }
    establish_path(layout, src, dst, *path);
    return true;
}

void rip_up_path(gate_level_layout& layout, const coordinate& src, const coordinate& dst)
{
    // remove the last-hop connection into dst, then peel wire tiles backwards
    const auto& in = layout.incoming_of(dst);
    // find the chain end: the incoming tile of dst that (transitively) leads
    // back to src over single-user wires
    for (const auto& candidate : std::vector<coordinate>{in})
    {
        // walk backwards collecting wire tiles
        std::vector<coordinate> chain;
        auto walk = candidate;
        bool reaches_src = false;
        while (true)
        {
            if (walk.ground() == src.ground())
            {
                reaches_src = true;
                break;
            }
            if (layout.type_of(walk) != ntk::gate_type::buf || layout.outgoing_of(walk).size() != 1)
            {
                break;
            }
            chain.push_back(walk);
            const auto& walk_in = layout.incoming_of(walk);
            if (walk_in.size() != 1)
            {
                break;
            }
            walk = walk_in[0];
        }
        if (reaches_src)
        {
            layout.disconnect(candidate, dst);
            for (const auto& c : chain)
            {
                layout.clear_tile(c);
            }
            return;
        }
    }
}

}  // namespace mnt::lyt
