#include "layout/layout_utils.hpp"

#include "common/types.hpp"

#include <algorithm>
#include <deque>
#include <unordered_map>

namespace mnt::lyt
{

std::vector<coordinate> topological_tile_order(const gate_level_layout& layout)
{
    std::unordered_map<coordinate, std::size_t, coordinate_hash> indegree;
    std::deque<coordinate> queue;

    layout.foreach_tile(
        [&](const coordinate& c, const gate_level_layout::tile_data& d)
        {
            indegree[c] = d.incoming.size();
            if (d.incoming.empty())
            {
                queue.push_back(c);
            }
        });

    // deterministic processing order for reproducible extraction
    std::sort(queue.begin(), queue.end());

    std::vector<coordinate> order;
    order.reserve(layout.num_occupied());

    while (!queue.empty())
    {
        const auto c = queue.front();
        queue.pop_front();
        order.push_back(c);
        for (const auto& succ : layout.outgoing_of(c))
        {
            if (--indegree.at(succ) == 0)
            {
                queue.push_back(succ);
            }
        }
    }

    if (order.size() != layout.num_occupied())
    {
        throw design_rule_error{"topological_tile_order: layout connectivity contains a cycle"};
    }
    return order;
}

ntk::logic_network extract_network(const gate_level_layout& layout)
{
    const auto order = topological_tile_order(layout);

    ntk::logic_network network{layout.layout_name()};
    std::unordered_map<coordinate, ntk::logic_network::node, coordinate_hash> node_of;

    for (const auto& c : order)
    {
        const auto& d = layout.get(c);
        switch (d.type)
        {
            case ntk::gate_type::pi: node_of[c] = network.create_pi(d.io_name); break;
            case ntk::gate_type::po:
            {
                if (d.incoming.size() != 1)
                {
                    throw design_rule_error{"extract_network: PO tile " + c.to_string() + " must have one fanin"};
                }
                node_of[c] = network.create_po(node_of.at(d.incoming[0]), d.io_name);
                break;
            }
            default:
            {
                const auto expected = (c.z == 1) ? std::size_t{1} : static_cast<std::size_t>(ntk::gate_arity(d.type));
                if (d.incoming.size() != expected)
                {
                    throw design_rule_error{"extract_network: tile " + c.to_string() + " of type " +
                                            std::string{ntk::gate_type_name(d.type)} + " has " +
                                            std::to_string(d.incoming.size()) + " fanins, expected " +
                                            std::to_string(expected)};
                }
                std::vector<ntk::logic_network::node> fis;
                fis.reserve(d.incoming.size());
                for (const auto& in : d.incoming)
                {
                    fis.push_back(node_of.at(in));
                }
                node_of[c] = network.create_gate(d.type, fis);
                break;
            }
        }
    }
    return network;
}

std::size_t usable_exits(const gate_level_layout& layout, const coordinate& c)
{
    std::size_t count = 0;
    for (const auto& n : layout.outgoing_clocked(c))
    {
        if (layout.is_empty_tile(n) ||
            (layout.type_of(n) == ntk::gate_type::buf && layout.is_empty_tile(n.elevated())))
        {
            ++count;
        }
    }
    return count;
}

std::size_t usable_entries(const gate_level_layout& layout, const coordinate& c)
{
    std::size_t count = 0;
    for (const auto& n : layout.incoming_clocked(c))
    {
        if (layout.is_empty_tile(n))
        {
            count += 2;  // ground + crossing layer
        }
        else if (layout.type_of(n) == ntk::gate_type::buf && layout.is_empty_tile(n.elevated()))
        {
            count += 1;
        }
    }
    return count;
}

layout_statistics collect_layout_statistics(const gate_level_layout& layout)
{
    layout_statistics stats{};
    stats.name = layout.layout_name();
    stats.width = layout.width();
    stats.height = layout.height();
    stats.area = layout.area();
    stats.num_gates = layout.num_gates();
    stats.num_wires = layout.num_wires();
    stats.num_crossings = layout.num_crossings();
    stats.num_pis = layout.num_pis();
    stats.num_pos = layout.num_pos();

    // critical path: longest chain in tile levels
    std::unordered_map<coordinate, std::uint32_t, coordinate_hash> level;
    for (const auto& c : topological_tile_order(layout))
    {
        std::uint32_t lvl = 0;
        for (const auto& in : layout.incoming_of(c))
        {
            lvl = std::max(lvl, level.at(in) + 1u);
        }
        level[c] = lvl;
        stats.critical_path = std::max(stats.critical_path, lvl);
    }
    return stats;
}

}  // namespace mnt::lyt
