#pragma once

/// \file net_surgery.hpp
/// \brief Rip-up, restore and reroute operations on placed-and-routed
///        layouts — the shared machinery of post-layout optimization and the
///        annealing placer.
///
/// A \ref connection is the logical link between two non-wire gates together
/// with the buffer chain currently realizing it. The \ref net_surgeon can
/// remove such chains (demoting crossing wires left floating), restore them
/// verbatim, or re-route them on shortest clocked paths, always preserving
/// the fanin slot order of non-commutative gates.

#include "layout/coordinates.hpp"
#include "layout/gate_level_layout.hpp"
#include "layout/routing.hpp"

#include <algorithm>
#include <cstddef>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

namespace mnt::lyt
{

/// A logical gate-to-gate connection with its current wire chain.
struct connection
{
    coordinate src;                 ///< source gate tile (non-wire)
    coordinate dst;                 ///< destination gate tile (non-wire)
    std::size_t dst_slot{0};        ///< fanin slot index at dst
    std::vector<coordinate> chain;  ///< wire tiles in src -> dst order
};

/// Rip-up/restore/reroute toolbox operating on a layout reference.
class net_surgeon
{
public:
    /// \param target layout to operate on (must outlive the surgeon)
    /// \param route_expansions BFS expansion cap per routing query (0 = off)
    explicit net_surgeon(gate_level_layout& target, std::size_t route_expansions = 0);

    /// Traces the connection ending in fanin slot \p slot of gate \p dst.
    [[nodiscard]] connection trace_incoming(const coordinate& dst, std::size_t slot) const;

    /// All logical connections of the layout (each exactly once, in
    /// deterministic order).
    [[nodiscard]] std::vector<connection> all_connections() const;

    /// All connections incident to gate \p g: its fanins in slot order
    /// first, then its fanouts.
    [[nodiscard]] std::vector<connection> incident_connections(const coordinate& g) const;

    /// Removes the connection's wires and the final link into dst. Crossing
    /// wires left floating above a removed ground wire are demoted to the
    /// ground layer (their connections survive).
    void rip(const connection& conn);

    /// Re-places a previously ripped connection along its recorded chain
    /// positions; layers are re-assigned on the fly.
    ///
    /// \returns the tile that now feeds dst (for slot-order fixes)
    coordinate restore(const connection& conn);

    /// Routes src -> dst on a shortest clocked path.
    ///
    /// \returns the feeding tile on success
    std::optional<coordinate> route_shortest(const coordinate& src, const coordinate& dst);

    /// Shortest routable wire count between src and dst, if any.
    [[nodiscard]] std::optional<std::size_t> shortest_length(const coordinate& src, const coordinate& dst) const;

    /// The layout under surgery.
    [[nodiscard]] gate_level_layout& layout() noexcept;
    [[nodiscard]] const gate_level_layout& layout() const noexcept;

    /// The routing options used by \ref route_shortest.
    [[nodiscard]] routing_options& options() noexcept;

private:
    coordinate place_wire(std::int32_t x, std::int32_t y);

    gate_level_layout& target;
    routing_options opts{};
};

/// Attempts to relocate the gate on \p g to the empty ground tile \p target:
/// rips all incident connections, moves the gate, re-routes everything on
/// shortest paths (fanin slot order preserved), then calls \p accept. If
/// routing fails or \p accept returns false, the layout is restored to its
/// exact previous connectivity (wire layers may differ, which is
/// semantically irrelevant).
///
/// \returns true iff the move was committed
template <typename AcceptFn>
bool try_relocate(net_surgeon& surgeon, const coordinate& g, const coordinate& target, AcceptFn&& accept);

// ---------------------------------------------------------------------------
// implementation of try_relocate (template)
// ---------------------------------------------------------------------------

namespace detail
{

/// Restores the fanin slot order of \p dst after surgery. \p affected_slots
/// are the original slot indices that were ripped and re-established (all
/// carrying the same source signal, so their mutual order is semantically
/// irrelevant); \p feeders are the tiles now feeding those slots. Unaffected
/// entries keep their relative order.
inline void rebuild_slot_order(gate_level_layout& layout, const coordinate& dst,
                               std::vector<std::size_t> affected_slots, const std::vector<coordinate>& feeders)
{
    std::sort(affected_slots.begin(), affected_slots.end());
    auto remaining = layout.incoming_of(dst);  // copy
    for (const auto& f : feeders)
    {
        const auto it = std::find(remaining.begin(), remaining.end(), f);
        if (it != remaining.end())
        {
            remaining.erase(it);
        }
    }
    std::vector<coordinate> desired;
    desired.reserve(remaining.size() + feeders.size());
    std::size_t next_affected = 0;
    std::size_t next_remaining = 0;
    const auto total = remaining.size() + feeders.size();
    for (std::size_t slot = 0; slot < total; ++slot)
    {
        if (next_affected < affected_slots.size() && affected_slots[next_affected] == slot)
        {
            desired.push_back(feeders[next_affected]);
            ++next_affected;
        }
        else
        {
            desired.push_back(remaining[next_remaining++]);
        }
    }
    layout.set_incoming_order(dst, desired);
}

}  // namespace detail

template <typename AcceptFn>
bool try_relocate(net_surgeon& surgeon, const coordinate& g, const coordinate& target, AcceptFn&& accept)
{
    auto& layout = surgeon.layout();

    // identify the affected external destinations and slots up front
    // (endpoints are stable under rip-ups; chains are re-traced just before
    // each rip because crossing demotion can relocate sibling chain wires)
    std::unordered_map<coordinate, std::vector<std::size_t>, coordinate_hash> affected;  // dst -> orig slots
    for (const auto& pre : surgeon.incident_connections(g))
    {
        if (pre.dst != g)
        {
            affected[pre.dst].push_back(pre.dst_slot);
        }
    }

    // rip g's fanins from the last slot down (indices stay valid), re-traced
    std::vector<connection> in_conns(layout.incoming_of(g).size());
    for (std::size_t slot = in_conns.size(); slot > 0; --slot)
    {
        auto conn = surgeon.trace_incoming(g, slot - 1);
        surgeon.rip(conn);
        in_conns[slot - 1] = std::move(conn);
    }
    // rip g's fanouts one at a time, re-tracing after each demotion
    std::vector<connection> out_conns;
    while (!layout.outgoing_of(g).empty())
    {
        connection conn;
        conn.src = g;
        auto cur = layout.outgoing_of(g)[0];
        while (layout.type_of(cur) == ntk::gate_type::buf)
        {
            conn.chain.push_back(cur);
            cur = layout.outgoing_of(cur)[0];
        }
        conn.dst = cur;
        surgeon.rip(conn);
        out_conns.push_back(std::move(conn));
    }

    // the target may have been freed by the rip-ups (it is a legal
    // candidate if it was occupied only by wires of g's own connections)
    const bool target_free = layout.is_empty_tile(target) && layout.is_empty_tile(target.elevated());
    if (target_free)
    {
        layout.move_tile(g, target);
    }

    // route everything from/to the new position
    bool success = target_free;
    std::unordered_map<coordinate, std::vector<coordinate>, coordinate_hash> new_feeders;  // dst -> feeders
    std::vector<std::pair<coordinate, coordinate>> out_routed;                             // (dst, feeder)
    if (success)
    {
        for (const auto& conn : in_conns)
        {
            const auto feeder = surgeon.route_shortest(conn.src, target);
            if (!feeder.has_value())
            {
                success = false;
                break;
            }
            // g's own fanins are appended in slot order: nothing to fix
        }
    }
    if (success)
    {
        for (const auto& conn : out_conns)
        {
            const auto feeder = surgeon.route_shortest(target, conn.dst);
            if (!feeder.has_value())
            {
                success = false;
                break;
            }
            out_routed.emplace_back(conn.dst, *feeder);
            new_feeders[conn.dst].push_back(*feeder);
        }
    }

    if (success)
    {
        for (const auto& [dst, slots] : affected)
        {
            detail::rebuild_slot_order(layout, dst, slots, new_feeders.at(dst));
        }
        if (accept())
        {
            return true;
        }
        // no de-application of the slot fixes needed: the undo below locates
        // the new chains by their feeder tiles and rebuilds orders afterwards
    }

    // undo: rip the routed external chains (last first, found by feeder),
    // then everything that was routed into the target (only our chains feed
    // it), move back, restore originals
    for (auto it = out_routed.rbegin(); it != out_routed.rend(); ++it)
    {
        const auto& in = layout.incoming_of(it->first);
        const auto pos = std::find(in.cbegin(), in.cend(), it->second);
        surgeon.rip(surgeon.trace_incoming(it->first, static_cast<std::size_t>(pos - in.cbegin())));
    }
    if (target_free)
    {
        for (std::size_t slot = layout.incoming_of(target).size(); slot > 0; --slot)
        {
            surgeon.rip(surgeon.trace_incoming(target, slot - 1));
        }
        layout.move_tile(target, g);
    }

    for (const auto& conn : in_conns)
    {
        surgeon.restore(conn);  // appended in slot order
    }
    std::unordered_map<coordinate, std::vector<coordinate>, coordinate_hash> restored_feeders;
    for (const auto& conn : out_conns)
    {
        restored_feeders[conn.dst].push_back(surgeon.restore(conn));
    }
    for (const auto& [dst, slots] : affected)
    {
        detail::rebuild_slot_order(layout, dst, slots, restored_feeders.at(dst));
    }
    return false;
}

}  // namespace mnt::lyt
