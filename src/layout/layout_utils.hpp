#pragma once

/// \file layout_utils.hpp
/// \brief Layout analysis: network extraction (the semantic view of a
///        layout), statistics, and throughput helpers shared by the physical
///        design algorithms.

#include "layout/gate_level_layout.hpp"
#include "network/logic_network.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace mnt::lyt
{

/// Reconstructs the logic network realized by \p layout by traversing the
/// tile graph in topological order. PI/PO names are taken from the tiles.
///
/// \throws mnt::design_rule_error if the connection graph contains a cycle or
///         a tile has the wrong number of fanins for its gate type
[[nodiscard]] ntk::logic_network extract_network(const gate_level_layout& layout);

/// Statistics record of a gate-level layout: the columns of Table I plus
/// engineering metrics.
struct layout_statistics
{
    std::string name;
    std::uint32_t width{};
    std::uint32_t height{};
    /// width * height, the "A" column.
    std::uint64_t area{};
    std::size_t num_gates{};
    std::size_t num_wires{};
    std::size_t num_crossings{};
    std::size_t num_pis{};
    std::size_t num_pos{};
    /// Longest PI->PO tile path (clock cycles = critical_path / 4).
    std::uint32_t critical_path{};
};

/// Gathers \ref layout_statistics for \p layout.
[[nodiscard]] layout_statistics collect_layout_statistics(const gate_level_layout& layout);

/// All occupied tiles in topological order (every tile after all of its
/// fanins).
///
/// \throws mnt::design_rule_error on cyclic connectivity
[[nodiscard]] std::vector<coordinate> topological_tile_order(const gate_level_layout& layout);

/// Number of outgoing-clocked neighbor positions of \p c onto which a new
/// wire could still start (empty ground, or crossable ground wire with a
/// free crossing layer). A gate placed on a tile with zero usable exits can
/// never drive anything.
[[nodiscard]] std::size_t usable_exits(const gate_level_layout& layout, const coordinate& c);

/// Number of wire *layers* on incoming-clocked neighbor positions of \p c
/// through which new connections could still arrive (two for an empty
/// position, one above a crossable wire). An n-ary gate needs at least n
/// usable entries.
[[nodiscard]] std::size_t usable_entries(const gate_level_layout& layout, const coordinate& c);

}  // namespace mnt::lyt
