#include "common/types.hpp"
#include "io/fgl_reader.hpp"
#include "io/verilog_reader.hpp"

#include <gtest/gtest.h>

#include <string>

using namespace mnt;
using namespace mnt::io;

namespace
{

/// Parses \p document as .fgl, requires a parse_error and returns it for
/// message/line inspection.
parse_error fgl_failure(const std::string& document)
{
    try
    {
        static_cast<void>(read_fgl_string(document));
    }
    catch (const parse_error& e)
    {
        return e;
    }
    ADD_FAILURE() << "expected parse_error for: " << document;
    return parse_error{"not thrown", 0};
}

parse_error verilog_failure(const std::string& source)
{
    try
    {
        static_cast<void>(read_verilog_string(source, "bad"));
    }
    catch (const parse_error& e)
    {
        return e;
    }
    ADD_FAILURE() << "expected parse_error for: " << source;
    return parse_error{"not thrown", 0};
}

/// A structurally valid .fgl prefix: <fgl><layout> with name/topology/
/// clocking/size; \p body is inserted before the closing tags.
std::string fgl_with(const std::string& body, const std::string& clocking = "2DDWave")
{
    return "<fgl>\n"                                          // line 1
           "  <layout>\n"                                     // line 2
           "    <name>t</name>\n"                             // line 3
           "    <topology>cartesian</topology>\n"             // line 4
           "    <clocking>" + clocking + "</clocking>\n"      // line 5
           "    <size><x>3</x><y>3</y></size>\n"              // line 6
           + body +
           "  </layout>\n"
           "</fgl>\n";
}

}  // namespace

// ------------------------------------------------------------------- .fgl

TEST(MalformedFglTest, TruncatedDocument)
{
    const auto e = fgl_failure("<fgl>\n  <layout>\n    <name>t</name>\n");
    EXPECT_NE(std::string{e.what()}.find("unterminated"), std::string::npos);
    EXPECT_GE(e.line_number, 1U);
}

TEST(MalformedFglTest, EmptyDocument)
{
    EXPECT_THROW(static_cast<void>(read_fgl_string("")), parse_error);
    EXPECT_THROW(static_cast<void>(read_fgl_string("   \n\n  ")), parse_error);
}

TEST(MalformedFglTest, WrongRootTagReportsItsLine)
{
    const auto e = fgl_failure("<!-- a comment -->\n<notfgl></notfgl>\n");
    EXPECT_NE(std::string{e.what()}.find("<notfgl>"), std::string::npos);
    EXPECT_EQ(e.line_number, 2U);
}

TEST(MalformedFglTest, MissingLayoutElement)
{
    const auto e = fgl_failure("<fgl>\n</fgl>\n");
    EXPECT_NE(std::string{e.what()}.find("<layout>"), std::string::npos);
    EXPECT_EQ(e.line_number, 1U);
}

TEST(MalformedFglTest, MissingSizeReportsLayoutLine)
{
    const auto e = fgl_failure("<fgl>\n  <layout>\n    <name>t</name>\n"
                               "    <topology>cartesian</topology>\n"
                               "    <clocking>2DDWave</clocking>\n"
                               "  </layout>\n</fgl>\n");
    EXPECT_NE(std::string{e.what()}.find("<size>"), std::string::npos);
    EXPECT_EQ(e.line_number, 2U);  // the <layout> element's line
}

TEST(MalformedFglTest, NonNumericDimensionReportsSizeLine)
{
    const auto e = fgl_failure("<fgl>\n  <layout>\n    <name>t</name>\n"
                               "    <topology>cartesian</topology>\n"
                               "    <clocking>2DDWave</clocking>\n"
                               "    <size><x>wide</x><y>3</y></size>\n"
                               "    <gates></gates>\n"
                               "  </layout>\n</fgl>\n");
    EXPECT_NE(std::string{e.what()}.find("invalid integer 'wide'"), std::string::npos);
    EXPECT_EQ(e.line_number, 6U);
}

TEST(MalformedFglTest, NonPositiveDimensions)
{
    const auto e = fgl_failure("<fgl>\n  <layout>\n    <name>t</name>\n"
                               "    <topology>cartesian</topology>\n"
                               "    <clocking>2DDWave</clocking>\n"
                               "    <size><x>0</x><y>3</y></size>\n"
                               "    <gates></gates>\n"
                               "  </layout>\n</fgl>\n");
    EXPECT_NE(std::string{e.what()}.find("positive"), std::string::npos);
    EXPECT_EQ(e.line_number, 6U);
}

TEST(MalformedFglTest, OutOfRangeClockZone)
{
    const auto body = "    <clockzones>\n"                        // line 7
                      "      <zone><x>0</x><y>0</y><clock>7</clock></zone>\n"  // line 8
                      "    </clockzones>\n"
                      "    <gates></gates>\n";
    const auto e = fgl_failure(fgl_with(body, "OPEN"));
    EXPECT_NE(std::string{e.what()}.find("clock zone"), std::string::npos);
    EXPECT_EQ(e.line_number, 8U);
}

TEST(MalformedFglTest, NonNumericClockZone)
{
    const auto body = "    <clockzones>\n"
                      "      <zone><x>0</x><y>zero</y><clock>1</clock></zone>\n"
                      "    </clockzones>\n"
                      "    <gates></gates>\n";
    const auto e = fgl_failure(fgl_with(body, "OPEN"));
    EXPECT_NE(std::string{e.what()}.find("invalid integer 'zero'"), std::string::npos);
    EXPECT_EQ(e.line_number, 8U);
}

TEST(MalformedFglTest, UnknownGateTypeReportsGateLine)
{
    const auto body = "    <gates>\n"                                            // line 7
                      "      <gate>\n"                                           // line 8
                      "        <type>frobnicator</type>\n"
                      "        <loc><x>0</x><y>0</y></loc>\n"
                      "      </gate>\n"
                      "    </gates>\n";
    const auto e = fgl_failure(fgl_with(body));
    EXPECT_NE(std::string{e.what()}.find("frobnicator"), std::string::npos);
    EXPECT_EQ(e.line_number, 8U);
}

TEST(MalformedFglTest, GateWithoutLocation)
{
    const auto body = "    <gates>\n"
                      "      <gate><type>pi</type><name>a</name></gate>\n"  // line 8
                      "    </gates>\n";
    const auto e = fgl_failure(fgl_with(body));
    EXPECT_NE(std::string{e.what()}.find("<loc>"), std::string::npos);
    EXPECT_EQ(e.line_number, 8U);
}

TEST(MalformedFglTest, BadLayerIndex)
{
    const auto body = "    <gates>\n"
                      "      <gate>\n"  // line 8
                      "        <type>pi</type><name>a</name>\n"
                      "        <loc><x>0</x><y>0</y><z>3</z></loc>\n"  // line 10
                      "      </gate>\n"
                      "    </gates>\n";
    const auto e = fgl_failure(fgl_with(body));
    EXPECT_NE(std::string{e.what()}.find("layer z"), std::string::npos);
    EXPECT_EQ(e.line_number, 10U);
}

TEST(MalformedFglTest, NonUtf8BytesNeverCrash)
{
    // raw high bytes in text content must yield a typed error, not UB
    std::string body = "    <gates>\n"
                       "      <gate><type>pi</type><name>a</name>\n"
                       "        <loc><x>\xFF\xFE</x><y>0</y></loc></gate>\n"
                       "    </gates>\n";
    EXPECT_THROW(static_cast<void>(read_fgl_string(fgl_with(body))), parse_error);

    // and raw garbage instead of a document as well
    EXPECT_THROW(static_cast<void>(read_fgl_string("\xFF\xFE garbage")), parse_error);
}

TEST(MalformedFglTest, MismatchedClosingTag)
{
    const auto e = fgl_failure("<fgl>\n  <layout>\n  </fgl>\n");
    EXPECT_NE(std::string{e.what()}.find("mismatched"), std::string::npos);
    EXPECT_EQ(e.line_number, 3U);
}

// ---------------------------------------------------------------- Verilog

TEST(MalformedVerilogTest, TruncatedModule)
{
    const auto e = verilog_failure("module m(a, y);\ninput a;\noutput y;\nassign y = a;\n");
    EXPECT_NE(std::string{e.what()}.find("endmodule"), std::string::npos);
}

TEST(MalformedVerilogTest, EmptySource)
{
    EXPECT_THROW(static_cast<void>(read_verilog_string("", "empty")), parse_error);
}

TEST(MalformedVerilogTest, UnterminatedBlockComment)
{
    const auto e = verilog_failure("module m(y);\noutput y;\n/* no end\nassign y = 1'b0;\nendmodule\n");
    EXPECT_NE(std::string{e.what()}.find("unterminated block comment"), std::string::npos);
    EXPECT_GE(e.line_number, 3U);
}

TEST(MalformedVerilogTest, DuplicateDriverReportsSecondAssignment)
{
    const auto e = verilog_failure("module m(a, b, y);\n"   // line 1
                                   "input a, b;\n"          // line 2
                                   "output y;\n"            // line 3
                                   "assign y = a;\n"        // line 4
                                   "assign y = b;\n"        // line 5
                                   "endmodule\n");
    EXPECT_NE(std::string{e.what()}.find("driven multiple times"), std::string::npos);
    EXPECT_EQ(e.line_number, 5U);
}

TEST(MalformedVerilogTest, DuplicatePrimitiveDriver)
{
    const auto e = verilog_failure("module m(a, b, y);\n"
                                   "input a, b;\n"
                                   "output y;\n"
                                   "and g1 (y, a, b);\n"
                                   "or g2 (y, a, b);\n"  // line 5
                                   "endmodule\n");
    EXPECT_NE(std::string{e.what()}.find("driven multiple times"), std::string::npos);
    EXPECT_EQ(e.line_number, 5U);
}

TEST(MalformedVerilogTest, UndrivenNet)
{
    const auto e = verilog_failure("module m(a, y);\ninput a;\noutput y;\nassign y = ghost;\nendmodule\n");
    EXPECT_NE(std::string{e.what()}.find("never driven"), std::string::npos);
}

TEST(MalformedVerilogTest, CombinationalCycleReportsDriverLine)
{
    const auto e = verilog_failure("module m(a, y);\n"
                                   "input a;\n"
                                   "output y;\n"
                                   "wire u, v;\n"
                                   "assign u = v & a;\n"  // line 5
                                   "assign v = u;\n"      // line 6
                                   "assign y = u;\n"
                                   "endmodule\n");
    EXPECT_NE(std::string{e.what()}.find("combinational cycle"), std::string::npos);
    EXPECT_GE(e.line_number, 5U);
    EXPECT_LE(e.line_number, 6U);
}

TEST(MalformedVerilogTest, VectorNetsAreRejected)
{
    const auto e = verilog_failure("module m(a, y);\ninput [1:0] a;\noutput y;\nendmodule\n");
    EXPECT_NE(std::string{e.what()}.find("vector nets"), std::string::npos);
    EXPECT_EQ(e.line_number, 2U);
}

TEST(MalformedVerilogTest, MultiBitConstantsAreRejected)
{
    const auto e = verilog_failure("module m(y);\noutput y;\nassign y = 4'b1010;\nendmodule\n");
    EXPECT_NE(std::string{e.what()}.find("single-bit"), std::string::npos);
    EXPECT_EQ(e.line_number, 3U);
}

TEST(MalformedVerilogTest, WrongPrimitiveArity)
{
    const auto e = verilog_failure("module m(a, y);\n"
                                   "input a;\n"
                                   "output y;\n"
                                   "and g1 (y, a);\n"  // and expects 3 terminals
                                   "endmodule\n");
    EXPECT_NE(std::string{e.what()}.find("terminals"), std::string::npos);
    EXPECT_EQ(e.line_number, 4U);
}

TEST(MalformedVerilogTest, UnknownStatement)
{
    const auto e = verilog_failure("module m(y);\noutput y;\nfrobnicate y;\nendmodule\n");
    EXPECT_NE(std::string{e.what()}.find("frobnicate"), std::string::npos);
    EXPECT_EQ(e.line_number, 3U);
}

TEST(MalformedVerilogTest, NonUtf8BytesNeverCrash)
{
    const auto e = verilog_failure("module m(y);\noutput y;\nassign y = \xFF;\nendmodule\n");
    EXPECT_NE(std::string{e.what()}.find("unexpected character"), std::string::npos);
    EXPECT_EQ(e.line_number, 3U);
}

TEST(MalformedVerilogTest, ContentAfterEndmodule)
{
    const auto e = verilog_failure("module m(y);\noutput y;\nassign y = 1'b0;\nendmodule\nmodule n(); endmodule\n");
    EXPECT_NE(std::string{e.what()}.find("single module"), std::string::npos);
    EXPECT_EQ(e.line_number, 5U);
}

// --------------------------------------------------- hostile .fgl documents

namespace
{

/// Parses \p document as .fgl, requires a design_rule_error and returns its
/// message for inspection.
std::string fgl_rule_failure(const std::string& document)
{
    try
    {
        static_cast<void>(read_fgl_string(document));
    }
    catch (const design_rule_error& e)
    {
        return e.what();
    }
    ADD_FAILURE() << "expected design_rule_error for: " << document;
    return {};
}

}  // namespace

TEST(HostileFglTest, DuplicateTilesAtOneCoordinate)
{
    const auto body = "    <gates>\n"                                        // line 7
                      "      <gate><type>pi</type><name>a</name>\n"          // line 8
                      "        <loc><x>1</x><y>1</y></loc></gate>\n"
                      "      <gate><type>and</type>\n"                       // line 10
                      "        <loc><x>1</x><y>1</y></loc></gate>\n"
                      "    </gates>\n";
    const auto message = fgl_rule_failure(fgl_with(body));
    EXPECT_NE(message.find("already occupied"), std::string::npos);
    EXPECT_NE(message.find("line 10"), std::string::npos);
}

TEST(HostileFglTest, DuplicateCrossingTilesAtOneCoordinate)
{
    const auto body = "    <gates>\n"
                      "      <gate><type>buf</type>\n"
                      "        <loc><x>1</x><y>1</y><z>1</z></loc></gate>\n"
                      "      <gate><type>buf</type>\n"  // line 10
                      "        <loc><x>1</x><y>1</y><z>1</z></loc></gate>\n"
                      "    </gates>\n";
    const auto message = fgl_rule_failure(fgl_with(body));
    EXPECT_NE(message.find("already occupied"), std::string::npos);
    EXPECT_NE(message.find("line 10"), std::string::npos);
}

TEST(HostileFglTest, SelfLoopConnectionIsRejectedWithItsLine)
{
    const auto body = "    <gates>\n"                               // line 7
                      "      <gate><type>buf</type>\n"              // line 8
                      "        <loc><x>1</x><y>1</y></loc>\n"
                      "        <incoming>\n"
                      "          <loc><x>1</x><y>1</y></loc>\n"     // line 11
                      "        </incoming>\n"
                      "      </gate>\n"
                      "    </gates>\n";
    const auto message = fgl_rule_failure(fgl_with(body));
    EXPECT_NE(message.find("itself as fanin"), std::string::npos);
    EXPECT_NE(message.find("line 11"), std::string::npos);
}

TEST(HostileFglTest, OutOfBoundsIncomingReferenceReportsItsLine)
{
    const auto body = "    <gates>\n"
                      "      <gate><type>po</type><name>y</name>\n"
                      "        <loc><x>1</x><y>1</y></loc>\n"
                      "        <incoming>\n"
                      "          <loc><x>99</x><y>99</y></loc>\n"  // line 11: outside the 3x3 grid
                      "        </incoming>\n"
                      "      </gate>\n"
                      "    </gates>\n";
    const auto message = fgl_rule_failure(fgl_with(body));
    EXPECT_NE(message.find("is empty"), std::string::npos);
    EXPECT_NE(message.find("line 11"), std::string::npos);
}

TEST(HostileFglTest, DanglingIncomingReferenceReportsItsLine)
{
    // in bounds, but no gate was ever placed there
    const auto body = "    <gates>\n"
                      "      <gate><type>po</type><name>y</name>\n"
                      "        <loc><x>1</x><y>1</y></loc>\n"
                      "        <incoming>\n"
                      "          <loc><x>0</x><y>0</y></loc>\n"  // line 11
                      "        </incoming>\n"
                      "      </gate>\n"
                      "    </gates>\n";
    const auto message = fgl_rule_failure(fgl_with(body));
    EXPECT_NE(message.find("is empty"), std::string::npos);
    EXPECT_NE(message.find("line 11"), std::string::npos);
}

TEST(HostileFglTest, OutOfBoundsGatePlacementReportsItsLine)
{
    const auto body = "    <gates>\n"
                      "      <gate><type>pi</type><name>a</name>\n"  // line 8
                      "        <loc><x>7</x><y>0</y></loc></gate>\n"
                      "    </gates>\n";
    const auto message = fgl_rule_failure(fgl_with(body));
    EXPECT_NE(message.find("out of bounds"), std::string::npos);
    EXPECT_NE(message.find("line 8"), std::string::npos);
}

TEST(HostileFglTest, CoordinateOverflowIsATypedError)
{
    // 2^33 + 5 would silently alias to 5 under a bare int32 cast
    const auto body = "    <gates>\n"
                      "      <gate><type>pi</type><name>a</name>\n"
                      "        <loc><x>8589934597</x><y>0</y></loc></gate>\n"  // line 9
                      "    </gates>\n";
    const auto e = fgl_failure(fgl_with(body));
    EXPECT_NE(std::string{e.what()}.find("out of range"), std::string::npos);
    EXPECT_EQ(e.line_number, 9U);
}

TEST(HostileFglTest, AbsurdDeclaredSizeIsRejectedNotAllocated)
{
    // the dense grid would otherwise try to reserve billions of slots
    const auto e = fgl_failure("<fgl>\n  <layout>\n    <name>t</name>\n"
                               "    <topology>cartesian</topology>\n"
                               "    <clocking>2DDWave</clocking>\n"
                               "    <size><x>1000000000</x><y>1000000000</y></size>\n"  // line 6
                               "    <gates></gates>\n"
                               "  </layout>\n</fgl>\n");
    EXPECT_NE(std::string{e.what()}.find("exceeds the supported area"), std::string::npos);
    EXPECT_EQ(e.line_number, 6U);
}

TEST(HostileFglTest, ClockZoneOutsideDeclaredSizeIsRejected)
{
    // a huge zone coordinate must not blow up the dense zone grid
    const auto body = "    <clockzones>\n"                                              // line 7
                      "      <zone><x>2000000</x><y>0</y><clock>1</clock></zone>\n"     // line 8
                      "    </clockzones>\n"
                      "    <gates></gates>\n";
    const auto e = fgl_failure(fgl_with(body, "OPEN"));
    EXPECT_NE(std::string{e.what()}.find("outside the declared layout size"), std::string::npos);
    EXPECT_EQ(e.line_number, 8U);
}

TEST(HostileFglTest, NegativeClockZoneCoordinateIsRejected)
{
    const auto body = "    <clockzones>\n"
                      "      <zone><x>-1</x><y>0</y><clock>1</clock></zone>\n"  // line 8
                      "    </clockzones>\n"
                      "    <gates></gates>\n";
    const auto e = fgl_failure(fgl_with(body, "OPEN"));
    EXPECT_NE(std::string{e.what()}.find("outside the declared layout size"), std::string::npos);
    EXPECT_EQ(e.line_number, 8U);
}

TEST(HostileFglTest, FanoutOverflowIsATypedError)
{
    // three successors of one tile exceed the fixed fanout capacity; the
    // reader must surface the rule violation with the offending line
    const auto body = "    <gates>\n"
                      "      <gate><type>fanout</type><loc><x>0</x><y>0</y></loc></gate>\n"
                      "      <gate><type>buf</type><loc><x>1</x><y>0</y></loc>\n"
                      "        <incoming><loc><x>0</x><y>0</y></loc></incoming></gate>\n"
                      "      <gate><type>buf</type><loc><x>0</x><y>1</y></loc>\n"
                      "        <incoming><loc><x>0</x><y>0</y></loc></incoming></gate>\n"
                      "      <gate><type>buf</type><loc><x>1</x><y>1</y></loc>\n"
                      "        <incoming><loc><x>0</x><y>0</y></loc></incoming></gate>\n"  // line 14
                      "    </gates>\n";
    const auto message = fgl_rule_failure(fgl_with(body));
    EXPECT_NE(message.find("fanout capacity"), std::string::npos);
    EXPECT_NE(message.find("line 14"), std::string::npos);
}
