#include "verification/cell_drc.hpp"

#include "gate_library/bestagon.hpp"
#include "gate_library/qca_one.hpp"
#include "network/transforms.hpp"
#include "physical_design/hexagonalization.hpp"
#include "physical_design/ortho.hpp"
#include "test_networks.hpp"

#include <gtest/gtest.h>

#include <algorithm>

using namespace mnt;
using namespace mnt::gl;
using namespace mnt::ver;
using namespace mnt::test;

namespace
{

bool mentions(const std::vector<std::string>& messages, const std::string& needle)
{
    return std::any_of(messages.cbegin(), messages.cend(),
                       [&](const std::string& m) { return m.find(needle) != std::string::npos; });
}

}  // namespace

TEST(CellDrcTest, CompiledQcaLayoutIsClean)
{
    const auto layout = pd::ortho(ntk::to_aoi(mux21()));
    const auto cells = apply_qca_one(layout);
    const auto report = cell_level_drc(cells);
    EXPECT_TRUE(report.passed()) << (report.errors.empty() ? "" : report.errors.front());
}

TEST(CellDrcTest, CompiledBestagonLayoutIsClean)
{
    const auto hex = pd::hexagonalization(pd::ortho(full_adder()));
    const auto cells = apply_bestagon(hex);
    const auto report = cell_level_drc(cells);
    EXPECT_TRUE(report.passed()) << (report.errors.empty() ? "" : report.errors.front());
}

TEST(CellDrcTest, UnnamedInputIsAnError)
{
    cell_level_layout cells{"t", cell_technology::qca, 10, 10};
    cell c{};
    c.kind = cell_kind::input;
    cells.place_cell({1, 1}, c, 0);
    const auto report = cell_level_drc(cells);
    EXPECT_FALSE(report.passed());
    EXPECT_TRUE(mentions(report.errors, "no name"));
}

TEST(CellDrcTest, DuplicateOutputNamesAreAnError)
{
    cell_level_layout cells{"t", cell_technology::qca, 10, 10};
    cell c{};
    c.kind = cell_kind::output;
    c.name = "y";
    cells.place_cell({1, 1}, c, 0);
    cells.place_cell({2, 1}, c, 0);
    const auto report = cell_level_drc(cells);
    EXPECT_FALSE(report.passed());
    EXPECT_TRUE(mentions(report.errors, "duplicate output"));
}

TEST(CellDrcTest, CrossoverOutsideCrossingLayerIsAnError)
{
    cell_level_layout cells{"t", cell_technology::qca, 10, 10};
    cell c{};
    c.kind = cell_kind::crossover;
    cells.place_cell({1, 1}, c, 0);
    cells.place_cell({2, 1}, {}, 0);
    const auto report = cell_level_drc(cells);
    EXPECT_FALSE(report.passed());
    EXPECT_TRUE(mentions(report.errors, "crossing layer"));
}

TEST(CellDrcTest, FloatingFixedCellIsAnError)
{
    cell_level_layout cells{"t", cell_technology::qca, 10, 10};
    cell fixed{};
    fixed.kind = cell_kind::fixed_0;
    cells.place_cell({5, 5}, fixed, 0);
    const auto report = cell_level_drc(cells);
    EXPECT_FALSE(report.passed());
    EXPECT_TRUE(mentions(report.errors, "drives no neighbor"));
}

TEST(CellDrcTest, IsolatedCellIsAWarning)
{
    cell_level_layout cells{"t", cell_technology::qca, 16, 16};
    cells.place_cell({1, 1}, {}, 0);
    cells.place_cell({2, 1}, {}, 0);
    cells.place_cell({12, 12}, {}, 0);  // far away from everything
    const auto report = cell_level_drc(cells);
    EXPECT_TRUE(report.passed());
    EXPECT_TRUE(mentions(report.warnings, "isolated"));
}

TEST(CellDrcTest, ZoneJumpIsAnError)
{
    cell_level_layout cells{"t", cell_technology::qca, 10, 10};
    cells.place_cell({1, 1}, {}, 0);
    cells.place_cell({2, 1}, {}, 2);  // two zones away
    const auto report = cell_level_drc(cells);
    EXPECT_FALSE(report.passed());
    EXPECT_TRUE(mentions(report.errors, "clock zone"));
}

TEST(CellDrcTest, WrapAroundZoneStepIsFine)
{
    cell_level_layout cells{"t", cell_technology::qca, 10, 10};
    cells.place_cell({1, 1}, {}, 3);
    cells.place_cell({2, 1}, {}, 0);  // 3 -> 0 wraps to one step
    const auto report = cell_level_drc(cells);
    EXPECT_TRUE(report.passed()) << (report.errors.empty() ? "" : report.errors.front());
}
