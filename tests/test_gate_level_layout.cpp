#include "layout/gate_level_layout.hpp"

#include "common/types.hpp"
#include "network/gate_type.hpp"

#include <gtest/gtest.h>

#include <algorithm>

using namespace mnt;
using namespace mnt::lyt;
using mnt::ntk::gate_type;

namespace
{

gate_level_layout make_empty(const std::uint32_t w = 6, const std::uint32_t h = 6)
{
    return gate_level_layout{"test", layout_topology::cartesian, clocking_scheme::twoddwave(), w, h};
}

/// Builds a small AND layout on 2DDWave:
///   pi(a) at (0,0) -> and at (1,0) <- pi(b) at (1,1)? No: b must be in zone 0.
/// Layout used:
///   a=(0,0) z0, b=(1,0)? both feed and at... 2DDWave flows E and S, so use
///   a=(1,0), b=(0,1), and=(1,1), po=(2,1).
gate_level_layout make_and_layout()
{
    auto layout = make_empty();
    layout.place({1, 0}, gate_type::pi, "a");
    layout.place({0, 1}, gate_type::pi, "b");
    layout.place({1, 1}, gate_type::and2);
    layout.place({2, 1}, gate_type::po, "y");
    layout.connect({1, 0}, {1, 1});
    layout.connect({0, 1}, {1, 1});
    layout.connect({1, 1}, {2, 1});
    return layout;
}

}  // namespace

TEST(GateLevelLayoutTest, ConstructionAndGeometry)
{
    const auto layout = make_empty(4, 7);
    EXPECT_EQ(layout.width(), 4u);
    EXPECT_EQ(layout.height(), 7u);
    EXPECT_EQ(layout.area(), 28u);
    EXPECT_EQ(layout.topology(), layout_topology::cartesian);
    EXPECT_TRUE(layout.within_bounds({3, 6}));
    EXPECT_FALSE(layout.within_bounds({4, 0}));
    EXPECT_FALSE(layout.within_bounds({0, 7}));
    EXPECT_FALSE(layout.within_bounds({-1, 0}));
    EXPECT_FALSE(layout.within_bounds({0, 0, 2}));
}

TEST(GateLevelLayoutTest, ZeroDimensionsRejected)
{
    EXPECT_THROW(gate_level_layout("x", layout_topology::cartesian, clocking_scheme::twoddwave(), 0, 5),
                 precondition_error);
}

TEST(GateLevelLayoutTest, HexagonalRequiresRowOrOpen)
{
    EXPECT_THROW(gate_level_layout("x", layout_topology::hexagonal_even_row, clocking_scheme::use(), 4, 4),
                 precondition_error);
    EXPECT_NO_THROW(gate_level_layout("x", layout_topology::hexagonal_even_row, clocking_scheme::row(), 4, 4));
    EXPECT_NO_THROW(gate_level_layout("x", layout_topology::hexagonal_even_row, clocking_scheme::open(), 4, 4));
}

TEST(GateLevelLayoutTest, PlaceAndQuery)
{
    auto layout = make_empty();
    layout.place({2, 1}, gate_type::and2);
    EXPECT_TRUE(layout.has_tile({2, 1}));
    EXPECT_FALSE(layout.is_empty_tile({2, 1}));
    EXPECT_TRUE(layout.is_empty_tile({2, 2}));
    EXPECT_EQ(layout.type_of({2, 1}), gate_type::and2);
    EXPECT_EQ(layout.type_of({0, 0}), gate_type::none);
    EXPECT_EQ(layout.num_occupied(), 1u);
    EXPECT_EQ(layout.num_gates(), 1u);
}

TEST(GateLevelLayoutTest, PlaceRejectsInvalid)
{
    auto layout = make_empty();
    layout.place({1, 1}, gate_type::buf);
    EXPECT_THROW(layout.place({1, 1}, gate_type::and2), precondition_error);       // occupied
    EXPECT_THROW(layout.place({9, 9}, gate_type::and2), precondition_error);       // oob
    EXPECT_THROW(layout.place({2, 2}, gate_type::none), precondition_error);       // none
    EXPECT_THROW(layout.place({2, 2}, gate_type::const0), precondition_error);     // const
    EXPECT_THROW(layout.place({2, 2, 1}, gate_type::and2), precondition_error);    // gate on z=1
    EXPECT_NO_THROW(layout.place({1, 1, 1}, gate_type::buf));                      // crossing wire
}

TEST(GateLevelLayoutTest, ConnectTracksBothDirections)
{
    const auto layout = make_and_layout();
    const auto& in = layout.incoming_of({1, 1});
    ASSERT_EQ(in.size(), 2u);
    EXPECT_EQ(in[0], coordinate(1, 0));
    EXPECT_EQ(in[1], coordinate(0, 1));
    const auto& out = layout.outgoing_of({1, 1});
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], coordinate(2, 1));
}

TEST(GateLevelLayoutTest, ConnectRejectsOverfull)
{
    auto layout = make_and_layout();
    layout.place({1, 2}, gate_type::buf);
    EXPECT_THROW(layout.connect({1, 2}, {1, 1}), precondition_error);  // and2 already has 2 fanins
}

TEST(GateLevelLayoutTest, PiPoBookkeeping)
{
    const auto layout = make_and_layout();
    EXPECT_EQ(layout.num_pis(), 2u);
    EXPECT_EQ(layout.num_pos(), 1u);
    ASSERT_EQ(layout.pi_tiles().size(), 2u);
    EXPECT_EQ(layout.get(layout.pi_tiles()[0]).io_name, "a");
    EXPECT_EQ(layout.get(layout.po_tiles()[0]).io_name, "y");
}

TEST(GateLevelLayoutTest, ClearTileSeversConnections)
{
    auto layout = make_and_layout();
    layout.clear_tile({1, 1});
    EXPECT_TRUE(layout.is_empty_tile({1, 1}));
    EXPECT_TRUE(layout.incoming_of({2, 1}).empty());
    EXPECT_TRUE(layout.outgoing_of({1, 0}).empty());
    EXPECT_TRUE(layout.outgoing_of({0, 1}).empty());
}

TEST(GateLevelLayoutTest, ClearPiUpdatesList)
{
    auto layout = make_and_layout();
    layout.clear_tile({1, 0});
    EXPECT_EQ(layout.num_pis(), 1u);
}

TEST(GateLevelLayoutTest, MoveTilePatchesConnections)
{
    auto layout = make_empty();
    layout.place({1, 0}, gate_type::pi, "a");
    layout.place({1, 1}, gate_type::buf);
    layout.place({1, 2}, gate_type::po, "y");
    layout.connect({1, 0}, {1, 1});
    layout.connect({1, 1}, {1, 2});

    // move the wire one tile east is clock-invalid, but move_tile itself is
    // permissive; semantic checks live in the DRC. Move the PO instead.
    layout.move_tile({1, 2}, {2, 2});
    EXPECT_TRUE(layout.is_empty_tile({1, 2}));
    EXPECT_EQ(layout.type_of({2, 2}), gate_type::po);
    ASSERT_EQ(layout.incoming_of({2, 2}).size(), 1u);
    EXPECT_EQ(layout.incoming_of({2, 2})[0], coordinate(1, 1));
    ASSERT_EQ(layout.outgoing_of({1, 1}).size(), 1u);
    EXPECT_EQ(layout.outgoing_of({1, 1})[0], coordinate(2, 2));
    EXPECT_EQ(layout.po_tiles()[0], coordinate(2, 2));
}

TEST(GateLevelLayoutTest, MoveTileRejectsOccupiedTarget)
{
    auto layout = make_and_layout();
    EXPECT_THROW(layout.move_tile({1, 0}, {0, 1}), precondition_error);
}

TEST(GateLevelLayoutTest, CountsByCategory)
{
    auto layout = make_and_layout();
    layout.place({3, 1}, gate_type::buf);
    layout.place({3, 1, 1}, gate_type::buf);
    layout.place({3, 2}, gate_type::fanout);
    EXPECT_EQ(layout.num_gates(), 1u);
    EXPECT_EQ(layout.num_wires(), 3u);
    EXPECT_EQ(layout.num_crossings(), 1u);
}

TEST(GateLevelLayoutTest, OutgoingClockedRespectsBoundsAndScheme)
{
    const auto layout = make_empty(3, 3);
    // 2DDWave at (0,0): outgoing to (1,0) and (0,1)
    const auto outs = layout.outgoing_clocked({0, 0});
    EXPECT_EQ(outs.size(), 2u);
    // at the south-east corner nothing is outgoing within bounds
    const auto corner = layout.outgoing_clocked({2, 2});
    EXPECT_TRUE(corner.empty());
    // incoming at (0,0) is empty
    EXPECT_TRUE(layout.incoming_clocked({0, 0}).empty());
}

TEST(GateLevelLayoutTest, ResizeValidation)
{
    auto layout = make_and_layout();
    EXPECT_THROW(layout.resize(2, 2), precondition_error);  // po at (2,1) would fall out
    layout.resize(3, 2);
    EXPECT_EQ(layout.width(), 3u);
    EXPECT_EQ(layout.height(), 2u);
}

TEST(GateLevelLayoutTest, BoundingBoxAndShrink)
{
    auto layout = make_empty(10, 10);
    layout.place({1, 0}, gate_type::pi, "a");
    layout.place({1, 1}, gate_type::po, "y");
    layout.connect({1, 0}, {1, 1});
    const auto [min_c, max_c] = layout.bounding_box();
    EXPECT_EQ(min_c, coordinate(1, 0));
    EXPECT_EQ(max_c, coordinate(1, 1));
    layout.shrink_to_fit();
    EXPECT_EQ(layout.width(), 2u);
    EXPECT_EQ(layout.height(), 2u);
}

TEST(GateLevelLayoutTest, TilesSortedIsDeterministic)
{
    const auto layout = make_and_layout();
    const auto sorted = layout.tiles_sorted();
    ASSERT_EQ(sorted.size(), 4u);
    EXPECT_TRUE(std::is_sorted(sorted.cbegin(), sorted.cend()));
}

TEST(GateLevelLayoutTest, LayoutNameAccessors)
{
    auto layout = make_empty();
    EXPECT_EQ(layout.layout_name(), "test");
    layout.set_layout_name("renamed");
    EXPECT_EQ(layout.layout_name(), "renamed");
}

TEST(GateLevelLayoutTest, ShrinkTranslatesByClockPeriod)
{
    // tiles starting at (4, 8): a 4-periodic translation is legal under any
    // regular scheme and must be applied by shrink_to_fit
    auto layout = gate_level_layout{"t", layout_topology::cartesian, clocking_scheme::use(), 16, 16};
    layout.place({4, 8}, gate_type::pi, "a");
    layout.place({5, 8}, gate_type::buf);
    layout.connect({4, 8}, {5, 8});
    const auto clock_before = layout.clock_number({4, 8});
    layout.shrink_to_fit();
    EXPECT_EQ(layout.width(), 2u);
    EXPECT_EQ(layout.height(), 1u);
    EXPECT_EQ(layout.type_of({0, 0}), gate_type::pi);
    EXPECT_EQ(layout.clock_number({0, 0}), clock_before);
}

TEST(GateLevelLayoutTest, ShrinkKeepsNonPeriodicMargin)
{
    // a (1, 0) offset is not a legal 2DDWave translation: the margin stays
    auto layout = gate_level_layout{"t", layout_topology::cartesian, clocking_scheme::twoddwave(), 8, 8};
    layout.place({1, 0}, gate_type::pi, "a");
    layout.shrink_to_fit();
    EXPECT_EQ(layout.width(), 2u);
    EXPECT_EQ(layout.type_of({1, 0}), gate_type::pi);
}

TEST(GateLevelLayoutTest, ShrinkMixedShiftPartiallyApplies)
{
    // 2DDWave at (4, 6): (4, 4) is the largest legal shift -> residue (0, 2)
    auto layout = gate_level_layout{"t", layout_topology::cartesian, clocking_scheme::twoddwave(), 16, 16};
    layout.place({4, 6}, gate_type::pi, "a");
    const auto clock_before = layout.clock_number({4, 6});
    layout.shrink_to_fit();
    EXPECT_EQ(layout.type_of({0, 2}), gate_type::pi);
    EXPECT_EQ(layout.clock_number({0, 2}), clock_before);
    EXPECT_EQ(layout.width(), 1u);
    EXPECT_EQ(layout.height(), 3u);
}

TEST(GateLevelLayoutTest, FailedResizeLeavesLayoutUntouched)
{
    // validate-then-commit: a rejected resize must not alter dimensions,
    // tiles, connectivity, PI/PO lists, or per-tile clock overrides
    auto layout = gate_level_layout{"t", layout_topology::cartesian, clocking_scheme::open(), 6, 6};
    layout.place({1, 0}, gate_type::pi, "a");
    layout.place({4, 4}, gate_type::po, "y");
    layout.connect({1, 0}, {4, 4});
    layout.clocking_mutable().assign_clock({1, 0}, 0);
    layout.clocking_mutable().assign_clock({4, 4}, 1);
    layout.clocking_mutable().assign_clock({5, 5}, 2);  // override beyond the would-be bounds

    EXPECT_THROW(layout.resize(3, 3), precondition_error);  // po at (4,4) falls out

    EXPECT_EQ(layout.width(), 6u);
    EXPECT_EQ(layout.height(), 6u);
    EXPECT_EQ(layout.type_of({4, 4}), gate_type::po);
    ASSERT_EQ(layout.incoming_of({4, 4}).size(), 1u);
    EXPECT_EQ(layout.incoming_of({4, 4})[0], coordinate(1, 0));
    ASSERT_EQ(layout.outgoing_of({1, 0}).size(), 1u);
    EXPECT_EQ(layout.outgoing_of({1, 0})[0], coordinate(4, 4));
    EXPECT_EQ(layout.num_pis(), 1u);
    EXPECT_EQ(layout.num_pos(), 1u);
    // even the override outside the rejected bounds must survive
    EXPECT_TRUE(layout.clocking().has_assigned_clock({5, 5}));
    EXPECT_EQ(layout.clocking().num_assigned_clocks(), 3u);
}

TEST(GateLevelLayoutTest, ResizeSmallerPrunesOpenOverrides)
{
    auto layout = gate_level_layout{"t", layout_topology::cartesian, clocking_scheme::open(), 6, 6};
    layout.place({0, 0}, gate_type::pi, "a");
    layout.clocking_mutable().assign_clock({0, 0}, 0);
    layout.clocking_mutable().assign_clock({5, 5}, 3);

    layout.resize(2, 2);

    EXPECT_TRUE(layout.clocking().has_assigned_clock({0, 0}));
    EXPECT_FALSE(layout.clocking().has_assigned_clock({5, 5}));
    EXPECT_EQ(layout.clocking().num_assigned_clocks(), 1u);
}

TEST(GateLevelLayoutTest, ShrinkThenRegrowDoesNotResurrectStaleZones)
{
    // a zone assigned at (5, 5), shrunk away, must not resurface once the
    // layout grows back over that coordinate
    auto layout = gate_level_layout{"t", layout_topology::cartesian, clocking_scheme::open(), 6, 6};
    layout.place({0, 0}, gate_type::pi, "a");
    layout.clocking_mutable().assign_clock({0, 0}, 0);
    layout.clocking_mutable().assign_clock({5, 5}, 3);

    layout.shrink_to_fit();
    EXPECT_EQ(layout.width(), 1u);
    EXPECT_EQ(layout.height(), 1u);

    layout.resize(6, 6);
    EXPECT_FALSE(layout.clocking().has_assigned_clock({5, 5}));
    EXPECT_EQ(layout.clock_number({5, 5}), 0u);  // unassigned default, not the stale 3
    EXPECT_TRUE(layout.clocking().has_assigned_clock({0, 0}));
}

TEST(GateLevelLayoutTest, ShrinkTranslationRekeysOpenZones)
{
    auto layout = gate_level_layout{"t", layout_topology::cartesian, clocking_scheme::open(), 8, 8};
    layout.place({3, 2}, gate_type::pi, "a");
    layout.place({4, 2}, gate_type::po, "y");
    layout.connect({3, 2}, {4, 2});
    layout.clocking_mutable().assign_clock({3, 2}, 1);
    layout.clocking_mutable().assign_clock({4, 2}, 2);

    layout.shrink_to_fit();

    EXPECT_EQ(layout.width(), 2u);
    EXPECT_EQ(layout.height(), 1u);
    EXPECT_EQ(layout.clock_number({0, 0}), 1u);
    EXPECT_EQ(layout.clock_number({1, 0}), 2u);
    // nothing outside the shrunken bounds remains assigned
    EXPECT_EQ(layout.clocking().num_assigned_clocks(), 2u);
}

TEST(GateLevelLayoutTest, HexagonalOpenShrinkKeepsRowParity)
{
    // an odd row shift would flip the even-row offset neighborhoods; the
    // shrink must keep one margin row instead
    auto layout = gate_level_layout{"t", layout_topology::hexagonal_even_row, clocking_scheme::open(), 8, 8};
    layout.place({0, 1}, gate_type::pi, "a");
    layout.clocking_mutable().assign_clock({0, 1}, 1);

    layout.shrink_to_fit();

    EXPECT_EQ(layout.height(), 2u);
    EXPECT_EQ(layout.type_of({0, 1}), gate_type::pi);
    EXPECT_EQ(layout.clock_number({0, 1}), 1u);
}

TEST(GateLevelLayoutTest, ConnectRejectsFanoutOverCapacity)
{
    auto layout = make_empty();
    layout.place({0, 0}, gate_type::fanout);
    layout.place({1, 0}, gate_type::buf);
    layout.place({0, 1}, gate_type::buf);
    layout.place({1, 1}, gate_type::and2);
    layout.connect({0, 0}, {1, 0});
    layout.connect({0, 0}, {0, 1});
    EXPECT_THROW(layout.connect({0, 0}, {1, 1}), precondition_error);
    EXPECT_EQ(layout.outgoing_of({0, 0}).size(), gate_level_layout::max_fanout);
}
