#include "physical_design/post_layout_optimization.hpp"

#include "physical_design/hexagonalization.hpp"
#include "physical_design/ortho.hpp"
#include "test_networks.hpp"
#include "verification/drc.hpp"
#include "verification/equivalence.hpp"

#include <gtest/gtest.h>

using namespace mnt;
using namespace mnt::pd;
using namespace mnt::test;

TEST(PloTest, ShrinksOrthoMux)
{
    const auto network = mux21();
    const auto layout = ortho(network);
    plo_stats stats{};
    const auto optimized = post_layout_optimization(layout, {}, &stats);

    EXPECT_LE(optimized.area(), layout.area());
    EXPECT_LT(stats.area_after, stats.area_before);
    EXPECT_GT(stats.passes, 0u);

    const auto report = ver::gate_level_drc(optimized);
    EXPECT_TRUE(report.passed()) << (report.errors.empty() ? "" : report.errors.front());
    EXPECT_TRUE(ver::check_layout_equivalence(network, optimized));
}

TEST(PloTest, InputUntouched)
{
    const auto network = half_adder();
    const auto layout = ortho(network);
    const auto area_before = layout.area();
    const auto wires_before = layout.num_wires();
    static_cast<void>(post_layout_optimization(layout));
    EXPECT_EQ(layout.area(), area_before);
    EXPECT_EQ(layout.num_wires(), wires_before);
}

TEST(PloTest, NeverIncreasesAreaOrBreaksFunction)
{
    for (const std::uint64_t seed : {31u, 32u, 33u})
    {
        const auto network = random_network(4, 30, 3, seed);
        const auto layout = ortho(network);
        const auto optimized = post_layout_optimization(layout);
        EXPECT_LE(optimized.area(), layout.area()) << "seed " << seed;
        ASSERT_TRUE(ver::gate_level_drc(optimized).passed()) << "seed " << seed;
        EXPECT_TRUE(ver::check_layout_equivalence(network, optimized)) << "seed " << seed;
    }
}

TEST(PloTest, WorksOnHexagonalLayouts)
{
    const auto network = half_adder();
    const auto hex = hexagonalization(ortho(network));
    plo_stats stats{};
    const auto optimized = post_layout_optimization(hex, {}, &stats);
    EXPECT_LE(optimized.area(), hex.area());
    EXPECT_EQ(optimized.topology(), lyt::layout_topology::hexagonal_even_row);
    const auto report = ver::gate_level_drc(optimized);
    EXPECT_TRUE(report.passed()) << (report.errors.empty() ? "" : report.errors.front());
    EXPECT_TRUE(ver::check_layout_equivalence(network, optimized));
}

TEST(PloTest, NonCommutativeGatesSurvive)
{
    ntk::logic_network network{"ltgt"};
    const auto a = network.create_pi("a");
    const auto b = network.create_pi("b");
    network.create_po(network.create_lt(a, b), "l");
    network.create_po(network.create_gt(a, b), "g");
    network.create_po(network.create_le(a, b), "le");

    const auto optimized = post_layout_optimization(ortho(network));
    EXPECT_TRUE(ver::check_layout_equivalence(network, optimized));
}

TEST(PloTest, MoveBudgetRespected)
{
    const auto network = random_network(4, 25, 2, 41);
    const auto layout = ortho(network);
    plo_params params{};
    params.max_gate_moves = 5;
    plo_stats stats{};
    const auto optimized = post_layout_optimization(layout, params, &stats);
    EXPECT_LE(stats.accepted_moves, 5u);
    EXPECT_TRUE(ver::check_layout_equivalence(network, optimized));
}

TEST(PloTest, ReportsWireReduction)
{
    const auto network = random_network(5, 35, 3, 43);
    const auto layout = ortho(network);
    plo_stats stats{};
    const auto optimized = post_layout_optimization(layout, {}, &stats);
    EXPECT_EQ(stats.wires_after, optimized.num_wires());
    EXPECT_LE(stats.wires_after, stats.wires_before);
    EXPECT_TRUE(ver::check_layout_equivalence(network, optimized));
}
