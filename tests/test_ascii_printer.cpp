#include "io/ascii_printer.hpp"

#include "layout/gate_level_layout.hpp"
#include "layout/routing.hpp"

#include <gtest/gtest.h>

#include <string>

using namespace mnt;
using namespace mnt::io;
using namespace mnt::lyt;
using mnt::ntk::gate_type;

TEST(AsciiPrinterTest, HeaderContainsMetadata)
{
    const gate_level_layout layout{"hdr", layout_topology::cartesian, clocking_scheme::use(), 3, 4};
    const auto text = layout_to_string(layout);
    EXPECT_NE(text.find("hdr"), std::string::npos);
    EXPECT_NE(text.find("cartesian"), std::string::npos);
    EXPECT_NE(text.find("USE"), std::string::npos);
    EXPECT_NE(text.find("3 x 4 = 12 tiles"), std::string::npos);
}

TEST(AsciiPrinterTest, GateSymbolsAppear)
{
    gate_level_layout layout{"sym", layout_topology::cartesian, clocking_scheme::twoddwave(), 4, 3};
    layout.place({1, 0}, gate_type::pi, "a");
    layout.place({0, 1}, gate_type::pi, "b");
    layout.place({1, 1}, gate_type::and2);
    layout.place({2, 1}, gate_type::po, "y");
    const auto text = layout_to_string(layout);
    EXPECT_NE(text.find('I'), std::string::npos);
    EXPECT_NE(text.find('&'), std::string::npos);
    EXPECT_NE(text.find('O'), std::string::npos);
}

TEST(AsciiPrinterTest, CrossingsAreMarked)
{
    gate_level_layout layout{"x", layout_topology::cartesian, clocking_scheme::twoddwave(), 5, 5};
    layout.place({2, 0}, gate_type::pi, "v");
    layout.place({2, 4}, gate_type::po, "vy");
    ASSERT_TRUE(route(layout, {2, 0}, {2, 4}));
    layout.place({0, 2}, gate_type::pi, "h");
    layout.place({4, 2}, gate_type::po, "hy");
    ASSERT_TRUE(route(layout, {0, 2}, {4, 2}));

    const auto text = layout_to_string(layout);
    EXPECT_NE(text.find("[=]"), std::string::npos);
}

TEST(AsciiPrinterTest, ClockZonesShown)
{
    const gate_level_layout layout{"clk", layout_topology::cartesian, clocking_scheme::twoddwave(), 4, 1};
    ascii_printer_options options{};
    options.show_clock_zones = true;
    const auto text = layout_to_string(layout, options);
    EXPECT_NE(text.find('0'), std::string::npos);
    EXPECT_NE(text.find('3'), std::string::npos);
}

TEST(AsciiPrinterTest, HexRowsAreIndented)
{
    const gate_level_layout layout{"hex", layout_topology::hexagonal_even_row, clocking_scheme::row(), 2, 2};
    ascii_printer_options options{};
    options.show_clock_zones = true;
    const auto text = layout_to_string(layout, options);
    // second grid row (odd) starts with the half-tile indent
    const auto first_newline = text.find('\n');
    const auto second_line_start = text.find('\n', first_newline + 1) + 1;
    EXPECT_EQ(text.substr(second_line_start, 2), "  ");
}
