#include "network/simulation.hpp"

#include "common/types.hpp"
#include "network/logic_network.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <vector>

using namespace mnt;
using namespace mnt::ntk;

namespace
{

/// a & b
logic_network make_and()
{
    logic_network network{"and"};
    const auto a = network.create_pi("a");
    const auto b = network.create_pi("b");
    network.create_po(network.create_and(a, b), "y");
    return network;
}

/// full adder on MAJ/XOR basis
logic_network make_full_adder()
{
    logic_network network{"fa"};
    const auto a = network.create_pi("a");
    const auto b = network.create_pi("b");
    const auto cin = network.create_pi("cin");
    const auto sum = network.create_xor(network.create_xor(a, b), cin);
    const auto carry = network.create_maj(a, b, cin);
    network.create_po(sum, "sum");
    network.create_po(carry, "carry");
    return network;
}

}  // namespace

TEST(TruthTableTest, SizesAndBits)
{
    truth_table tt{3};
    EXPECT_EQ(tt.num_vars(), 3u);
    EXPECT_EQ(tt.num_bits(), 8u);
    EXPECT_EQ(tt.words().size(), 1u);
    tt.set_bit(5, true);
    EXPECT_TRUE(tt.get_bit(5));
    EXPECT_FALSE(tt.get_bit(4));
    EXPECT_EQ(tt.count_ones(), 1u);
}

TEST(TruthTableTest, LargeTableUsesMultipleWords)
{
    truth_table tt{8};
    EXPECT_EQ(tt.num_bits(), 256u);
    EXPECT_EQ(tt.words().size(), 4u);
    tt.set_bit(255, true);
    EXPECT_TRUE(tt.get_bit(255));
    EXPECT_EQ(tt.count_ones(), 1u);
}

TEST(TruthTableTest, OutOfRangeAccessThrows)
{
    truth_table tt{2};
    EXPECT_THROW(static_cast<void>(tt.get_bit(4)), precondition_error);
    EXPECT_THROW(tt.set_bit(4, true), precondition_error);
}

TEST(TruthTableTest, TooManyVariablesRejected)
{
    EXPECT_THROW(truth_table{27}, precondition_error);
}

TEST(SimulationTest, WordSimulationOfAnd)
{
    const auto network = make_and();
    const auto out = simulate_word(network, {0b1100ull, 0b1010ull});
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0] & 0xfull, 0b1000ull);
}

TEST(SimulationTest, WordSimulationChecksArity)
{
    const auto network = make_and();
    EXPECT_THROW(static_cast<void>(simulate_word(network, {0ull})), precondition_error);
}

TEST(SimulationTest, TruthTableOfAnd)
{
    const auto tts = simulate_truth_tables(make_and());
    ASSERT_EQ(tts.size(), 1u);
    EXPECT_EQ(tts[0].to_hex(), "8");
}

TEST(SimulationTest, TruthTableOfFullAdder)
{
    const auto tts = simulate_truth_tables(make_full_adder());
    ASSERT_EQ(tts.size(), 2u);
    // sum = a ^ b ^ cin: odd parity -> 0x96; carry = maj: 0xe8
    EXPECT_EQ(tts[0].to_hex(), "96");
    EXPECT_EQ(tts[1].to_hex(), "e8");
}

TEST(SimulationTest, ConstantsSimulateCorrectly)
{
    logic_network network{"const"};
    const auto a = network.create_pi("a");
    network.create_po(network.create_and(a, network.get_constant(true)), "t");
    network.create_po(network.create_and(a, network.get_constant(false)), "f");
    const auto tts = simulate_truth_tables(network);
    EXPECT_EQ(tts[0].to_hex(), "2");  // identity on 1 var
    EXPECT_EQ(tts[1].to_hex(), "0");
}

TEST(SimulationTest, SevenInputParityUsesMultipleWords)
{
    logic_network network{"parity7"};
    auto acc = network.create_pi("x0");
    for (int i = 1; i < 7; ++i)
    {
        acc = network.create_xor(acc, network.create_pi("x" + std::to_string(i)));
    }
    network.create_po(acc, "p");

    const auto tts = simulate_truth_tables(network);
    ASSERT_EQ(tts.size(), 1u);
    EXPECT_EQ(tts[0].num_bits(), 128u);
    // parity has exactly half the assignments true
    EXPECT_EQ(tts[0].count_ones(), 64u);
    // check a few spot values: parity of the popcount of the index
    for (const std::uint64_t idx : {0ull, 1ull, 3ull, 127ull, 85ull})
    {
        EXPECT_EQ(tts[0].get_bit(idx), (__builtin_popcountll(idx) & 1) != 0) << idx;
    }
}

TEST(SimulationTest, RandomSimulationIsDeterministic)
{
    const auto network = make_full_adder();
    const auto r1 = simulate_random(network, 8, 42);
    const auto r2 = simulate_random(network, 8, 42);
    const auto r3 = simulate_random(network, 8, 43);
    EXPECT_EQ(r1, r2);
    EXPECT_NE(r1, r3);
    EXPECT_EQ(r1.size(), 8u * network.num_pos());
}

// property-style sweep: for every binary gate type, the truth table computed
// through a network must equal the direct gate evaluation
class GateSimulationProperty : public ::testing::TestWithParam<gate_type>
{};

TEST_P(GateSimulationProperty, TruthTableMatchesEvaluateGate)
{
    const auto t = GetParam();
    logic_network network;
    const auto a = network.create_pi("a");
    const auto b = network.create_pi("b");
    const std::vector<logic_network::node> fis{a, b};
    network.create_po(network.create_gate(t, fis), "y");

    const auto tts = simulate_truth_tables(network);
    for (std::uint64_t idx = 0; idx < 4; ++idx)
    {
        const bool av = (idx & 1) != 0;
        const bool bv = (idx & 2) != 0;
        EXPECT_EQ(tts[0].get_bit(idx), evaluate_gate(t, av, bv)) << gate_type_name(t) << " idx=" << idx;
    }
}

INSTANTIATE_TEST_SUITE_P(AllBinaryGates, GateSimulationProperty,
                         ::testing::Values(gate_type::and2, gate_type::nand2, gate_type::or2, gate_type::nor2,
                                           gate_type::xor2, gate_type::xnor2, gate_type::lt2, gate_type::gt2,
                                           gate_type::le2, gate_type::ge2),
                         [](const auto& info) { return std::string{gate_type_name(info.param)}; });
