//
// Crash-recovery property suite: kill the regeneration process at every
// journal append (before and after the fsync), resume, and require the
// resulting store to be byte-identical to an uninterrupted run. Plus unit
// coverage of journal replay (torn tails, malformed lines, checkpoints) and
// the supervised worker-crash containment + recovery path.
//

#include "benchmarks/functions.hpp"
#include "benchmarks/suites.hpp"
#include "common/resilience.hpp"
#include "service/journal.hpp"
#include "service/populate.hpp"
#include "service/store.hpp"

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <unistd.h>
#include <vector>

using namespace mnt;
using namespace mnt::svc;

namespace
{

/// A throwaway directory under the system temp directory.
class temp_dir
{
public:
    explicit temp_dir(const char* name) : path{std::filesystem::temp_directory_path() / name}
    {
        std::filesystem::remove_all(path);
    }

    ~temp_dir()
    {
        std::error_code ec;
        std::filesystem::remove_all(path, ec);
    }

    std::filesystem::path path;
};

/// The one-benchmark workload every recovery test regenerates: small enough
/// to run in milliseconds, rich enough to produce layouts for both libraries.
std::vector<bm::benchmark_entry> tiny_entries()
{
    return {{"Trindade16", "2:1 MUX", &bm::mux21, bm::size_class::tiny}};
}

populate_options deterministic_options()
{
    populate_options options{};
    options.deterministic = true;
    return options;
}

/// Content signature of a store: the exact manifest bytes plus the sorted
/// blob file names (blobs are content-addressed, so names pin the contents).
/// The journal and shard directories are deliberately excluded — they are
/// run-history, not content.
std::string store_signature(const std::filesystem::path& root)
{
    std::string sig = read_file(root / "manifest.json");
    std::vector<std::string> blobs;
    if (std::filesystem::exists(root / "blobs"))
    {
        for (const auto& entry : std::filesystem::directory_iterator{root / "blobs"})
        {
            blobs.push_back(entry.path().filename().string());
        }
    }
    std::sort(blobs.begin(), blobs.end());
    for (const auto& blob : blobs)
    {
        sig += "\n" + blob;
    }
    return sig;
}

/// Regenerates \p root from scratch without interruption (the golden run).
std::string golden_signature(const std::filesystem::path& root)
{
    layout_store store{root};
    const auto report = populate_store(store, tiny_entries(), deterministic_options());
    EXPECT_EQ(report.jobs_crashed, 0u);
    EXPECT_FALSE(report.interrupted);
    return store_signature(root);
}

}  // namespace

// ------------------------------------------------------------ journal units

TEST(RunJournalTest, MissingFileReplaysEmpty)
{
    const auto replay = journal_replay::replay("/nonexistent/journal.jsonl");
    EXPECT_TRUE(replay.done.empty());
    EXPECT_TRUE(replay.in_flight.empty());
    EXPECT_EQ(replay.lines, 0u);
    EXPECT_FALSE(replay.interrupted);
}

TEST(RunJournalTest, RoundTripsThroughReplay)
{
    temp_dir dir{"mnt_journal_roundtrip"};
    std::filesystem::create_directories(dir.path);
    const auto path = dir.path / run_journal::default_filename;
    {
        run_journal journal{path};
        journal.run_start(3, "cfg=1");
        journal.job_start("a");
        journal.job_done("a", 2, 0, 1, {"blob1", "blob2"});
        journal.job_start("b");
        journal.job_crashed("b", "crashed", SIGSEGV, -1, "signal 11");
        journal.job_start("c");
        journal.run_end(2, 1);
    }
    const auto replay = journal_replay::replay(path);
    EXPECT_EQ(replay.done, (std::set<std::string>{"a"}));
    EXPECT_EQ(replay.crashed, (std::set<std::string>{"b"}));
    EXPECT_EQ(replay.in_flight, (std::set<std::string>{"c"}));
    EXPECT_EQ(replay.config, "cfg=1");
    EXPECT_EQ(replay.lines, 7u);
    EXPECT_EQ(replay.malformed_lines, 0u);
    EXPECT_FALSE(replay.interrupted);
}

TEST(RunJournalTest, RerunOfACrashedJobMarksItDone)
{
    temp_dir dir{"mnt_journal_rerun"};
    std::filesystem::create_directories(dir.path);
    const auto path = dir.path / run_journal::default_filename;
    {
        run_journal journal{path};
        journal.job_start("a");
        journal.job_crashed("a", "crashed", SIGSEGV, -1, "signal 11");
        journal.job_start("a");
        journal.job_done("a", 1, 0, 0, {});
    }
    const auto replay = journal_replay::replay(path);
    EXPECT_EQ(replay.done, (std::set<std::string>{"a"}));
    EXPECT_TRUE(replay.crashed.empty());
    EXPECT_TRUE(replay.in_flight.empty());
}

TEST(RunJournalTest, TornFinalLineIsIgnored)
{
    temp_dir dir{"mnt_journal_torn"};
    std::filesystem::create_directories(dir.path);
    const auto path = dir.path / run_journal::default_filename;
    {
        run_journal journal{path};
        journal.run_start(1, "cfg");
        journal.job_start("a");
        journal.job_done("a", 1, 0, 0, {});
    }
    // simulate a kill mid-append: a half-written record with no newline
    {
        std::ofstream torn{path, std::ios::app};
        torn << R"({"event":"job_start","job":"b)";
    }
    const auto replay = journal_replay::replay(path);
    EXPECT_EQ(replay.done, (std::set<std::string>{"a"}));
    EXPECT_TRUE(replay.in_flight.empty());  // the torn record never happened
    EXPECT_EQ(replay.malformed_lines, 0u);  // a torn tail is expected, not corruption
    EXPECT_TRUE(replay.interrupted);        // no run_end
}

TEST(RunJournalTest, MalformedMidFileLinesAreCountedAndSkipped)
{
    temp_dir dir{"mnt_journal_malformed"};
    std::filesystem::create_directories(dir.path);
    const auto path = dir.path / run_journal::default_filename;
    {
        std::ofstream out{path};
        out << R"({"event":"job_start","job":"a","ts":1})" << "\n";
        out << "this is not json\n";
        out << R"({"event":"job_done","job":"a","layouts":1,"failures":0,"completed":0,"results":[],"ts":2})"
            << "\n";
    }
    const auto replay = journal_replay::replay(path);
    EXPECT_EQ(replay.done, (std::set<std::string>{"a"}));
    EXPECT_EQ(replay.malformed_lines, 1u);
}

TEST(RunJournalTest, CheckpointWithoutRunEndMeansInterrupted)
{
    temp_dir dir{"mnt_journal_checkpoint"};
    std::filesystem::create_directories(dir.path);
    const auto path = dir.path / run_journal::default_filename;
    {
        run_journal journal{path};
        journal.run_start(2, "cfg");
        journal.job_start("a");
        journal.job_done("a", 1, 0, 0, {});
        journal.checkpoint("cancelled");
    }
    const auto replay = journal_replay::replay(path);
    EXPECT_TRUE(replay.interrupted);
    EXPECT_EQ(replay.done, (std::set<std::string>{"a"}));
}

// ------------------------------------------------- kill-anywhere resumption

namespace
{

/// Forks a child that regenerates \p root with a SIGKILL scheduled at the
/// \p k-th journal append (\p site selects before/after the fsync). Returns
/// true when the child was killed, false when it finished the whole run
/// (i.e. k exceeds the run's journal record count).
bool run_killed_regeneration(const std::filesystem::path& root, const char* site, const unsigned k)
{
    const pid_t pid = fork();
    if (pid == 0)
    {
        res::fault::configure(std::string{site} + "=" + std::to_string(k));
        try
        {
            layout_store store{root};
            static_cast<void>(populate_store(store, tiny_entries(), deterministic_options()));
        }
        catch (...)
        {
            std::_Exit(99);
        }
        std::_Exit(0);
    }
    int status = 0;
    EXPECT_EQ(waitpid(pid, &status, 0), pid);
    if (WIFSIGNALED(status))
    {
        EXPECT_EQ(WTERMSIG(status), SIGKILL);
        return true;
    }
    EXPECT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0) << "child failed instead of being killed";
    return false;
}

}  // namespace

/// The core recovery property: for EVERY journal append index k, killing the
/// process immediately before or immediately after that append and then
/// resuming yields a store byte-identical to an uninterrupted run. This is
/// exhaustive over all kill points (strictly stronger than sampling them
/// randomly): the journal of this workload has a fixed record count, and the
/// loop brackets every fsync boundary of the run.
TEST(CrashRecoveryTest, KillAtEveryJournalAppendThenResumeIsByteIdentical)
{
    temp_dir golden_dir{"mnt_recovery_golden"};
    const auto golden = golden_signature(golden_dir.path);

    for (const char* site : {"journal.kill_before", "journal.kill_after"})
    {
        for (unsigned k = 1; k <= 16; ++k)
        {
            temp_dir dir{"mnt_recovery_kill"};
            const bool killed = run_killed_regeneration(dir.path, site, k);
            if (!killed)
            {
                // k exceeded the journal record count: the run completed, the
                // matrix is exhausted for this site
                EXPECT_GT(k, 2u) << "run finished before any job completed";
                EXPECT_EQ(store_signature(dir.path), golden);
                break;
            }

            // resume after the kill; the store must converge byte-identically
            layout_store store{dir.path};
            auto options = deterministic_options();
            options.resume = true;
            const auto report = populate_store(store, tiny_entries(), options);
            EXPECT_FALSE(report.interrupted);
            EXPECT_EQ(report.jobs_run + report.jobs_skipped_resume, report.jobs_total)
                << site << "=" << k;
            EXPECT_EQ(store_signature(dir.path), golden) << "divergence after " << site << "=" << k;
        }
    }
}

TEST(CrashRecoveryTest, ResumeOfACompletedRunRunsNothing)
{
    temp_dir dir{"mnt_recovery_noop"};
    const auto golden = golden_signature(dir.path);

    layout_store store{dir.path};
    auto options = deterministic_options();
    options.resume = true;
    const auto report = populate_store(store, tiny_entries(), options);
    EXPECT_EQ(report.jobs_run, 0u);
    EXPECT_EQ(report.jobs_skipped_resume, report.jobs_total);
    EXPECT_EQ(store_signature(dir.path), golden);
}

TEST(CrashRecoveryTest, CancelCheckpointsAndResumes)
{
    temp_dir golden_dir{"mnt_recovery_cancel_golden"};
    const auto golden = golden_signature(golden_dir.path);

    temp_dir dir{"mnt_recovery_cancel"};
    {
        // a pre-raised cancel flag: the run must stop before its first job,
        // write a checkpoint record, and stay resumable
        layout_store store{dir.path};
        auto options = deterministic_options();
        options.cancel = std::make_shared<const std::atomic<bool>>(true);
        const auto report = populate_store(store, tiny_entries(), options);
        EXPECT_TRUE(report.interrupted);
        EXPECT_EQ(report.jobs_run, 0u);
    }
    const auto replay = journal_replay::replay(dir.path / run_journal::default_filename);
    EXPECT_TRUE(replay.interrupted);

    layout_store store{dir.path};
    auto options = deterministic_options();
    options.resume = true;
    const auto report = populate_store(store, tiny_entries(), options);
    EXPECT_FALSE(report.interrupted);
    EXPECT_EQ(store_signature(dir.path), golden);
}

// --------------------------------------------- supervised crash containment

TEST(CrashRecoveryTest, WorkerCrashIsContainedAndRecoveredOnResume)
{
    temp_dir golden_dir{"mnt_recovery_sup_golden"};
    const auto golden = golden_signature(golden_dir.path);

    temp_dir dir{"mnt_recovery_sup"};
    {
        // every worker segfaults: the run must complete anyway, recording one
        // synthesized "(worker)" failure per job instead of dying
        layout_store store{dir.path};
        auto options = deterministic_options();
        options.workers = 1;
        options.worker_command = {MNT_WORKER_PROBE, "segv"};
        const auto report = populate_store(store, tiny_entries(), options);
        EXPECT_EQ(report.jobs_crashed, report.jobs_total);
        EXPECT_EQ(report.jobs_crashed, 2u);
        EXPECT_FALSE(report.interrupted);
        EXPECT_EQ(store.num_failures(), 2u);
        EXPECT_NE(read_file(dir.path / "manifest.json").find(worker_combination), std::string::npos);
    }

    // resume with a working worker: the crashed jobs re-run, the synthesized
    // failure records are cleared, and the store converges on the golden bytes
    layout_store store{dir.path};
    auto options = deterministic_options();
    options.resume = true;
    options.workers = 2;
    options.worker_command = {MNT_WORKER_PROBE, "job", dir.path.string()};
    const auto report = populate_store(store, tiny_entries(), options);
    EXPECT_EQ(report.jobs_crashed, 0u);
    EXPECT_EQ(report.jobs_run, 2u);
    EXPECT_EQ(store.num_failures(), 0u);
    EXPECT_EQ(store_signature(dir.path), golden);
}

TEST(CrashRecoveryTest, SupervisedRunMatchesInProcessRunByteForByte)
{
    temp_dir golden_dir{"mnt_recovery_inproc"};
    const auto golden = golden_signature(golden_dir.path);

    temp_dir dir{"mnt_recovery_workers"};
    layout_store store{dir.path};
    auto options = deterministic_options();
    options.workers = 2;
    options.worker_command = {MNT_WORKER_PROBE, "job", dir.path.string()};
    const auto report = populate_store(store, tiny_entries(), options);
    EXPECT_EQ(report.jobs_crashed, 0u);
    EXPECT_EQ(report.jobs_run, report.jobs_total);
    EXPECT_EQ(store_signature(dir.path), golden);
}
