/// \file test_properties_simd.cpp
/// \brief Differential property suites for the SIMD row kernels: every
///        vectorized path (gate-row evaluation, mismatch scan, row-batched
///        network simulation, row-batched wave simulation, both equivalence
///        checkers) must be bit-identical to the scalar reference — same
///        words, same verdicts, same first-failure reason strings.
///
/// On hosts without AVX2 the cross-backend suites skip (there is only one
/// backend to compare); the batched-vs-per-word suites always run, since the
/// batching itself must be lossless regardless of the active kernels.

#include "proptest_gtest.hpp"

#include "common/resilience.hpp"
#include "common/types.hpp"
#include "io/verilog_writer.hpp"
#include "network/gate_type.hpp"
#include "network/simulation.hpp"
#include "physical_design/ortho.hpp"
#include "testing/generators.hpp"
#include "testing/oracles.hpp"
#include "testing/shrink.hpp"
#include "verification/equivalence.hpp"
#include "verification/simd/simd.hpp"
#include "verification/wave_simulation.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

namespace
{

using namespace mnt;

/// Restores the default (environment-resolved) backend when a test scope
/// that forced one via set_backend unwinds.
struct backend_guard
{
    backend_guard() = default;
    backend_guard(const backend_guard&) = delete;
    backend_guard& operator=(const backend_guard&) = delete;
    ~backend_guard()
    {
        simd::reset_backend();
    }
};

/// The backends available on this host (scalar always; avx2 when supported).
std::vector<simd::backend> available_backends()
{
    std::vector<simd::backend> backends{simd::backend::scalar};
    if (simd::avx2_supported())
    {
        backends.push_back(simd::backend::avx2);
    }
    return backends;
}

std::string hex_words(const std::vector<std::uint64_t>& words)
{
    std::ostringstream out;
    out << std::hex;
    for (const auto w : words)
    {
        out << "0x" << w << " ";
    }
    return out.str();
}

// --------------------------------------------------------------- gate_row

/// One randomized gate-row case: a gate type and three fanin rows.
struct gate_row_case
{
    ntk::gate_type type{ntk::gate_type::and2};
    std::vector<std::uint64_t> a;
    std::vector<std::uint64_t> b;
    std::vector<std::uint64_t> c;
};

gate_row_case random_gate_row_case(pbt::rng& random)
{
    gate_row_case value{};
    value.type = static_cast<ntk::gate_type>(random.below(ntk::num_gate_types));
    // cover the empty row, sub-vector-width rows, vector tails and long rows
    const auto n = static_cast<std::size_t>(random.below(66));
    value.a.resize(n);
    value.b.resize(n);
    value.c.resize(n);
    for (std::size_t i = 0; i < n; ++i)
    {
        value.a[i] = random.next();
        value.b[i] = random.next();
        value.c[i] = random.next();
    }
    return value;
}

TEST(SimdGateRow, Avx2MatchesScalarBitForBit)
{
    if (!simd::avx2_supported())
    {
        GTEST_SKIP() << "AVX2 not available on this host";
    }
    const auto config = pbt::current_test_config("simd.gate_row.differential", 300);
    pbt::property<gate_row_case> prop{};
    prop.generate = &random_gate_row_case;
    prop.check = [](const gate_row_case& value, const res::deadline_clock&)
    {
        const auto scalar = simd::kernels_for(simd::backend::scalar);
        const auto avx2 = simd::kernels_for(simd::backend::avx2);
        const auto n = value.a.size();
        std::vector<std::uint64_t> expected(n, 0xa5a5a5a5a5a5a5a5ull);
        std::vector<std::uint64_t> actual(n, 0x5a5a5a5a5a5a5a5aull);
        scalar.gate_row(value.type, expected.data(), value.a.data(), value.b.data(), value.c.data(), n);
        avx2.gate_row(value.type, actual.data(), value.a.data(), value.b.data(), value.c.data(), n);
        if (expected != actual)
        {
            return pbt::oracle_result::fail(std::string{"gate_row diverges for "} +
                                            std::string{ntk::gate_type_name(value.type)});
        }
        // the documented dst==a aliasing must hold on both backends
        auto alias_scalar = value.a;
        auto alias_avx2 = value.a;
        scalar.gate_row(value.type, alias_scalar.data(), alias_scalar.data(), value.b.data(), value.c.data(), n);
        avx2.gate_row(value.type, alias_avx2.data(), alias_avx2.data(), value.b.data(), value.c.data(), n);
        if (alias_scalar != expected || alias_avx2 != expected)
        {
            return pbt::oracle_result::fail(std::string{"aliased gate_row diverges for "} +
                                            std::string{ntk::gate_type_name(value.type)});
        }
        return pbt::oracle_result::pass();
    };
    prop.shrink = [](gate_row_case value, const std::function<bool(const gate_row_case&)>& still_fails)
    {
        // ddmin over the row length: shrink all three rows in lockstep
        std::vector<std::size_t> indexes(value.a.size());
        for (std::size_t i = 0; i < indexes.size(); ++i)
        {
            indexes[i] = i;
        }
        const auto kept = pbt::shrink_sequence<std::size_t>(
            std::move(indexes),
            [&](const std::vector<std::size_t>& candidate)
            {
                gate_row_case probe{};
                probe.type = value.type;
                for (const auto i : candidate)
                {
                    probe.a.push_back(value.a[i]);
                    probe.b.push_back(value.b[i]);
                    probe.c.push_back(value.c[i]);
                }
                return still_fails(probe);
            },
            200);
        gate_row_case shrunk{};
        shrunk.type = value.type;
        for (const auto i : kept)
        {
            shrunk.a.push_back(value.a[i]);
            shrunk.b.push_back(value.b[i]);
            shrunk.c.push_back(value.c[i]);
        }
        return still_fails(shrunk) ? shrunk : value;
    };
    prop.show = [](const gate_row_case& value)
    {
        return std::string{ntk::gate_type_name(value.type)} + " n=" + std::to_string(value.a.size()) +
               "\na: " + hex_words(value.a) + "\nb: " + hex_words(value.b) + "\nc: " + hex_words(value.c);
    };
    MNT_RUN_PROPERTY(config, prop);
}

// --------------------------------------------------------------- mismatch

TEST(SimdMismatch, Avx2AgreesWithScalarOnFirstDivergence)
{
    if (!simd::avx2_supported())
    {
        GTEST_SKIP() << "AVX2 not available on this host";
    }
    const auto config = pbt::current_test_config("simd.mismatch.differential", 300);
    using rows = std::pair<std::vector<std::uint64_t>, std::vector<std::uint64_t>>;
    pbt::property<rows> prop{};
    prop.generate = [](pbt::rng& random)
    {
        const auto n = static_cast<std::size_t>(random.below(66));
        rows value{};
        value.first.resize(n);
        for (auto& w : value.first)
        {
            w = random.next();
        }
        value.second = value.first;
        // half the cases plant 1..3 divergences at random positions; the
        // rest stay equal (the mismatch == n path)
        if (n > 0 && random.chance(1, 2))
        {
            const auto flips = random.range(1, 3);
            for (std::uint64_t f = 0; f < flips; ++f)
            {
                value.second[random.below(n)] ^= 1ull << random.below(64);
            }
        }
        return value;
    };
    prop.check = [](const rows& value, const res::deadline_clock&)
    {
        const auto scalar = simd::kernels_for(simd::backend::scalar);
        const auto avx2 = simd::kernels_for(simd::backend::avx2);
        const auto n = value.first.size();
        const auto expected = scalar.mismatch(value.first.data(), value.second.data(), n);
        const auto actual = avx2.mismatch(value.first.data(), value.second.data(), n);
        if (expected != actual)
        {
            return pbt::oracle_result::fail("mismatch index diverges: scalar=" + std::to_string(expected) +
                                            " avx2=" + std::to_string(actual));
        }
        return pbt::oracle_result::pass();
    };
    prop.show = [](const rows& value)
    { return "a: " + hex_words(value.first) + "\nb: " + hex_words(value.second); };
    MNT_RUN_PROPERTY(config, prop);
}

// ----------------------------------------------------------- simulate_rows

/// A network plus a batch of random PI input rows.
struct rows_case
{
    ntk::logic_network network;
    std::vector<std::uint64_t> pi_rows;
    std::size_t n{0};
};

TEST(SimdSimulateRows, MatchesPerWordSimulationOnEveryBackend)
{
    const auto config = pbt::current_test_config("simd.simulate_rows.differential", 200);
    pbt::property<rows_case> prop{};
    prop.generate = [](pbt::rng& random)
    {
        rows_case value{};
        value.network = pbt::random_network(random);
        value.n = static_cast<std::size_t>(random.range(1, 9));
        value.pi_rows.resize(value.network.num_pis() * value.n);
        for (auto& w : value.pi_rows)
        {
            w = random.next();
        }
        return value;
    };
    prop.check = [](const rows_case& value, const res::deadline_clock&)
    {
        // per-word reference: one simulate_word call per word column
        const auto pis = value.network.num_pis();
        std::vector<std::vector<std::uint64_t>> reference(value.n);
        for (std::size_t i = 0; i < value.n; ++i)
        {
            std::vector<std::uint64_t> pi_words(pis);
            for (std::size_t p = 0; p < pis; ++p)
            {
                pi_words[p] = value.pi_rows[p * value.n + i];
            }
            reference[i] = ntk::simulate_word(value.network, pi_words);
        }
        const backend_guard guard{};
        for (const auto backend : available_backends())
        {
            simd::set_backend(backend);
            const auto batched = ntk::simulate_rows(value.network, value.pi_rows, value.n);
            const auto pos = value.network.num_pos();
            if (batched.size() != pos * value.n)
            {
                return pbt::oracle_result::fail(std::string{"wrong result size on "} +
                                                std::string{simd::backend_name(backend)});
            }
            for (std::size_t o = 0; o < pos; ++o)
            {
                for (std::size_t i = 0; i < value.n; ++i)
                {
                    if (batched[o * value.n + i] != reference[i][o])
                    {
                        return pbt::oracle_result::fail(
                            "PO " + std::to_string(o) + " word " + std::to_string(i) + " diverges on " +
                            std::string{simd::backend_name(backend)});
                    }
                }
            }
        }
        return pbt::oracle_result::pass();
    };
    prop.shrink = [](rows_case value, const std::function<bool(const rows_case&)>& still_fails)
    {
        value.network = pbt::shrink_network(std::move(value.network),
                                            [&](const ntk::logic_network& candidate)
                                            {
                                                rows_case probe{};
                                                probe.network = candidate;
                                                probe.n = value.n;
                                                probe.pi_rows.assign(candidate.num_pis() * value.n, 0);
                                                const auto limit =
                                                    std::min(probe.pi_rows.size(), value.pi_rows.size());
                                                for (std::size_t i = 0; i < limit; ++i)
                                                {
                                                    probe.pi_rows[i] = value.pi_rows[i];
                                                }
                                                return still_fails(probe);
                                            });
        value.pi_rows.resize(value.network.num_pis() * value.n, 0);
        return value;
    };
    prop.show = [](const rows_case& value)
    {
        return "n=" + std::to_string(value.n) + " rows: " + hex_words(value.pi_rows) + "\n" +
               io::write_verilog_string(value.network, io::verilog_style::primitives);
    };
    MNT_RUN_PROPERTY(config, prop);
}

// ------------------------------------------------------ wave_simulate_block

TEST(SimdWaveBlock, MatchesPerWordWaveSimulationOnEveryBackend)
{
    const auto config = pbt::current_test_config("simd.wave_block.differential", 100);
    pbt::property<rows_case> prop{};
    prop.generate = [](pbt::rng& random)
    {
        rows_case value{};
        pbt::network_spec spec{};
        spec.max_pis = 4;
        spec.max_gates = 10;
        value.network = pbt::random_network(random, spec);
        value.n = static_cast<std::size_t>(random.range(1, 5));
        value.pi_rows.resize(value.network.num_pis() * value.n);
        for (auto& w : value.pi_rows)
        {
            w = random.next();
        }
        return value;
    };
    prop.check = [](const rows_case& value, const res::deadline_clock& deadline)
    {
        if (pbt::has_constant_po(value.network))
        {
            return pbt::oracle_result::pass();  // shrink probes may fold
        }
        pd::ortho_params params{};
        params.deadline = deadline;
        const auto layout = pd::ortho(value.network, params);
        const auto pis = layout.num_pis();
        if (value.pi_rows.size() != pis * value.n)
        {
            return pbt::oracle_result::pass();  // shrink probe changed the PI count
        }

        // per-word reference: one wave_simulate run per word column
        std::vector<ver::wave_result> reference(value.n);
        bool all_stable = true;
        std::size_t max_settle = 0;
        for (std::size_t i = 0; i < value.n; ++i)
        {
            std::vector<std::uint64_t> pi_words(pis);
            for (std::size_t p = 0; p < pis; ++p)
            {
                pi_words[p] = value.pi_rows[p * value.n + i];
            }
            reference[i] = ver::wave_simulate(layout, pi_words);
            all_stable = all_stable && reference[i].stabilized;
            max_settle = std::max(max_settle, reference[i].settle_ticks);
        }

        const backend_guard guard{};
        for (const auto backend : available_backends())
        {
            simd::set_backend(backend);
            const auto block = ver::wave_simulate_block(layout, value.pi_rows, value.n);
            if (block.stabilized != all_stable)
            {
                return pbt::oracle_result::fail(std::string{"stabilized flag diverges on "} +
                                                std::string{simd::backend_name(backend)});
            }
            if (block.po_names != reference.front().po_names)
            {
                return pbt::oracle_result::fail(std::string{"PO name order diverges on "} +
                                                std::string{simd::backend_name(backend)});
            }
            if (all_stable && block.settle_ticks != max_settle)
            {
                return pbt::oracle_result::fail(
                    "settle_ticks diverges on " + std::string{simd::backend_name(backend)} + ": block=" +
                    std::to_string(block.settle_ticks) + " max(per-word)=" + std::to_string(max_settle));
            }
            const auto pos = block.po_names.size();
            for (std::size_t o = 0; o < pos && all_stable; ++o)
            {
                for (std::size_t i = 0; i < value.n; ++i)
                {
                    if (block.po_rows[o * value.n + i] != reference[i].po_words[o])
                    {
                        return pbt::oracle_result::fail("PO '" + block.po_names[o] + "' word " +
                                                        std::to_string(i) + " diverges on " +
                                                        std::string{simd::backend_name(backend)});
                    }
                }
            }
        }
        return pbt::oracle_result::pass();
    };
    prop.shrink = [](rows_case value, const std::function<bool(const rows_case&)>& still_fails)
    {
        value.network = pbt::shrink_network(std::move(value.network),
                                            [&](const ntk::logic_network& candidate)
                                            {
                                                rows_case probe{};
                                                probe.network = candidate;
                                                probe.n = value.n;
                                                probe.pi_rows.assign(candidate.num_pis() * value.n, 0);
                                                const auto limit =
                                                    std::min(probe.pi_rows.size(), value.pi_rows.size());
                                                for (std::size_t i = 0; i < limit; ++i)
                                                {
                                                    probe.pi_rows[i] = value.pi_rows[i];
                                                }
                                                return still_fails(probe);
                                            },
                                            100);
        value.pi_rows.resize(value.network.num_pis() * value.n, 0);
        return value;
    };
    prop.show = [](const rows_case& value)
    {
        return "n=" + std::to_string(value.n) + " rows: " + hex_words(value.pi_rows) + "\n" +
               io::write_verilog_string(value.network, io::verilog_style::primitives);
    };
    MNT_RUN_PROPERTY(config, prop);
}

// ------------------------------------------------- end-to-end equivalence

/// A specification network and a candidate network (sometimes a completely
/// different function, so the mismatch reporting path is exercised too).
struct equivalence_case
{
    ntk::logic_network spec;
    ntk::logic_network candidate;
};

TEST(SimdEquivalence, VerdictAndReasonIdenticalAcrossBackends)
{
    if (!simd::avx2_supported())
    {
        GTEST_SKIP() << "AVX2 not available on this host";
    }
    const auto config = pbt::current_test_config("simd.equivalence.differential", 200);
    pbt::property<equivalence_case> prop{};
    prop.generate = [](pbt::rng& random)
    {
        equivalence_case value{};
        value.spec = pbt::random_network(random);
        if (random.chance(1, 2))
        {
            value.candidate = value.spec;  // the equivalent path
        }
        else
        {
            // an independent network: usually inequivalent, sometimes with
            // mismatched interfaces — every reporting branch must agree
            value.candidate = pbt::random_network(random);
        }
        return value;
    };
    prop.check = [](const equivalence_case& value, const res::deadline_clock&)
    {
        const backend_guard guard{};
        simd::set_backend(simd::backend::scalar);
        const auto expected = ver::check_equivalence(value.spec, value.candidate);
        simd::set_backend(simd::backend::avx2);
        const auto actual = ver::check_equivalence(value.spec, value.candidate);
        if (expected.equivalent != actual.equivalent || expected.formal != actual.formal ||
            expected.reason != actual.reason)
        {
            return pbt::oracle_result::fail("check_equivalence diverges: scalar={" +
                                            std::to_string(expected.equivalent) + ", '" + expected.reason +
                                            "'} avx2={" + std::to_string(actual.equivalent) + ", '" +
                                            actual.reason + "'}");
        }
        return pbt::oracle_result::pass();
    };
    prop.show = [](const equivalence_case& value)
    {
        return io::write_verilog_string(value.spec, io::verilog_style::primitives) + "\n-- candidate --\n" +
               io::write_verilog_string(value.candidate, io::verilog_style::primitives);
    };
    MNT_RUN_PROPERTY(config, prop);
}

TEST(SimdWaveEquivalence, VerdictAndReasonIdenticalAcrossBackends)
{
    if (!simd::avx2_supported())
    {
        GTEST_SKIP() << "AVX2 not available on this host";
    }
    const auto config = pbt::current_test_config("simd.wave_equivalence.differential", 100);
    pbt::property<equivalence_case> prop{};
    prop.generate = [](pbt::rng& random)
    {
        equivalence_case value{};
        pbt::network_spec spec{};
        spec.max_pis = 4;
        spec.max_gates = 10;
        value.spec = pbt::random_network(random, spec);
        // half the cases check the layout against a different function to
        // exercise the steady-state mismatch reporting path
        value.candidate = random.chance(1, 2) ? value.spec : pbt::random_network(random, spec);
        return value;
    };
    prop.check = [](const equivalence_case& value, const res::deadline_clock& deadline)
    {
        if (pbt::has_constant_po(value.candidate))
        {
            return pbt::oracle_result::pass();
        }
        pd::ortho_params params{};
        params.deadline = deadline;
        const auto layout = pd::ortho(value.candidate, params);
        const backend_guard guard{};
        simd::set_backend(simd::backend::scalar);
        const auto expected = ver::check_wave_equivalence(value.spec, layout);
        simd::set_backend(simd::backend::avx2);
        const auto actual = ver::check_wave_equivalence(value.spec, layout);
        if (expected.equivalent != actual.equivalent || expected.stabilized != actual.stabilized ||
            expected.reason != actual.reason)
        {
            return pbt::oracle_result::fail("check_wave_equivalence diverges: scalar={" +
                                            std::to_string(expected.equivalent) + ", '" + expected.reason +
                                            "'} avx2={" + std::to_string(actual.equivalent) + ", '" +
                                            actual.reason + "'}");
        }
        return pbt::oracle_result::pass();
    };
    prop.show = [](const equivalence_case& value)
    {
        return io::write_verilog_string(value.spec, io::verilog_style::primitives) + "\n-- candidate --\n" +
               io::write_verilog_string(value.candidate, io::verilog_style::primitives);
    };
    MNT_RUN_PROPERTY(config, prop);
}

// ------------------------------------------------------------- dispatcher

TEST(SimdDispatch, BackendSelectionContract)
{
    const backend_guard guard{};
    EXPECT_EQ(simd::backend_name(simd::backend::scalar), std::string_view{"scalar"});
    EXPECT_EQ(simd::backend_name(simd::backend::avx2), std::string_view{"avx2"});

    simd::set_backend(simd::backend::scalar);
    EXPECT_EQ(simd::active_backend(), simd::backend::scalar);

    if (simd::avx2_supported())
    {
        simd::set_backend(simd::backend::avx2);
        EXPECT_EQ(simd::active_backend(), simd::backend::avx2);
    }
    else
    {
        // forcing an unsupported backend is a caller error
        EXPECT_THROW(simd::set_backend(simd::backend::avx2), precondition_error);
    }

    simd::reset_backend();
    const auto resolved = simd::active_backend();
    EXPECT_TRUE(resolved == simd::backend::scalar || simd::avx2_supported());
}

}  // namespace
