#include "service/query.hpp"

#include "core/filters.hpp"
#include "layout/clocking_scheme.hpp"
#include "layout/gate_level_layout.hpp"
#include "service/json.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

using namespace mnt;
using namespace mnt::svc;

namespace
{

/// Builds a randomized catalog of blank layouts: provenance facets drawn
/// from small pools, dimensions randomized so area/tie-break paths are all
/// exercised. Blank layouts are enough — filters and the engine only look
/// at provenance and derived metrics, never at gates.
cat::catalog make_random_catalog(const std::uint32_t seed, const std::size_t count)
{
    static const std::vector<std::string> sets{"Trindade16", "Fontes18", "ISCAS85"};
    static const std::vector<std::string> names{"mux21", "xor2", "par_gen", "c17"};
    static const std::vector<lyt::clocking_kind> clockings{lyt::clocking_kind::twoddwave, lyt::clocking_kind::use,
                                                           lyt::clocking_kind::res};
    static const std::vector<std::string> algorithms{"exact", "ortho", "NPR"};
    static const std::vector<std::string> opts{"InOrd (SDN)", "45°", "PLO"};

    std::mt19937 rng{seed};
    const auto pick = [&rng](const auto& pool) { return pool[rng() % pool.size()]; };

    cat::catalog catalog;
    for (std::size_t i = 0; i < count; ++i)
    {
        const auto kind = pick(clockings);
        cat::layout_record record{};
        record.benchmark_set = pick(sets);
        record.benchmark_name = pick(names);
        record.library = (rng() % 2 == 0) ? cat::gate_library_kind::qca_one : cat::gate_library_kind::bestagon;
        record.algorithm = pick(algorithms);
        for (const auto& opt : opts)
        {
            if (rng() % 3 == 0)
            {
                record.optimizations.push_back(opt);
            }
        }
        record.runtime = static_cast<double>(rng() % 1000) / 64.0;
        // unique layout name => unique .fgl serialization => unique id
        record.layout =
            lyt::gate_level_layout{"rnd" + std::to_string(i), lyt::layout_topology::cartesian,
                                   lyt::clocking_scheme::create(kind), static_cast<std::uint32_t>(1 + rng() % 6),
                                   static_cast<std::uint32_t>(1 + rng() % 6)};
        record.clocking = record.layout.clocking().name();
        catalog.add_layout(std::move(record));
    }
    return catalog;
}

/// Draws a random filter query over the same facet pools.
cat::filter_query make_random_filter(std::mt19937& rng)
{
    static const std::vector<std::string> sets{"Trindade16", "Fontes18", "ISCAS85", "absent"};
    static const std::vector<std::string> names{"mux21", "xor2", "par_gen", "c17"};
    static const std::vector<std::string> clockings{"2DDWave", "USE", "RES"};
    static const std::vector<std::string> algorithms{"exact", "ortho", "NPR"};
    static const std::vector<std::string> opts{"InOrd (SDN)", "45°", "PLO"};
    const auto pick = [&rng](const auto& pool) { return pool[rng() % pool.size()]; };

    cat::filter_query query{};
    if (rng() % 3 == 0)
    {
        query.benchmark_set = pick(sets);
    }
    if (rng() % 4 == 0)
    {
        query.benchmark_name = pick(names);
    }
    if (rng() % 3 == 0)
    {
        query.libraries.push_back((rng() % 2 == 0) ? cat::gate_library_kind::qca_one :
                                                     cat::gate_library_kind::bestagon);
    }
    while (rng() % 3 == 0)
    {
        query.clockings.push_back(pick(clockings));
    }
    while (rng() % 4 == 0)
    {
        query.algorithms.push_back(pick(algorithms));
    }
    while (rng() % 4 == 0)
    {
        query.required_optimizations.push_back(pick(opts));
    }
    query.best_only = (rng() % 4 == 0);
    return query;
}

}  // namespace

// -------------------------------------------------------------------- parity

TEST(QueryEngineTest, FilterMatchesApplyFilterOnRandomizedCatalog)
{
    const auto catalog = make_random_catalog(7u, 160);
    const query_engine engine{catalog};

    std::mt19937 rng{99u};
    for (int round = 0; round < 200; ++round)
    {
        const auto query = make_random_filter(rng);
        const auto expected = cat::apply_filter(catalog, query);
        const auto actual = engine.filter(query);
        ASSERT_EQ(expected, actual) << "round " << round;  // pointer-identical, same order
    }
}

TEST(QueryEngineTest, EmptyFilterReturnsWholeCatalogInCanonicalOrder)
{
    const auto catalog = make_random_catalog(3u, 60);
    const query_engine engine{catalog};
    const auto all = engine.filter({});
    EXPECT_EQ(all.size(), catalog.num_layouts());
    EXPECT_EQ(all, cat::apply_filter(catalog, {}));
    EXPECT_TRUE(std::is_sorted(all.begin(), all.end(),
                               [](const auto* a, const auto* b) { return cat::canonical_layout_less(*a, *b); }));
    EXPECT_GT(engine.num_index_terms(), 0u);
}

// ----------------------------------------------------------------------- ids

TEST(QueryEngineTest, IdLookupRoundTrips)
{
    const auto catalog = make_random_catalog(11u, 40);
    const query_engine engine{catalog};
    for (std::size_t i = 0; i < catalog.num_layouts(); ++i)
    {
        const auto& id = engine.id_of(i);
        EXPECT_EQ(id.size(), 32u);
        const auto index = engine.index_of(id);
        ASSERT_TRUE(index.has_value());
        EXPECT_EQ(*index, i);
    }
    EXPECT_FALSE(engine.index_of("0000000000000000").has_value());
}

TEST(QueryEngineTest, SuppliedIdsAreUsedVerbatim)
{
    const auto catalog = make_random_catalog(5u, 4);
    std::vector<std::string> ids{"aaaaaaaaaaaaaaaa", "bbbbbbbbbbbbbbbb", "cccccccccccccccc", "dddddddddddddddd"};
    const query_engine engine{catalog, ids};
    EXPECT_EQ(engine.id_of(2), "cccccccccccccccc");
    EXPECT_EQ(engine.index_of("bbbbbbbbbbbbbbbb"), std::optional<std::size_t>{1});
}

// ---------------------------------------------------------------- pagination

TEST(QueryEngineTest, PaginationCoversSelectionWithoutOverlap)
{
    const auto catalog = make_random_catalog(21u, 90);
    const query_engine engine{catalog};

    page_query query{};
    query.limit = 7;
    std::vector<std::string> collected;
    for (std::size_t offset = 0;; offset += query.limit)
    {
        query.offset = offset;
        const auto page = engine.run(query);
        EXPECT_EQ(page.total, catalog.num_layouts());
        EXPECT_EQ(page.offset, offset);
        ASSERT_EQ(page.rows.size(), page.ids.size());
        collected.insert(collected.end(), page.ids.begin(), page.ids.end());
        if (page.rows.size() < query.limit)
        {
            break;
        }
    }
    EXPECT_EQ(collected.size(), catalog.num_layouts());
    std::sort(collected.begin(), collected.end());
    EXPECT_EQ(std::unique(collected.begin(), collected.end()), collected.end());
}

TEST(QueryEngineTest, LimitZeroReturnsMetadataOnly)
{
    const auto catalog = make_random_catalog(2u, 30);
    const query_engine engine{catalog};
    page_query query{};
    query.limit = 0;
    const auto page = engine.run(query);
    EXPECT_EQ(page.total, 30u);
    EXPECT_TRUE(page.rows.empty());
    EXPECT_FALSE(page.facets.per_library.empty());
}

TEST(QueryEngineTest, OffsetPastEndYieldsEmptyPage)
{
    const auto catalog = make_random_catalog(2u, 10);
    const query_engine engine{catalog};
    page_query query{};
    query.offset = 1000;
    const auto page = engine.run(query);
    EXPECT_EQ(page.total, 10u);
    EXPECT_TRUE(page.rows.empty());
}

// ------------------------------------------------------------------- sorting

TEST(QueryEngineTest, SortOrdersAreRespectedAndDeterministic)
{
    const auto catalog = make_random_catalog(13u, 80);
    const query_engine engine{catalog};

    page_query query{};
    query.limit = page_query::max_limit;

    query.sort = sort_key::area;
    query.order = sort_order::ascending;
    const auto asc = engine.run(query);
    EXPECT_TRUE(std::is_sorted(asc.rows.begin(), asc.rows.end(),
                               [](const auto* a, const auto* b) { return a->area < b->area; }));

    query.order = sort_order::descending;
    const auto desc = engine.run(query);
    EXPECT_TRUE(std::is_sorted(desc.rows.begin(), desc.rows.end(),
                               [](const auto* a, const auto* b) { return a->area > b->area; }));

    query.sort = sort_key::runtime;
    const auto runtime_page = engine.run(query);
    EXPECT_TRUE(std::is_sorted(runtime_page.rows.begin(), runtime_page.rows.end(),
                               [](const auto* a, const auto* b) { return a->runtime > b->runtime; }));

    // same query twice => byte-identical page
    EXPECT_EQ(page_json_string(engine.run(query)), page_json_string(runtime_page));
}

// ------------------------------------------------------------ wire format in

TEST(PageQueryTest, FromQueryStringParsesEveryKey)
{
    const auto query = page_query::from_query_string(
        "set=Trindade16&name=2%3A1%20MUX&library=QCA%20ONE,Bestagon&clocking=USE&algorithm=exact,ortho"
        "&opt=PLO&best=1&sort=benchmark&order=desc&offset=5&limit=10&facets=0");
    EXPECT_EQ(query.filter.benchmark_set, std::optional<std::string>{"Trindade16"});
    EXPECT_EQ(query.filter.benchmark_name, std::optional<std::string>{"2:1 MUX"});
    ASSERT_EQ(query.filter.libraries.size(), 2u);
    EXPECT_EQ(query.filter.libraries[0], cat::gate_library_kind::qca_one);
    EXPECT_EQ(query.filter.libraries[1], cat::gate_library_kind::bestagon);
    EXPECT_EQ(query.filter.clockings, (std::vector<std::string>{"USE"}));
    EXPECT_EQ(query.filter.algorithms, (std::vector<std::string>{"exact", "ortho"}));
    EXPECT_EQ(query.filter.required_optimizations, (std::vector<std::string>{"PLO"}));
    EXPECT_TRUE(query.filter.best_only);
    EXPECT_EQ(query.sort, sort_key::benchmark);
    EXPECT_EQ(query.order, sort_order::descending);
    EXPECT_EQ(query.offset, 5u);
    EXPECT_EQ(query.limit, 10u);
    EXPECT_FALSE(query.include_facets);
}

TEST(PageQueryTest, FromQueryStringRejectsUnknownAndMalformed)
{
    EXPECT_THROW(static_cast<void>(page_query::from_query_string("unknown=1")), mnt_error);
    EXPECT_THROW(static_cast<void>(page_query::from_query_string("library=cmos")), mnt_error);
    EXPECT_THROW(static_cast<void>(page_query::from_query_string("sort=color")), mnt_error);
    EXPECT_THROW(static_cast<void>(page_query::from_query_string("offset=abc")), mnt_error);
    EXPECT_THROW(static_cast<void>(page_query::from_query_string("best=maybe")), mnt_error);
    EXPECT_THROW(static_cast<void>(page_query::from_query_string("set=%zz")), mnt_error);
    EXPECT_THROW(static_cast<void>(page_query::from_query_string("set=%2")), mnt_error);
}

TEST(PageQueryTest, FromJsonParsesAndRejectsUnknownMembers)
{
    const auto query = page_query::from_json(json_value::parse(
        R"({"set": "Fontes18", "libraries": ["Bestagon"], "optimizations": ["PLO", "45°"],
            "best_only": true, "sort": "runtime", "order": "desc", "offset": 2, "limit": 3, "facets": false})"));
    EXPECT_EQ(query.filter.benchmark_set, std::optional<std::string>{"Fontes18"});
    EXPECT_EQ(query.filter.libraries, (std::vector<cat::gate_library_kind>{cat::gate_library_kind::bestagon}));
    EXPECT_EQ(query.filter.required_optimizations, (std::vector<std::string>{"PLO", "45°"}));
    EXPECT_TRUE(query.filter.best_only);
    EXPECT_EQ(query.sort, sort_key::runtime);
    EXPECT_EQ(query.order, sort_order::descending);
    EXPECT_EQ(query.offset, 2u);
    EXPECT_EQ(query.limit, 3u);
    EXPECT_FALSE(query.include_facets);

    EXPECT_THROW(static_cast<void>(page_query::from_json(json_value::parse(R"({"colour": "red"})"))), mnt_error);
}

TEST(PageQueryTest, ParseQueryStringDecodesInOrder)
{
    const auto pairs = parse_query_string("a=1&b=x%20y&c=1+2&flag");
    ASSERT_EQ(pairs.size(), 4u);
    EXPECT_EQ(pairs[0], (std::pair<std::string, std::string>{"a", "1"}));
    EXPECT_EQ(pairs[1], (std::pair<std::string, std::string>{"b", "x y"}));
    EXPECT_EQ(pairs[2], (std::pair<std::string, std::string>{"c", "1 2"}));
    EXPECT_EQ(pairs[3], (std::pair<std::string, std::string>{"flag", ""}));
}

// ----------------------------------------------------------------- cache key

TEST(PageQueryTest, CacheKeyNormalizesEquivalentQueries)
{
    page_query a{};
    a.filter.clockings = {"USE", "RES", "USE"};
    a.filter.algorithms = {"ortho", "exact"};

    page_query b{};
    b.filter.clockings = {"RES", "USE"};
    b.filter.algorithms = {"exact", "ortho"};

    EXPECT_EQ(a.cache_key(), b.cache_key());

    page_query c = b;
    c.offset = 10;
    EXPECT_NE(b.cache_key(), c.cache_key());
    page_query d = b;
    d.filter.best_only = true;
    EXPECT_NE(b.cache_key(), d.cache_key());
}

// ----------------------------------------------------------- wire format out

TEST(PageToJsonTest, EmitsDocumentedShape)
{
    const auto catalog = make_random_catalog(17u, 25);
    const query_engine engine{catalog};
    page_query query{};
    query.limit = 10;
    const auto page = engine.run(query);
    const auto document = json_value::parse(page_json_string(page));

    EXPECT_EQ(document.at("total").as_u64(), 25u);
    EXPECT_EQ(document.at("offset").as_u64(), 0u);
    EXPECT_EQ(document.at("count").as_u64(), 10u);
    const auto& results = document.at("results").as_array();
    ASSERT_EQ(results.size(), 10u);
    const auto& first = results.front();
    EXPECT_EQ(first.at("id").as_string(), engine.id_of(engine.index_of(page.ids.front()).value()));
    EXPECT_EQ(first.at("set").as_string(), page.rows.front()->benchmark_set);
    EXPECT_EQ(first.at("area").as_u64(), page.rows.front()->area);
    EXPECT_EQ(first.at("label").as_string(), page.rows.front()->label());
    ASSERT_NE(document.find("facets"), nullptr);
    EXPECT_NE(document.at("facets").find("libraries"), nullptr);

    // facets suppressed on request
    query.include_facets = false;
    const auto bare = json_value::parse(page_json_string(engine.run(query)));
    EXPECT_EQ(bare.find("facets"), nullptr);
}
