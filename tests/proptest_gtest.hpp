#pragma once

/// \file proptest_gtest.hpp
/// \brief GoogleTest glue for the property harness: builds a
///        \ref mnt::pbt::proptest_config whose replay command names the
///        current test binary (via the MNT_TEST_BINARY compile definition
///        from tests/CMakeLists.txt) and the running Suite.Test, then
///        asserts on the rendered failure report.

#include "testing/proptest.hpp"

#include <gtest/gtest.h>

#include <string>
#include <utility>

namespace mnt::pbt
{

/// Config for the currently running gtest case: environment contract applied,
/// replay command pre-wired to this binary and --gtest_filter.
inline proptest_config current_test_config(std::string property, const std::size_t default_cases = 200)
{
    auto config = proptest_config::from_environment(std::move(property), default_cases);
#ifdef MNT_TEST_BINARY
    config.binary = MNT_TEST_BINARY;
#endif
    if (const auto* info = ::testing::UnitTest::GetInstance()->current_test_info(); info != nullptr)
    {
        config.gtest_filter = std::string{info->test_suite_name()} + "." + info->name();
    }
    return config;
}

}  // namespace mnt::pbt

/// Runs a property and fails the surrounding gtest case with the full
/// reproducer report on violation.
#define MNT_RUN_PROPERTY(config, prop)                              \
    do                                                              \
    {                                                               \
        const auto mnt_result_ = mnt::pbt::run_property(config, prop); \
        ASSERT_TRUE(mnt_result_.passed()) << mnt_result_.report();  \
    } while (false)
