#include "io/fgl_reader.hpp"
#include "io/fgl_writer.hpp"

#include "common/types.hpp"
#include "layout/layout_utils.hpp"
#include "layout/routing.hpp"
#include "verification/drc.hpp"
#include "verification/equivalence.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

using namespace mnt;
using namespace mnt::io;
using namespace mnt::lyt;
using mnt::ntk::gate_type;

namespace
{

/// The canonical AND test layout (valid under 2DDWave).
gate_level_layout make_and_layout()
{
    gate_level_layout layout{"and_example", layout_topology::cartesian, clocking_scheme::twoddwave(), 4, 3};
    layout.place({1, 0}, gate_type::pi, "a");
    layout.place({0, 1}, gate_type::pi, "b");
    layout.place({1, 1}, gate_type::and2);
    layout.place({2, 1}, gate_type::buf);
    layout.place({3, 1}, gate_type::po, "y");
    layout.connect({1, 0}, {1, 1});
    layout.connect({0, 1}, {1, 1});
    layout.connect({1, 1}, {2, 1});
    layout.connect({2, 1}, {3, 1});
    return layout;
}

/// A layout with a crossing (two independent wires).
gate_level_layout make_crossing_layout()
{
    gate_level_layout layout{"crossing", layout_topology::cartesian, clocking_scheme::twoddwave(), 5, 5};
    layout.place({2, 0}, gate_type::pi, "v");
    layout.place({2, 4}, gate_type::po, "vy");
    if (!route(layout, {2, 0}, {2, 4}))
    {
        throw mnt_error{"route failed"};
    }
    layout.place({0, 2}, gate_type::pi, "h");
    layout.place({4, 2}, gate_type::po, "hy");
    if (!route(layout, {0, 2}, {4, 2}))
    {
        throw mnt_error{"route failed"};
    }
    return layout;
}

}  // namespace

TEST(FglWriterTest, DocumentStructure)
{
    const auto doc = write_fgl_string(make_and_layout());
    EXPECT_NE(doc.find("<fgl>"), std::string::npos);
    EXPECT_NE(doc.find("<topology>cartesian</topology>"), std::string::npos);
    EXPECT_NE(doc.find("<clocking>2DDWave</clocking>"), std::string::npos);
    EXPECT_NE(doc.find("<type>and</type>"), std::string::npos);
    EXPECT_NE(doc.find("<name>a</name>"), std::string::npos);
}

TEST(FglIoTest, RoundTripPreservesStructure)
{
    const auto original = make_and_layout();
    const auto reread = read_fgl_string(write_fgl_string(original));

    EXPECT_EQ(reread.layout_name(), original.layout_name());
    EXPECT_EQ(reread.width(), original.width());
    EXPECT_EQ(reread.height(), original.height());
    EXPECT_EQ(reread.topology(), original.topology());
    EXPECT_EQ(reread.clocking().kind(), original.clocking().kind());
    EXPECT_EQ(reread.num_occupied(), original.num_occupied());

    original.foreach_tile(
        [&](const coordinate& c, const gate_level_layout::tile_data& d)
        {
            EXPECT_EQ(reread.type_of(c), d.type) << c.to_string();
            EXPECT_EQ(reread.incoming_of(c), d.incoming) << c.to_string();
            if (!d.io_name.empty())
            {
                EXPECT_EQ(reread.get(c).io_name, d.io_name);
            }
        });
}

TEST(FglIoTest, RoundTripPreservesFunction)
{
    const auto original = make_and_layout();
    const auto spec = lyt::extract_network(original);
    const auto reread = read_fgl_string(write_fgl_string(original));
    EXPECT_TRUE(ver::check_layout_equivalence(spec, reread));
}

TEST(FglIoTest, CrossingRoundTrip)
{
    const auto original = make_crossing_layout();
    ASSERT_EQ(original.num_crossings(), 1u);
    const auto reread = read_fgl_string(write_fgl_string(original));
    EXPECT_EQ(reread.num_crossings(), 1u);
    EXPECT_TRUE(ver::gate_level_drc(reread).passed());
    EXPECT_TRUE(ver::check_layout_equivalence(lyt::extract_network(original), reread));
}

TEST(FglIoTest, HexagonalRoundTrip)
{
    gate_level_layout layout{"hex", layout_topology::hexagonal_even_row, clocking_scheme::row(), 5, 5};
    layout.place({2, 0}, gate_type::pi, "a");
    layout.place({2, 4}, gate_type::po, "y");
    ASSERT_TRUE(route(layout, {2, 0}, {2, 4}));

    const auto reread = read_fgl_string(write_fgl_string(layout));
    EXPECT_EQ(reread.topology(), layout_topology::hexagonal_even_row);
    EXPECT_EQ(reread.clocking().kind(), clocking_kind::row);
    EXPECT_EQ(reread.num_occupied(), layout.num_occupied());
}

TEST(FglIoTest, OpenClockingZonesRoundTrip)
{
    auto scheme = clocking_scheme::open();
    gate_level_layout layout{"open", layout_topology::cartesian, std::move(scheme), 3, 3};
    layout.clocking_mutable().assign_clock({0, 0}, 2);
    layout.clocking_mutable().assign_clock({1, 0}, 3);
    layout.place({0, 0}, gate_type::pi, "a");
    layout.place({1, 0}, gate_type::po, "y");
    layout.connect({0, 0}, {1, 0});

    const auto reread = read_fgl_string(write_fgl_string(layout));
    EXPECT_EQ(reread.clocking().kind(), clocking_kind::open);
    EXPECT_EQ(reread.clock_number({0, 0}), 2);
    EXPECT_EQ(reread.clock_number({1, 0}), 3);
    EXPECT_TRUE(ver::gate_level_drc(reread).passed());
}

TEST(FglReaderTest, IncomingSlotOrderPreserved)
{
    // lt2 is non-commutative: slot order matters
    gate_level_layout layout{"lt", layout_topology::cartesian, clocking_scheme::twoddwave(), 4, 3};
    layout.place({1, 0}, gate_type::pi, "a");
    layout.place({0, 1}, gate_type::pi, "b");
    layout.place({1, 1}, gate_type::lt2);
    layout.place({2, 1}, gate_type::po, "y");
    layout.connect({1, 0}, {1, 1});  // slot 0 = a
    layout.connect({0, 1}, {1, 1});  // slot 1 = b
    layout.connect({1, 1}, {2, 1});

    const auto spec = lyt::extract_network(layout);
    const auto reread = read_fgl_string(write_fgl_string(layout));
    EXPECT_TRUE(ver::check_layout_equivalence(spec, reread));
    EXPECT_EQ(reread.incoming_of({1, 1})[0], coordinate(1, 0));
    EXPECT_EQ(reread.incoming_of({1, 1})[1], coordinate(0, 1));
}

TEST(FglReaderTest, RejectsUnknownGateType)
{
    const std::string doc = R"(<fgl><layout><name>x</name><topology>cartesian</topology>
        <clocking>2DDWave</clocking><size><x>2</x><y>2</y></size>
        <gates><gate><type>frobnicator</type><loc><x>0</x><y>0</y></loc></gate></gates>
        </layout></fgl>)";
    EXPECT_THROW(static_cast<void>(read_fgl_string(doc)), parse_error);
}

TEST(FglReaderTest, RejectsOutOfBoundsGate)
{
    const std::string doc = R"(<fgl><layout><name>x</name><topology>cartesian</topology>
        <clocking>2DDWave</clocking><size><x>2</x><y>2</y></size>
        <gates><gate><type>buf</type><loc><x>5</x><y>0</y></loc></gate></gates>
        </layout></fgl>)";
    EXPECT_THROW(static_cast<void>(read_fgl_string(doc)), design_rule_error);
}

TEST(FglReaderTest, RejectsMissingSize)
{
    const std::string doc = R"(<fgl><layout><name>x</name><topology>cartesian</topology>
        <clocking>2DDWave</clocking><gates/></layout></fgl>)";
    EXPECT_THROW(static_cast<void>(read_fgl_string(doc)), parse_error);
}

TEST(FglReaderTest, RejectsBadInteger)
{
    const std::string doc = R"(<fgl><layout><name>x</name><topology>cartesian</topology>
        <clocking>2DDWave</clocking><size><x>two</x><y>2</y></size><gates/></layout></fgl>)";
    EXPECT_THROW(static_cast<void>(read_fgl_string(doc)), parse_error);
}

TEST(FglReaderTest, RejectsInvalidLayer)
{
    const std::string doc = R"(<fgl><layout><name>x</name><topology>cartesian</topology>
        <clocking>2DDWave</clocking><size><x>2</x><y>2</y></size>
        <gates><gate><type>buf</type><loc><x>0</x><y>0</y><z>3</z></loc></gate></gates>
        </layout></fgl>)";
    EXPECT_THROW(static_cast<void>(read_fgl_string(doc)), parse_error);
}

TEST(FglReaderTest, OptionalDrcRejectsIllegalLayout)
{
    // clock-invalid connection: passes structural load, fails DRC
    const std::string doc = R"(<fgl><layout><name>x</name><topology>cartesian</topology>
        <clocking>2DDWave</clocking><size><x>3</x><y>3</y></size>
        <gates>
          <gate><type>pi</type><name>a</name><loc><x>1</x><y>1</y></loc></gate>
          <gate><type>po</type><name>y</name><loc><x>0</x><y>1</y></loc>
            <incoming><loc><x>1</x><y>1</y></loc></incoming></gate>
        </gates></layout></fgl>)";
    EXPECT_NO_THROW(static_cast<void>(read_fgl_string(doc)));
    fgl_reader_options options{};
    options.run_drc = true;
    EXPECT_THROW(static_cast<void>(read_fgl_string(doc, options)), design_rule_error);
}

TEST(FglIoTest, FileRoundTrip)
{
    const auto original = make_and_layout();
    const auto path = std::filesystem::temp_directory_path() / "mnt_test_roundtrip.fgl";
    write_fgl_file(original, path);
    const auto reread = read_fgl_file(path);
    EXPECT_EQ(reread.num_occupied(), original.num_occupied());
    std::filesystem::remove(path);
}

TEST(FglIoTest, MissingFileThrows)
{
    EXPECT_THROW(static_cast<void>(read_fgl_file("/nonexistent/file.fgl")), mnt_error);
}
