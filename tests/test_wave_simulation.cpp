#include "verification/wave_simulation.hpp"

#include "common/types.hpp"
#include "layout/layout_utils.hpp"
#include "physical_design/hexagonalization.hpp"
#include "physical_design/nanoplacer.hpp"
#include "physical_design/ortho.hpp"
#include "test_networks.hpp"

#include <gtest/gtest.h>

using namespace mnt;
using namespace mnt::ver;
using namespace mnt::test;
using mnt::ntk::gate_type;

namespace
{

/// pi(a)=(1,0), pi(b)=(0,1) -> and=(1,1) -> po=(2,1) on 2DDWave.
lyt::gate_level_layout and_layout()
{
    lyt::gate_level_layout layout{"and", lyt::layout_topology::cartesian, lyt::clocking_scheme::twoddwave(), 4, 3};
    layout.place({1, 0}, gate_type::pi, "a");
    layout.place({0, 1}, gate_type::pi, "b");
    layout.place({1, 1}, gate_type::and2);
    layout.place({2, 1}, gate_type::po, "y");
    layout.connect({1, 0}, {1, 1});
    layout.connect({0, 1}, {1, 1});
    layout.connect({1, 1}, {2, 1});
    return layout;
}

}  // namespace

TEST(WaveSimulationTest, AndGateSteadyState)
{
    const auto layout = and_layout();
    // pi order: a then b (creation order)
    const auto result = wave_simulate(layout, {0b1100ull, 0b1010ull});
    ASSERT_TRUE(result.stabilized);
    ASSERT_EQ(result.po_words.size(), 1u);
    EXPECT_EQ(result.po_words[0] & 0xfull, 0b1000ull);
    EXPECT_EQ(result.po_names[0], "y");
    EXPECT_GT(result.settle_ticks, 0u);
}

TEST(WaveSimulationTest, InputCountChecked)
{
    const auto layout = and_layout();
    EXPECT_THROW(static_cast<void>(wave_simulate(layout, {0ull})), precondition_error);
}

TEST(WaveSimulationTest, SettleLatencyTracksDepth)
{
    // a longer wire chain needs more ticks to settle
    lyt::gate_level_layout shallow{"s", lyt::layout_topology::cartesian, lyt::clocking_scheme::twoddwave(), 8, 2};
    shallow.place({0, 0}, gate_type::pi, "a");
    shallow.place({1, 0}, gate_type::po, "y");
    shallow.connect({0, 0}, {1, 0});

    lyt::gate_level_layout deep{"d", lyt::layout_topology::cartesian, lyt::clocking_scheme::twoddwave(), 8, 2};
    deep.place({0, 0}, gate_type::pi, "a");
    deep.place({7, 0}, gate_type::po, "y");
    for (int x = 1; x < 7; ++x)
    {
        deep.place({x, 0}, gate_type::buf);
    }
    for (int x = 0; x < 7; ++x)
    {
        deep.connect({x, 0}, {x + 1, 0});
    }

    const auto fast = wave_simulate(shallow, {0xffull});
    const auto slow = wave_simulate(deep, {0xffull});
    ASSERT_TRUE(fast.stabilized);
    ASSERT_TRUE(slow.stabilized);
    EXPECT_EQ(fast.po_words[0], 0xffull);
    EXPECT_EQ(slow.po_words[0], 0xffull);
    EXPECT_GT(slow.settle_ticks, fast.settle_ticks);
}

TEST(WaveSimulationTest, BackwardConnectionTakesAFullExtraCycle)
{
    // a backwards (westward) connection under 2DDWave is a DAG, so with
    // inputs held constant it still settles to the right value — but the
    // transfer needs (almost) a full extra clock cycle instead of one phase,
    // which is exactly the physical penalty of the illegal direction
    lyt::gate_level_layout backward{"bad", lyt::layout_topology::cartesian, lyt::clocking_scheme::twoddwave(), 4,
                                    2};
    backward.place({2, 0}, gate_type::pi, "a");
    backward.place({1, 0}, gate_type::po, "y");
    backward.connect({2, 0}, {1, 0});  // zone 2 -> zone 1: illegal direction

    lyt::gate_level_layout forward{"good", lyt::layout_topology::cartesian, lyt::clocking_scheme::twoddwave(), 4,
                                   2};
    forward.place({1, 0}, gate_type::pi, "a");
    forward.place({2, 0}, gate_type::po, "y");
    forward.connect({1, 0}, {2, 0});  // zone 1 -> zone 2: legal

    const auto slow = wave_simulate(backward, {0xaaull});
    const auto fast = wave_simulate(forward, {0xaaull});
    ASSERT_TRUE(slow.stabilized);
    ASSERT_TRUE(fast.stabilized);
    EXPECT_EQ(slow.po_words[0], 0xaaull);
    EXPECT_EQ(fast.po_words[0], 0xaaull);
    EXPECT_GT(slow.settle_ticks, fast.settle_ticks);
}

TEST(WaveSimulationTest, CyclicLayoutDoesNotStabilize)
{
    // ring oscillator: inverter loop through OPEN-clocked tiles
    auto scheme = lyt::clocking_scheme::open();
    lyt::gate_level_layout layout{"osc", lyt::layout_topology::cartesian, std::move(scheme), 3, 3};
    layout.clocking_mutable().assign_clock({0, 0}, 0);
    layout.clocking_mutable().assign_clock({1, 0}, 1);
    layout.clocking_mutable().assign_clock({1, 1}, 2);
    layout.clocking_mutable().assign_clock({0, 1}, 3);
    layout.place({0, 0}, gate_type::inv);
    layout.place({1, 0}, gate_type::buf);
    layout.place({1, 1}, gate_type::buf);
    layout.place({0, 1}, gate_type::buf);
    layout.connect({0, 0}, {1, 0});
    layout.connect({1, 0}, {1, 1});
    layout.connect({1, 1}, {0, 1});
    layout.connect({0, 1}, {0, 0});

    wave_options options{};
    options.max_ticks = 256;
    const auto result = wave_simulate(layout, {}, options);
    EXPECT_FALSE(result.stabilized);
}

TEST(WaveSimulationTest, WaveEquivalenceOnOrthoLayouts)
{
    for (const auto& network : {mux21(), half_adder(), full_adder()})
    {
        const auto layout = pd::ortho(network);
        const auto result = check_wave_equivalence(network, layout);
        EXPECT_TRUE(result.equivalent) << network.network_name() << ": " << result.reason;
    }
}

TEST(WaveSimulationTest, WaveEquivalenceOnHexLayouts)
{
    const auto network = full_adder();
    const auto hex = pd::hexagonalization(pd::ortho(network));
    const auto result = check_wave_equivalence(network, hex);
    EXPECT_TRUE(result.equivalent) << result.reason;
}

TEST(WaveSimulationTest, WaveEquivalenceOnSnakingSchemes)
{
    const auto network = half_adder();
    pd::nanoplacer_params params{};
    params.scheme = lyt::clocking_kind::use;
    params.iterations = 200;
    const auto layout = pd::nanoplacer(network, params);
    ASSERT_TRUE(layout.has_value());
    const auto result = check_wave_equivalence(network, *layout);
    EXPECT_TRUE(result.equivalent) << result.reason;
}

TEST(WaveSimulationTest, WaveEquivalenceDetectsWrongFunction)
{
    const auto layout = and_layout();
    ntk::logic_network wrong{"or"};
    wrong.create_po(wrong.create_or(wrong.create_pi("a"), wrong.create_pi("b")), "y");
    const auto result = check_wave_equivalence(wrong, layout);
    EXPECT_FALSE(result.equivalent);
    EXPECT_NE(result.reason.find("'y'"), std::string::npos);
}

TEST(WaveSimulationTest, RandomSweepMatchesExtraction)
{
    for (const std::uint64_t seed : {301u, 302u})
    {
        const auto network = random_network(5, 25, 3, seed);
        const auto layout = pd::ortho(network);
        const auto result = check_wave_equivalence(network, layout);
        EXPECT_TRUE(result.equivalent) << "seed " << seed << ": " << result.reason;
    }
}

TEST(StreamSimulationTest, SettleRateStreamsMatchOnOrthoLayouts)
{
    for (const auto& network : {mux21(), half_adder()})
    {
        const auto layout = pd::ortho(network);
        const auto result = check_stream_equivalence(network, layout);
        EXPECT_TRUE(result.equivalent) << network.network_name() << ": " << result.reason;
    }
}

TEST(StreamSimulationTest, FullRateOnBalancedWire)
{
    // a straight 4-tile wire is trivially path-balanced: it must transport a
    // full-rate stream with latency = depth cycles
    lyt::gate_level_layout layout{"wire", lyt::layout_topology::cartesian, lyt::clocking_scheme::twoddwave(), 6, 1};
    layout.place({0, 0}, gate_type::pi, "a");
    for (int x = 1; x < 5; ++x)
    {
        layout.place({x, 0}, gate_type::buf);
    }
    layout.place({5, 0}, gate_type::po, "y");
    for (int x = 0; x < 5; ++x)
    {
        layout.connect({x, 0}, {x + 1, 0});
    }

    std::vector<std::vector<std::uint64_t>> frames;
    std::vector<std::vector<std::uint64_t>> expected(1);
    for (std::uint64_t f = 1; f <= 10; ++f)
    {
        frames.push_back({f * 0x1111ull});
        expected[0].push_back(f * 0x1111ull);
    }

    stream_options options{};
    options.cycles_per_frame = 1;  // full rate
    const auto result = wave_stream_simulate(layout, frames, expected, options);
    ASSERT_TRUE(result.aligned);
    // 6 tiles, one zone step each: latency of at least one full cycle
    EXPECT_GE(result.latency_cycles[0], 1u);
    EXPECT_EQ(result.po_frames[0], expected[0]);
}

TEST(StreamSimulationTest, FullRateFailsOnUnbalancedInputPaths)
{
    // Under 2DDWave every monotone path between two tiles has the same
    // delay, so skew arises between *inputs at different distances*: here
    // input a reaches the AND in 1 tick but input b needs 5 ticks (a full
    // clock cycle more). At full rate the AND combines input a of frame f
    // with input b of frame f-1 — the physical reason FCN designs need
    // delay-balancing signal distribution networks (the InOrd paper).
    lyt::gate_level_layout layout{"skew", lyt::layout_topology::cartesian, lyt::clocking_scheme::twoddwave(), 7, 2};
    layout.place({5, 0}, gate_type::pi, "a");
    layout.place({0, 1}, gate_type::pi, "b");
    for (int x = 1; x <= 4; ++x)
    {
        layout.place({x, 1}, gate_type::buf);
    }
    for (int x = 0; x <= 3; ++x)
    {
        layout.connect({x, 1}, {x + 1, 1});
    }
    layout.place({5, 1}, gate_type::and2);
    layout.connect({5, 0}, {5, 1});
    layout.connect({4, 1}, {5, 1});
    layout.place({6, 1}, gate_type::po, "y");
    layout.connect({5, 1}, {6, 1});

    std::vector<std::vector<std::uint64_t>> frames;
    std::vector<std::vector<std::uint64_t>> expected(1);
    std::mt19937_64 rng{5};
    for (int f = 0; f < 12; ++f)
    {
        const auto a = rng();
        const auto b = rng();
        frames.push_back({a, b});
        expected[0].push_back(a & b);
    }

    stream_options slow{};
    const auto settled = wave_stream_simulate(layout, frames, expected, slow);
    stream_options fast{};
    fast.cycles_per_frame = 1;
    const auto streamed = wave_stream_simulate(layout, frames, expected, fast);
    // settled: every frame matches; full rate: skewed frames mix
    EXPECT_TRUE(settled.aligned);
    EXPECT_FALSE(streamed.aligned);
}

TEST(StreamSimulationTest, InputValidation)
{
    const auto layout = and_layout();
    EXPECT_THROW(static_cast<void>(wave_stream_simulate(layout, {}, {{0ull}})), precondition_error);
    EXPECT_THROW(static_cast<void>(wave_stream_simulate(layout, {{1ull}}, {{0ull}})), precondition_error);
    EXPECT_THROW(static_cast<void>(wave_stream_simulate(layout, {{1ull, 2ull}}, {})), precondition_error);
}
