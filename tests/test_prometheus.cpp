#include "telemetry/prometheus.hpp"

#include "telemetry/telemetry.hpp"
#include "testing/generators.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace mnt;
using namespace mnt::tel;

namespace
{

/// A fresh registry state per test: instruments are zeroed in place (their
/// names survive — the registry never erases entries), so assertions below
/// filter by the names they create.
class prometheus_fixture : public ::testing::Test
{
protected:
    void SetUp() override
    {
        registry::instance().reset();
    }

    void TearDown() override
    {
        registry::instance().reset();
    }
};

/// A byte string sprinkled with exposition-hostile content: quotes,
/// backslashes, newlines, and invalid UTF-8 lead/continuation bytes.
std::string hostile_string(pbt::rng& random, const std::size_t length)
{
    static constexpr unsigned char nasty[] = {'"', '\\', '\n', '\r', '\t', 0x01, 0x7F,
                                              0xC0, 0xE0, 0xED, 0xF5, 0xFF, 0x80};
    std::string out;
    for (std::size_t i = 0; i < length; ++i)
    {
        if (random.chance(1, 2))
        {
            out += static_cast<char>(nasty[random.below(sizeof(nasty))]);
        }
        else
        {
            out += static_cast<char>('a' + random.below(26));
        }
    }
    return out;
}

/// All `metric{...} value` sample lines of \p text for \p metric.
std::vector<std::string> sample_lines(const std::string& text, const std::string& metric)
{
    std::vector<std::string> lines;
    std::istringstream in{text};
    std::string line;
    while (std::getline(in, line))
    {
        if (line.rfind(metric, 0) == 0)
        {
            lines.push_back(line);
        }
    }
    return lines;
}

}  // namespace

// ------------------------------------------------------------- name parsing

TEST(PrometheusNames, ParsesLabeledInstrumentNames)
{
    const auto plain = parse_instrument_name("server.request_s");
    EXPECT_EQ(plain.base, "server.request_s");
    EXPECT_TRUE(plain.labels.empty());

    const auto labeled = parse_instrument_name("server.request_s[route=/layouts]");
    EXPECT_EQ(labeled.base, "server.request_s");
    ASSERT_EQ(labeled.labels.size(), 1u);
    EXPECT_EQ(labeled.labels[0].first, "route");
    EXPECT_EQ(labeled.labels[0].second, "/layouts");

    const auto multi = parse_instrument_name("x[a=1,b=two]");
    ASSERT_EQ(multi.labels.size(), 2u);
    EXPECT_EQ(multi.labels[1].first, "b");
    EXPECT_EQ(multi.labels[1].second, "two");
}

TEST(PrometheusNames, MalformedBracketSuffixFallsBackToWholeName)
{
    // unterminated, missing '=', empty key: all must stay scrapeable
    for (const char* raw : {"x[route=/layouts", "x[route]", "x[=v]", "x[]"})
    {
        const auto identity = parse_instrument_name(raw);
        EXPECT_EQ(identity.base, raw);
        EXPECT_TRUE(identity.labels.empty());
    }
}

TEST(PrometheusNames, SanitizesMetricNames)
{
    EXPECT_EQ(prometheus_metric_name("server.request_s"), "mnt_server_request_s");
    EXPECT_EQ(prometheus_metric_name("weird name#1"), "mnt_weird_name_1");
    EXPECT_EQ(prometheus_metric_name("a:b"), "mnt_a:b");  // colons are legal in metric names
}

// ---------------------------------------------------------- label escaping

TEST(PrometheusEscaping, EscapesQuotesBackslashesAndNewlines)
{
    EXPECT_EQ(prometheus_escape_label("plain"), "plain");
    EXPECT_EQ(prometheus_escape_label("a\"b"), "a\\\"b");
    EXPECT_EQ(prometheus_escape_label("a\\b"), "a\\\\b");
    EXPECT_EQ(prometheus_escape_label("a\nb"), "a\\nb");
}

TEST(PrometheusEscaping, HostileLabelValuesNeverBreakTheExposition)
{
    pbt::rng random{0xFEEDFACEULL};
    for (int round = 0; round < 200; ++round)
    {
        const auto raw = hostile_string(random, 1 + random.below(24));
        const auto escaped = prometheus_escape_label(raw);
        // no literal newline may survive (it would terminate the sample line)
        EXPECT_EQ(escaped.find('\n'), std::string::npos) << "round " << round;
        // every '"' must be preceded by a backslash, else the label value
        // terminates early
        for (std::size_t i = 0; i < escaped.size(); ++i)
        {
            if (escaped[i] == '"')
            {
                ASSERT_GT(i, 0u);
                EXPECT_EQ(escaped[i - 1], '\\') << "round " << round;
            }
        }
    }
}

TEST_F(prometheus_fixture, HostileInstrumentNamesRenderOneSampleEach)
{
    pbt::rng random{0xABCDEF12ULL};
    auto& reg = registry::instance();
    for (int i = 0; i < 16; ++i)
    {
        reg.get_counter("hostile.ctr[key=" + hostile_string(random, 8) + "]").add(1);
    }
    const auto text = prometheus_text();
    const auto lines = sample_lines(text, "mnt_hostile_ctr");
    // hostile values may collide after escaping, but never vanish entirely
    EXPECT_GE(lines.size(), 1u);
    for (const auto& line : lines)
    {
        // a raw tab inside a quoted label value is legal; a newline is not,
        // and sample_lines would have split such a line before the value
        EXPECT_EQ(line.back() >= '0' && line.back() <= '9', true) << line;
    }
}

// ------------------------------------------------------- histogram families

TEST_F(prometheus_fixture, HistogramBucketsAreCumulativeAndMonotonic)
{
    pbt::rng random{42};
    auto& h = registry::instance().get_histogram("mono.lat_s");
    for (int i = 0; i < 500; ++i)
    {
        h.record(std::exp((static_cast<double>(random.below(2000)) - 1000.0) / 100.0));
    }

    const auto text = prometheus_text();
    const auto buckets = sample_lines(text, "mnt_mono_lat_s_bucket");
    ASSERT_GE(buckets.size(), 2u);

    std::uint64_t previous = 0;
    for (const auto& line : buckets)
    {
        const auto space = line.rfind(' ');
        const auto value = std::stoull(line.substr(space + 1));
        EXPECT_GE(value, previous) << line;
        previous = value;
    }
    // the +Inf bucket must equal _count
    const auto count_lines = sample_lines(text, "mnt_mono_lat_s_count");
    ASSERT_EQ(count_lines.size(), 1u);
    const auto total = std::stoull(count_lines[0].substr(count_lines[0].rfind(' ') + 1));
    EXPECT_EQ(previous, total);
    EXPECT_EQ(total, 500u);
    EXPECT_NE(buckets.back().find("le=\"+Inf\""), std::string::npos);
}

TEST_F(prometheus_fixture, ExpositionHasOneTypeLinePerFamily)
{
    auto& reg = registry::instance();
    reg.get_histogram("family.lat_s[route=/a]").record(0.5);
    reg.get_histogram("family.lat_s[route=/b]").record(1.5);
    reg.get_counter("family.total").add(3);

    const auto text = prometheus_text();
    std::size_t type_lines = 0;
    std::istringstream in{text};
    std::string line;
    while (std::getline(in, line))
    {
        if (line.rfind("# TYPE mnt_family_lat_s ", 0) == 0)
        {
            ++type_lines;
            EXPECT_EQ(line, "# TYPE mnt_family_lat_s histogram");
        }
    }
    EXPECT_EQ(type_lines, 1u);
    EXPECT_NE(text.find("mnt_family_lat_s_bucket{route=\"/a\",le=\""), std::string::npos);
    EXPECT_NE(text.find("mnt_family_lat_s_bucket{route=\"/b\",le=\""), std::string::npos);
    EXPECT_NE(text.find("# TYPE mnt_family_total counter"), std::string::npos);
}

// ---------------------------------------------------------------- quantiles

TEST_F(prometheus_fixture, QuantileIsWithinOneLogBucketOfExact)
{
    pbt::rng random{0xDEADBEEFULL};
    auto& h = registry::instance().get_histogram("q.lat_s");
    std::vector<double> values;
    for (int i = 0; i < 1000; ++i)
    {
        // spread across several orders of magnitude, as latencies are
        const auto v = std::exp((static_cast<double>(random.below(1600)) - 800.0) / 120.0);
        values.push_back(v);
        h.record(v);
    }
    std::sort(values.begin(), values.end());

    histogram_value snapshot{};
    snapshot.count = h.count();
    snapshot.sum = h.sum();
    snapshot.min = h.min();
    snapshot.max = h.max();
    for (std::size_t i = 0; i < histogram::num_buckets; ++i)
    {
        snapshot.buckets[i] = h.bucket_count(i);
    }

    for (const double q : {0.5, 0.95, 0.99})
    {
        const auto exact = values[static_cast<std::size_t>(q * (values.size() - 1))];
        const auto estimate = histogram_quantile(snapshot, q);
        // the estimate must land in the exact value's log-bucket or one of
        // its direct neighbors (the estimator cannot be finer than the grid)
        const auto exact_bucket = histogram::bucket_index(exact);
        const auto estimate_bucket = histogram::bucket_index(estimate);
        const auto distance = exact_bucket > estimate_bucket ? exact_bucket - estimate_bucket :
                                                               estimate_bucket - exact_bucket;
        EXPECT_LE(distance, 1u) << "q=" << q << " exact=" << exact << " estimate=" << estimate;
        EXPECT_GE(estimate, snapshot.min);
        EXPECT_LE(estimate, snapshot.max);
    }
}

TEST(PrometheusQuantile, EmptyAndSingletonHistograms)
{
    histogram_value empty{};
    EXPECT_EQ(histogram_quantile(empty, 0.5), 0.0);

    histogram_value one{};
    one.count = 1;
    one.min = one.max = 3.0;
    one.sum = 3.0;
    one.buckets[histogram::bucket_index(3.0)] = 1;
    EXPECT_DOUBLE_EQ(histogram_quantile(one, 0.5), 3.0);
    EXPECT_DOUBLE_EQ(histogram_quantile(one, 0.99), 3.0);
}

// ------------------------------------------------------- concurrent scrape

/// Scrapes must be race-free against concurrent writers: the nightly TSan
/// build runs this test under -fsanitize=thread.
TEST_F(prometheus_fixture, ScrapeIsRaceFreeAgainstConcurrentWriters)
{
    std::atomic<bool> stop{false};
    std::vector<std::thread> writers;
    writers.reserve(4);
    for (int t = 0; t < 4; ++t)
    {
        writers.emplace_back(
            [&stop, t]
            {
                auto& reg = registry::instance();
                auto& ctr = reg.get_counter("scrape.ops[writer=" + std::to_string(t) + "]");
                auto& lat = reg.get_histogram("scrape.lat_s");
                auto& g = reg.get_gauge("scrape.level");
                for (std::uint64_t i = 0; !stop.load(std::memory_order_relaxed); ++i)
                {
                    ctr.add(1);
                    lat.record(1e-6 * static_cast<double>(i % 1000 + 1));
                    g.set(static_cast<double>(i));
                }
            });
    }

    for (int scrape = 0; scrape < 50; ++scrape)
    {
        const auto text = prometheus_text();
        EXPECT_NE(text.find("# TYPE"), std::string::npos);
    }
    stop.store(true);
    for (auto& w : writers)
    {
        w.join();
    }

    // cumulative bucket sums of a racing histogram may lag the _count read a
    // moment later, but the final scrape (quiescent) must be consistent
    const auto text = prometheus_text();
    const auto buckets = sample_lines(text, "mnt_scrape_lat_s_bucket");
    ASSERT_FALSE(buckets.empty());
    const auto inf_line = buckets.back();
    const auto count_line = sample_lines(text, "mnt_scrape_lat_s_count").at(0);
    EXPECT_EQ(std::stoull(inf_line.substr(inf_line.rfind(' ') + 1)),
              std::stoull(count_line.substr(count_line.rfind(' ') + 1)));
}
