#include "gate_library/bestagon.hpp"
#include "gate_library/cell_layout.hpp"
#include "gate_library/qca_one.hpp"

#include "common/types.hpp"
#include "io/qca_writer.hpp"
#include "io/sqd_writer.hpp"
#include "layout/routing.hpp"
#include "network/transforms.hpp"
#include "physical_design/hexagonalization.hpp"
#include "physical_design/ortho.hpp"
#include "test_networks.hpp"

#include <gtest/gtest.h>

#include <string>

using namespace mnt;
using namespace mnt::gl;
using namespace mnt::test;

namespace
{

/// mux21 in AOI form placed with ortho: compatible with QCA ONE.
lyt::gate_level_layout aoi_mux_layout()
{
    return pd::ortho(ntk::to_aoi(mux21()));
}

}  // namespace

TEST(CellLayoutTest, BasicOperations)
{
    cell_level_layout cells{"t", cell_technology::qca, 10, 10};
    EXPECT_EQ(cells.technology(), cell_technology::qca);
    EXPECT_EQ(cells.num_cells(), 0u);

    cell c{};
    c.kind = cell_kind::input;
    c.name = "a";
    cells.place_cell({1, 2}, c, 3);
    EXPECT_FALSE(cells.is_empty_cell({1, 2}));
    EXPECT_EQ(cells.get_cell({1, 2}).kind, cell_kind::input);
    EXPECT_EQ(cells.clock_zone_of({1, 2}), 3);
    EXPECT_EQ(cells.num_input_cells(), 1u);

    EXPECT_THROW(cells.place_cell({1, 2}, {}, 0), precondition_error);
    EXPECT_THROW(cells.place_cell({10, 0}, {}, 0), precondition_error);
    EXPECT_THROW(static_cast<void>(cells.get_cell({9, 9})), precondition_error);
}

TEST(CellLayoutTest, TechnologyNames)
{
    EXPECT_EQ(technology_name(cell_technology::qca), "QCA");
    EXPECT_EQ(technology_name(cell_technology::sidb), "SiDB");
}

TEST(QcaOneTest, CompilesAoiMux)
{
    const auto layout = aoi_mux_layout();
    const auto cells = apply_qca_one(layout);

    EXPECT_EQ(cells.technology(), cell_technology::qca);
    EXPECT_EQ(cells.width(), layout.width() * qca_one_tile_size);
    EXPECT_EQ(cells.height(), layout.height() * qca_one_tile_size);
    EXPECT_GT(cells.num_cells(), layout.num_occupied());  // several cells per tile
    EXPECT_EQ(cells.num_input_cells(), layout.num_pis());
    EXPECT_EQ(cells.num_output_cells(), layout.num_pos());
}

TEST(QcaOneTest, AndGetsFixedZeroCell)
{
    ntk::logic_network network{"and"};
    network.create_po(network.create_and(network.create_pi("a"), network.create_pi("b")), "y");
    const auto cells = apply_qca_one(pd::ortho(network));

    std::size_t fixed0 = 0;
    cells.foreach_cell([&](const lyt::coordinate&, const cell& c, std::uint8_t)
                       { fixed0 += c.kind == cell_kind::fixed_0 ? 1 : 0; });
    EXPECT_EQ(fixed0, 1u);
}

TEST(QcaOneTest, OrGetsFixedOneCell)
{
    ntk::logic_network network{"or"};
    network.create_po(network.create_or(network.create_pi("a"), network.create_pi("b")), "y");
    const auto cells = apply_qca_one(pd::ortho(network));

    std::size_t fixed1 = 0;
    cells.foreach_cell([&](const lyt::coordinate&, const cell& c, std::uint8_t)
                       { fixed1 += c.kind == cell_kind::fixed_1 ? 1 : 0; });
    EXPECT_EQ(fixed1, 1u);
}

TEST(QcaOneTest, RejectsUnsupportedGateTypes)
{
    // a layout containing an XOR tile is not QCA ONE compatible
    const auto layout = pd::ortho(half_adder());
    EXPECT_THROW(static_cast<void>(apply_qca_one(layout)), design_rule_error);
}

TEST(QcaOneTest, RejectsHexagonalLayouts)
{
    const auto hex = pd::hexagonalization(pd::ortho(ntk::to_aoi(mux21())));
    EXPECT_THROW(static_cast<void>(apply_qca_one(hex)), precondition_error);
}

TEST(QcaOneTest, CrossingsUseCrossoverCellsInLayerOne)
{
    // deterministic crossing: two independent wires intersecting at (2,2)
    lyt::gate_level_layout layout{"cross", lyt::layout_topology::cartesian, lyt::clocking_scheme::twoddwave(), 5,
                                  5};
    layout.place({2, 0}, ntk::gate_type::pi, "v");
    layout.place({2, 4}, ntk::gate_type::po, "vy");
    ASSERT_TRUE(lyt::route(layout, {2, 0}, {2, 4}));
    layout.place({0, 2}, ntk::gate_type::pi, "h");
    layout.place({4, 2}, ntk::gate_type::po, "hy");
    ASSERT_TRUE(lyt::route(layout, {0, 2}, {4, 2}));
    ASSERT_GT(layout.num_crossings(), 0u);
    const auto cells = apply_qca_one(layout);

    std::size_t crossover = 0;
    cells.foreach_cell(
        [&](const lyt::coordinate& c, const cell& payload, std::uint8_t)
        {
            if (payload.kind == cell_kind::crossover)
            {
                EXPECT_EQ(c.z, 1);
                ++crossover;
            }
        });
    EXPECT_GT(crossover, 0u);
}

TEST(QcaOneTest, PhysicalAreaScalesWithPitch)
{
    const auto cells = apply_qca_one(aoi_mux_layout());
    const auto expected = static_cast<double>(cells.width()) * 20.0 * static_cast<double>(cells.height()) * 20.0;
    EXPECT_DOUBLE_EQ(qca_physical_area_nm2(cells), expected);
}

TEST(BestagonTest, CompilesHexMux)
{
    const auto hex = pd::hexagonalization(pd::ortho(mux21()));
    const auto cells = apply_bestagon(hex);

    EXPECT_EQ(cells.technology(), cell_technology::sidb);
    EXPECT_GT(cells.num_cells(), hex.num_occupied());
    EXPECT_EQ(cells.num_input_cells(), hex.num_pis());
    EXPECT_EQ(cells.num_output_cells(), hex.num_pos());
    EXPECT_GT(bestagon_physical_area_nm2(cells), 0.0);
}

TEST(BestagonTest, SupportsXorNatively)
{
    const auto hex = pd::hexagonalization(pd::ortho(half_adder()));  // contains XOR
    EXPECT_NO_THROW(static_cast<void>(apply_bestagon(hex)));
}

TEST(BestagonTest, RejectsMaj)
{
    // hand-build a hex layout with a MAJ tile
    lyt::gate_level_layout hex{"m", lyt::layout_topology::hexagonal_even_row, lyt::clocking_scheme::row(), 4, 4};
    hex.place({1, 1}, ntk::gate_type::maj3);
    EXPECT_THROW(static_cast<void>(apply_bestagon(hex)), design_rule_error);
}

TEST(BestagonTest, RejectsCartesianLayouts)
{
    EXPECT_THROW(static_cast<void>(apply_bestagon(aoi_mux_layout())), precondition_error);
}

TEST(QcaWriterTest, OutputContainsCellsAndMetadata)
{
    const auto cells = apply_qca_one(aoi_mux_layout());
    const auto text = io::write_qca_string(cells);
    EXPECT_NE(text.find("qcadesigner_version"), std::string::npos);
    EXPECT_NE(text.find("design_name=mux21"), std::string::npos);
    EXPECT_NE(text.find("QCAD_CELL_INPUT"), std::string::npos);
    EXPECT_NE(text.find("QCAD_CELL_OUTPUT"), std::string::npos);
    EXPECT_NE(text.find("label=s"), std::string::npos);
}

TEST(QcaWriterTest, RejectsSidbLayouts)
{
    const auto hex = pd::hexagonalization(pd::ortho(mux21()));
    const auto cells = apply_bestagon(hex);
    EXPECT_THROW(static_cast<void>(io::write_qca_string(cells)), precondition_error);
}

TEST(SqdWriterTest, OutputIsParsableXmlWithDots)
{
    const auto hex = pd::hexagonalization(pd::ortho(mux21()));
    const auto cells = apply_bestagon(hex);
    const auto text = io::write_sqd_string(cells);
    EXPECT_NE(text.find("<siqad>"), std::string::npos);
    EXPECT_NE(text.find("dbdot"), std::string::npos);
    EXPECT_NE(text.find("latcoord"), std::string::npos);
}

TEST(SqdWriterTest, RejectsQcaLayouts)
{
    const auto cells = apply_qca_one(aoi_mux_layout());
    EXPECT_THROW(static_cast<void>(io::write_sqd_string(cells)), precondition_error);
}
