#include "network/transforms.hpp"

#include "common/types.hpp"
#include "network/network_utils.hpp"
#include "network/simulation.hpp"
#include "verification/equivalence.hpp"

#include <gtest/gtest.h>

#include <string>

using namespace mnt;
using namespace mnt::ntk;

namespace
{

/// 2-bit adder-ish network with reconvergence and high fanout
logic_network make_test_network()
{
    logic_network network{"t"};
    const auto a = network.create_pi("a");
    const auto b = network.create_pi("b");
    const auto c = network.create_pi("c");
    const auto g1 = network.create_and(a, b);
    const auto g2 = network.create_xor(g1, c);
    const auto g3 = network.create_or(g1, c);
    const auto g4 = network.create_maj(g1, g2, g3);
    network.create_po(g2, "s");
    network.create_po(g4, "m");
    return network;
}

}  // namespace

TEST(CleanupTest, RemovesDeadNodes)
{
    logic_network network{"dead"};
    const auto a = network.create_pi("a");
    const auto b = network.create_pi("b");
    network.create_and(a, b);  // dead
    const auto live = network.create_or(a, b);
    network.create_po(live, "y");

    const auto cleaned = cleanup(network);
    EXPECT_EQ(cleaned.num_gates(), 1u);
    EXPECT_TRUE(ver::check_equivalence(network, cleaned));
}

TEST(CleanupTest, RemovesBuffersByDefault)
{
    logic_network network{"bufs"};
    const auto a = network.create_pi("a");
    const auto w1 = network.create_buf(a);
    const auto w2 = network.create_buf(w1);
    network.create_po(w2, "y");

    const auto cleaned = cleanup(network);
    EXPECT_EQ(cleaned.num_wires(), 0u);
    EXPECT_TRUE(ver::check_equivalence(network, cleaned));

    const auto kept = cleanup(network, true);
    EXPECT_EQ(kept.num_wires(), 2u);
}

TEST(CleanupTest, KeepsDanglingPis)
{
    logic_network network{"dangling"};
    network.create_pi("unused");
    const auto b = network.create_pi("b");
    network.create_po(b, "y");

    const auto cleaned = cleanup(network);
    EXPECT_EQ(cleaned.num_pis(), 2u);
}

TEST(PropagateConstantsTest, AndWithZeroBecomesZero)
{
    logic_network network{"c"};
    const auto a = network.create_pi("a");
    const auto g = network.create_and(a, network.get_constant(false));
    network.create_po(g, "y");

    const auto propagated = propagate_constants(network);
    EXPECT_EQ(propagated.num_gates(), 0u);
    EXPECT_TRUE(ver::check_equivalence(network, propagated));
}

TEST(PropagateConstantsTest, XorWithOneBecomesInverter)
{
    logic_network network{"c"};
    const auto a = network.create_pi("a");
    const auto g = network.create_xor(a, network.get_constant(true));
    network.create_po(g, "y");

    const auto propagated = propagate_constants(network);
    EXPECT_EQ(propagated.num_gates(), 1u);  // single inverter
    EXPECT_TRUE(ver::check_equivalence(network, propagated));
}

TEST(PropagateConstantsTest, MajWithConstantDegenerates)
{
    logic_network network{"c"};
    const auto a = network.create_pi("a");
    const auto b = network.create_pi("b");
    network.create_po(network.create_maj(a, b, network.get_constant(false)), "and_out");
    network.create_po(network.create_maj(a, b, network.get_constant(true)), "or_out");

    const auto propagated = propagate_constants(network);
    EXPECT_TRUE(ver::check_equivalence(network, propagated));
    const auto stats = collect_statistics(propagated);
    EXPECT_EQ(stats.per_type[static_cast<std::size_t>(gate_type::maj3)], 0u);
}

TEST(PropagateConstantsTest, NandWithConstantResidual)
{
    logic_network network{"c"};
    const auto a = network.create_pi("a");
    network.create_po(network.create_nand(a, network.get_constant(true)), "y");
    const auto propagated = propagate_constants(network);
    EXPECT_TRUE(ver::check_equivalence(network, propagated));
    EXPECT_EQ(propagated.num_gates(), 1u);  // inverter
}

TEST(FanoutSubstitutionTest, BoundsFanoutDegree)
{
    logic_network network{"fo"};
    const auto a = network.create_pi("a");
    const auto b = network.create_pi("b");
    const auto g = network.create_and(a, b);
    // g drives 5 users
    for (int i = 0; i < 5; ++i)
    {
        network.create_po(network.create_not(g), "y" + std::to_string(i));
    }

    const auto substituted = substitute_fanouts(network, 2);
    EXPECT_TRUE(ver::check_equivalence(network, substituted));

    // every non-fanout node drives at most 1 user; fanout nodes at most 2
    substituted.foreach_node(
        [&](const logic_network::node n)
        {
            if (substituted.is_constant(n) || substituted.is_po(n))
            {
                return;
            }
            const auto limit = substituted.type(n) == gate_type::fanout ? 2u : 1u;
            EXPECT_LE(substituted.fanout_size(n), limit) << "node " << n;
        });
}

TEST(FanoutSubstitutionTest, PiFanoutAlsoSubstituted)
{
    logic_network network{"fo"};
    const auto a = network.create_pi("a");
    const auto b = network.create_pi("b");
    network.create_po(network.create_and(a, b), "y1");
    network.create_po(network.create_or(a, b), "y2");
    network.create_po(network.create_xor(a, b), "y3");

    const auto substituted = substitute_fanouts(network);
    EXPECT_TRUE(ver::check_equivalence(network, substituted));
    EXPECT_EQ(max_fanout_degree(substituted), 2u);
    EXPECT_GT(substituted.num_wires(), 0u);
}

TEST(FanoutSubstitutionTest, DegreeBelowTwoRejected)
{
    const auto network = make_test_network();
    EXPECT_THROW(static_cast<void>(substitute_fanouts(network, 1)), precondition_error);
}

TEST(FanoutSubstitutionTest, AlreadyBoundedNetworkGetsNoFanouts)
{
    logic_network network{"chain"};
    const auto a = network.create_pi("a");
    const auto g1 = network.create_not(a);
    const auto g2 = network.create_not(g1);
    network.create_po(g2, "y");

    const auto substituted = substitute_fanouts(network);
    EXPECT_EQ(substituted.num_wires(), 0u);
    EXPECT_TRUE(ver::check_equivalence(network, substituted));
}

TEST(DecomposeMajTest, RemovesAllMajGates)
{
    const auto network = make_test_network();
    const auto decomposed = decompose_maj(network);
    const auto stats = collect_statistics(decomposed);
    EXPECT_EQ(stats.per_type[static_cast<std::size_t>(gate_type::maj3)], 0u);
    EXPECT_TRUE(ver::check_equivalence(network, decomposed));
}

TEST(ToAoiTest, OnlyInvAndOrRemain)
{
    const auto network = make_test_network();
    const auto aoi = to_aoi(network);
    aoi.foreach_gate(
        [&](const logic_network::node n)
        {
            const auto t = aoi.type(n);
            EXPECT_TRUE(t == gate_type::inv || t == gate_type::and2 || t == gate_type::or2)
                << gate_type_name(t);
        });
    EXPECT_TRUE(ver::check_equivalence(network, aoi));
}

TEST(ToAoiTest, XnorExpansionIsCorrect)
{
    logic_network network{"xnor"};
    const auto a = network.create_pi("a");
    const auto b = network.create_pi("b");
    network.create_po(network.create_xnor(a, b), "y");
    EXPECT_TRUE(ver::check_equivalence(network, to_aoi(network)));
}

TEST(NetworkUtilsTest, LevelsAndDepth)
{
    const auto network = make_test_network();
    EXPECT_EQ(depth(network), 4u);  // and -> xor/or -> maj -> po
    const auto levels = compute_levels(network);
    EXPECT_EQ(levels[network.pi_at(0)], 0u);
}

TEST(NetworkUtilsTest, SanityCheckCleanNetwork)
{
    const auto network = make_test_network();
    EXPECT_TRUE(sanity_check(network).empty());
}

TEST(NetworkUtilsTest, SanityCheckFlagsMissingPos)
{
    logic_network network{"no_pos"};
    network.create_pi("a");
    EXPECT_FALSE(sanity_check(network).empty());
}

TEST(NetworkUtilsTest, StatisticsCollectTypeCounts)
{
    const auto stats = collect_statistics(make_test_network());
    EXPECT_EQ(stats.num_pis, 3u);
    EXPECT_EQ(stats.num_pos, 2u);
    EXPECT_EQ(stats.num_gates, 4u);
    EXPECT_EQ(stats.per_type[static_cast<std::size_t>(gate_type::and2)], 1u);
    EXPECT_EQ(stats.per_type[static_cast<std::size_t>(gate_type::maj3)], 1u);
}
