#include "common/resilience.hpp"

#include "core/best_selection.hpp"
#include "core/catalog.hpp"
#include "physical_design/portfolio.hpp"
#include "telemetry/report.hpp"
#include "telemetry/telemetry.hpp"
#include "test_networks.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

using namespace mnt;
using namespace mnt::res;
using namespace mnt::test;

namespace
{

/// The fault plan is process-global: every test starts and ends disarmed.
class ResilienceTest : public ::testing::Test
{
protected:
    void SetUp() override
    {
        fault::configure("");
    }

    void TearDown() override
    {
        fault::configure("");
    }
};

guard_params no_retry()
{
    guard_params params{};
    params.retry.max_attempts = 1;
    return params;
}

pd::portfolio_params fast_params()
{
    pd::portfolio_params params{};
    params.exact_timeout_s = 2.0;
    params.nanoplacer_iterations = 200;
    params.input_orderings = 3;
    params.verify = true;
    return params;
}

}  // namespace

// ----------------------------------------------------------- deadline_clock

TEST_F(ResilienceTest, UnboundedClockNeverExpires)
{
    const deadline_clock clock;
    EXPECT_FALSE(clock.bounded());
    EXPECT_FALSE(clock.expired());
    EXPECT_TRUE(std::isinf(clock.remaining_s()));
    EXPECT_NO_THROW(clock.throw_if_expired("test"));
}

TEST_F(ResilienceTest, ElapsedClockExpires)
{
    const auto clock = deadline_clock::after(-1.0);
    EXPECT_TRUE(clock.bounded());
    EXPECT_TRUE(clock.expired());
    EXPECT_DOUBLE_EQ(clock.remaining_s(), 0.0);
    EXPECT_THROW(clock.throw_if_expired("unit"), deadline_exceeded);
}

TEST_F(ResilienceTest, StopFlagExpiresIndependentOfBudget)
{
    auto flag = std::make_shared<std::atomic<bool>>(false);
    deadline_clock clock;  // no time budget
    clock.attach_stop(flag);
    EXPECT_TRUE(clock.bounded());
    EXPECT_FALSE(clock.expired());
    flag->store(true);
    EXPECT_TRUE(clock.expired());
}

TEST_F(ResilienceTest, DeadlineGuardNoticesExpiryOnFirstPoll)
{
    const auto clock = deadline_clock::after(-1.0);
    deadline_guard guard{clock, 64};
    EXPECT_TRUE(guard.poll());  // first call always consults the clock
}

TEST_F(ResilienceTest, DeadlineGuardOnUnboundedClockIsFree)
{
    const deadline_clock clock;
    deadline_guard guard{clock, 2};
    for (int i = 0; i < 1000; ++i)
    {
        EXPECT_FALSE(guard.poll());
    }
}

// -------------------------------------------------------------- run_guarded

TEST_F(ResilienceTest, GuardedSuccessIsOk)
{
    const auto outcome = run_guarded("combo", no_retry(), [](std::size_t) {});
    EXPECT_TRUE(outcome.is_ok());
    EXPECT_EQ(outcome.kind, outcome_kind::ok);
    EXPECT_EQ(outcome.attempts, 1U);
    EXPECT_TRUE(outcome.message.empty());
    EXPECT_GE(outcome.elapsed_s, 0.0);
    EXPECT_EQ(outcome.label, "combo");
}

TEST_F(ResilienceTest, GuardedExceptionTaxonomy)
{
    const auto timeout = run_guarded("t", no_retry(),
                                     [](std::size_t) { throw deadline_exceeded{"unit"}; });
    EXPECT_EQ(timeout.kind, outcome_kind::timeout);
    EXPECT_NE(timeout.message.find("unit"), std::string::npos);

    const auto verification = run_guarded("v", no_retry(),
                                          [](std::size_t) { throw verification_error{"mismatch"}; });
    EXPECT_EQ(verification.kind, outcome_kind::verification_failed);
    EXPECT_NE(verification.message.find("mismatch"), std::string::npos);

    const auto oom = run_guarded("o", no_retry(), [](std::size_t) { throw std::bad_alloc{}; });
    EXPECT_EQ(oom.kind, outcome_kind::oom);

    const auto internal = run_guarded("i", no_retry(),
                                      [](std::size_t) { throw std::runtime_error{"boom"}; });
    EXPECT_EQ(internal.kind, outcome_kind::internal_error);
    EXPECT_EQ(internal.message, "boom");

    const auto unknown = run_guarded("u", no_retry(), [](std::size_t) { throw 42; });  // NOLINT
    EXPECT_EQ(unknown.kind, outcome_kind::internal_error);
    EXPECT_EQ(unknown.message, "unknown exception");
}

TEST_F(ResilienceTest, GuardedBodyMayReturnSoftOutcome)
{
    const auto outcome = run_guarded("soft", no_retry(),
                                     [](std::size_t) { return outcome_kind::timeout; });
    EXPECT_EQ(outcome.kind, outcome_kind::timeout);
    EXPECT_EQ(outcome.attempts, 1U);
}

TEST_F(ResilienceTest, TransientFailureIsRetriedUntilSuccess)
{
    guard_params params{};
    params.retry.max_attempts = 3;
    std::size_t calls = 0;
    const auto outcome = run_guarded("retry", params,
                                     [&](const std::size_t attempt)
                                     {
                                         ++calls;
                                         if (attempt < 2)
                                         {
                                             throw verification_error{"flaky"};
                                         }
                                     });
    EXPECT_TRUE(outcome.is_ok());
    EXPECT_EQ(outcome.attempts, 2U);
    EXPECT_EQ(calls, 2U);
}

TEST_F(ResilienceTest, RetryBudgetIsBounded)
{
    guard_params params{};
    params.retry.max_attempts = 3;
    std::size_t calls = 0;
    const auto outcome = run_guarded("exhausted", params,
                                     [&](std::size_t)
                                     {
                                         ++calls;
                                         throw verification_error{"always"};
                                     });
    EXPECT_EQ(outcome.kind, outcome_kind::verification_failed);
    EXPECT_EQ(outcome.attempts, 3U);
    EXPECT_EQ(calls, 3U);
}

TEST_F(ResilienceTest, TimeoutIsNeverRetried)
{
    guard_params params{};
    params.retry.max_attempts = 5;
    std::size_t calls = 0;
    const auto outcome = run_guarded("no-retry", params,
                                     [&](std::size_t)
                                     {
                                         ++calls;
                                         throw deadline_exceeded{"budget"};
                                     });
    EXPECT_EQ(outcome.kind, outcome_kind::timeout);
    EXPECT_EQ(calls, 1U);
}

TEST_F(ResilienceTest, HardErrorFailsFastByDefault)
{
    guard_params params{};
    params.retry.max_attempts = 5;
    std::size_t calls = 0;
    const auto outcome = run_guarded("hard", params,
                                     [&](std::size_t)
                                     {
                                         ++calls;
                                         throw std::runtime_error{"bug"};
                                     });
    EXPECT_EQ(outcome.kind, outcome_kind::internal_error);
    EXPECT_EQ(calls, 1U);
}

TEST_F(ResilienceTest, ExpiredDeadlineShortCircuitsWithoutRunningBody)
{
    guard_params params{};
    params.deadline = deadline_clock::after(-1.0);
    std::size_t calls = 0;
    const auto outcome = run_guarded("expired", params, [&](std::size_t) { ++calls; });
    EXPECT_EQ(outcome.kind, outcome_kind::timeout);
    EXPECT_EQ(outcome.attempts, 0U);
    EXPECT_EQ(calls, 0U);
}

TEST_F(ResilienceTest, BackoffIsDeterministicAndJittered)
{
    retry_policy policy{};
    policy.backoff_base_s = 1.0;
    policy.backoff_factor = 2.0;
    policy.jitter = 0.5;
    policy.seed = 42;

    const auto salt = detail::label_salt("NPR@USE");
    const auto first = backoff_delay_s(policy, 2, salt);
    EXPECT_DOUBLE_EQ(first, backoff_delay_s(policy, 2, salt));  // pure function

    // attempt 2 is jittered around backoff_base_s, attempt 3 around twice it
    EXPECT_GE(first, 0.5);
    EXPECT_LE(first, 1.5);
    const auto second = backoff_delay_s(policy, 3, salt);
    EXPECT_GE(second, 1.0);
    EXPECT_LE(second, 3.0);

    // distinct combinations draw distinct jitter
    EXPECT_NE(first, backoff_delay_s(policy, 2, detail::label_salt("exact@RES")));
}

TEST_F(ResilienceTest, OutcomeKindNamesAreStable)
{
    EXPECT_STREQ(outcome_kind_name(outcome_kind::ok), "ok");
    EXPECT_STREQ(outcome_kind_name(outcome_kind::timeout), "timeout");
    EXPECT_STREQ(outcome_kind_name(outcome_kind::verification_failed), "verification_failed");
    EXPECT_STREQ(outcome_kind_name(outcome_kind::oom), "oom");
    EXPECT_STREQ(outcome_kind_name(outcome_kind::internal_error), "internal_error");
}

// ---------------------------------------------------------- fault injection

TEST_F(ResilienceTest, FaultSpecParsing)
{
    EXPECT_FALSE(fault::enabled());
    fault::configure("verify.check:0.5:7,route.search");
    EXPECT_TRUE(fault::enabled());
    const auto spec = fault::current_spec();
    EXPECT_NE(spec.find("verify.check"), std::string::npos);
    EXPECT_NE(spec.find("route.search"), std::string::npos);
    fault::configure("");
    EXPECT_FALSE(fault::enabled());
}

TEST_F(ResilienceTest, MalformedFaultSpecsAreRejected)
{
    EXPECT_THROW(fault::configure("site:not-a-number"), mnt_error);
    EXPECT_THROW(fault::configure("site:2.0"), mnt_error);   // probability > 1
    EXPECT_THROW(fault::configure("site:-0.5"), mnt_error);  // probability < 0
    EXPECT_THROW(fault::configure(":1"), mnt_error);         // empty site name
    EXPECT_FALSE(fault::enabled());                          // nothing was armed
}

TEST_F(ResilienceTest, FaultFiringIsDeterministic)
{
    fault::configure("always.on:1:1");
    for (int i = 0; i < 10; ++i)
    {
        EXPECT_TRUE(fault::fire("always.on"));
    }
    EXPECT_FALSE(fault::fire("other.site"));

    fault::configure("never.on:0:1");
    for (int i = 0; i < 10; ++i)
    {
        EXPECT_FALSE(fault::fire("never.on"));
    }
}

TEST_F(ResilienceTest, MaybeFailThrowsInjectedFault)
{
    fault::configure("unit.site");
    EXPECT_THROW(fault::maybe_fail("unit.site"), fault::injected_fault);
    EXPECT_NO_THROW(fault::maybe_fail("unrelated.site"));
}

// ------------------------------------------- portfolio under fault injection

TEST_F(ResilienceTest, PortfolioSurvivesExactFaults)
{
    // every exact invocation dies; all other combinations must still deliver
    fault::configure("exact.search");
    const auto run = pd::generate_portfolio(mux21(), pd::portfolio_flavor::cartesian, fast_params());

    ASSERT_FALSE(run.results.empty());
    EXPECT_FALSE(std::any_of(run.results.cbegin(), run.results.cend(),
                             [](const pd::layout_result& r) { return r.algorithm == "exact"; }));
    EXPECT_TRUE(std::any_of(run.results.cbegin(), run.results.cend(),
                            [](const pd::layout_result& r) { return r.algorithm == "ortho"; }));
    EXPECT_TRUE(std::any_of(run.results.cbegin(), run.results.cend(),
                            [](const pd::layout_result& r) { return r.algorithm == "NPR"; }));

    // the failure manifest lists each failed exact combination with detail
    const auto failures = run.failures();
    ASSERT_FALSE(failures.empty());
    for (const auto& f : failures)
    {
        EXPECT_EQ(f.kind, outcome_kind::internal_error);
        EXPECT_NE(f.label.find("exact@"), std::string::npos);
        EXPECT_NE(f.message.find("exact.search"), std::string::npos);
        EXPECT_GE(f.elapsed_s, 0.0);
        EXPECT_GE(f.attempts, 1U);
    }

    // healthy + failed outcomes cover every attempted combination
    const auto ok_count = static_cast<std::size_t>(
        std::count_if(run.outcomes.cbegin(), run.outcomes.cend(),
                      [](const combo_outcome& o) { return o.is_ok(); }));
    EXPECT_EQ(ok_count + failures.size(), run.outcomes.size());

    // best_by_area still picks the area-minimal healthy layout
    const auto* best = pd::best_by_area(run.results);
    ASSERT_NE(best, nullptr);
    for (const auto& r : run.results)
    {
        EXPECT_LE(best->layout.area(), r.layout.area());
    }
}

TEST_F(ResilienceTest, VerificationFaultsAreRetriedThenReported)
{
    // the verifier reports a (injected) mismatch on every check: all
    // combinations fail as verification_failed after the full retry budget
    fault::configure("verify.check");
    auto params = fast_params();
    params.max_attempts = 2;
    params.try_exact = false;  // keep the run fast
    params.try_nanoplacer = false;
    params.try_input_ordering = false;
    params.try_plo = false;
    const auto run = pd::generate_portfolio(mux21(), pd::portfolio_flavor::cartesian, params);

    EXPECT_TRUE(run.results.empty());
    ASSERT_FALSE(run.outcomes.empty());
    for (const auto& o : run.outcomes)
    {
        EXPECT_EQ(o.kind, outcome_kind::verification_failed);
        EXPECT_EQ(o.attempts, 2U) << o.label;
        EXPECT_NE(o.message.find("verify.check"), std::string::npos);
    }
}

TEST_F(ResilienceTest, ExpiredGlobalDeadlineYieldsTimeoutManifest)
{
    auto params = fast_params();
    params.deadline_s = 1e-9;  // expires before the first combination starts
    const auto run = pd::generate_portfolio(mux21(), pd::portfolio_flavor::cartesian, params);

    EXPECT_TRUE(run.results.empty());
    ASSERT_FALSE(run.outcomes.empty());
    for (const auto& o : run.outcomes)
    {
        EXPECT_EQ(o.kind, outcome_kind::timeout) << o.label;
    }
}

TEST_F(ResilienceTest, PartialResultsSurviveMidRunDeadline)
{
    // a tight-but-nonzero budget: whatever completed before expiry is kept,
    // everything after reports timeout — and nothing throws
    auto params = fast_params();
    params.deadline_s = 0.05;
    const auto run = pd::generate_portfolio(half_adder(), pd::portfolio_flavor::cartesian, params);

    for (const auto& o : run.outcomes)
    {
        EXPECT_TRUE(o.kind == outcome_kind::ok || o.kind == outcome_kind::timeout) << o.label;
    }
    // results only stem from ok outcomes (each combination yields <= 1 layout)
    const auto ok_count = static_cast<std::size_t>(std::count_if(
        run.outcomes.cbegin(), run.outcomes.cend(), [](const combo_outcome& o) { return o.is_ok(); }));
    EXPECT_LE(run.results.size(), ok_count);
}

TEST_F(ResilienceTest, FailuresSurfaceAsTelemetryEvents)
{
    tel::set_enabled(true);
    tel::registry::instance().reset();
    fault::configure("exact.search");

    const auto run = pd::generate_portfolio(mux21(), pd::portfolio_flavor::cartesian, fast_params());
    const auto report = tel::capture_report();

    tel::registry::instance().reset();
    tel::set_enabled(false);

    ASSERT_FALSE(run.failures().empty());
    const auto failed_events = static_cast<std::size_t>(
        std::count_if(report.events.cbegin(), report.events.cend(),
                      [](const tel::event_record& e) { return e.category == "combo_failure"; }));
    EXPECT_EQ(failed_events, run.failures().size());
    for (const auto& e : report.events)
    {
        if (e.category != "combo_failure")
        {
            continue;
        }
        EXPECT_EQ(e.kind, "internal_error");
        EXPECT_FALSE(e.label.empty());
        EXPECT_FALSE(e.message.empty());
    }

    std::uint64_t failed_counter = 0;
    for (const auto& c : report.counters)
    {
        if (c.name == "portfolio.combos_failed")
        {
            failed_counter = c.value;
        }
    }
    EXPECT_EQ(failed_counter, run.failures().size());

    // the failure manifest round-trips into the report JSON
    const auto json = tel::report_json_string(report);
    EXPECT_NE(json.find("\"combo_failure\""), std::string::npos);
    EXPECT_NE(json.find("\"internal_error\""), std::string::npos);
}

TEST_F(ResilienceTest, CatalogManifestAndBestSelectionUnderInjection)
{
    fault::configure("exact.search");
    const auto network = mux21();
    const auto run = pd::generate_portfolio(network, pd::portfolio_flavor::cartesian, fast_params());
    ASSERT_FALSE(run.results.empty());
    ASSERT_FALSE(run.failures().empty());

    cat::catalog catalog;
    catalog.add_network("Trindade16", "mux21", network);
    for (const auto& r : run.results)
    {
        cat::layout_record record{};
        record.benchmark_set = "Trindade16";
        record.benchmark_name = "mux21";
        record.library = cat::gate_library_kind::qca_one;
        record.clocking = r.clocking;
        record.algorithm = r.algorithm;
        record.optimizations = r.optimizations;
        record.runtime = r.runtime;
        record.layout = r.layout;
        catalog.add_layout(std::move(record));
    }
    for (const auto& f : run.failures())
    {
        catalog.add_failure({"Trindade16", "mux21", cat::gate_library_kind::qca_one, f.label,
                             outcome_kind_name(f.kind), f.message, f.elapsed_s, f.attempts});
    }

    EXPECT_EQ(catalog.num_layouts(), run.results.size());
    EXPECT_EQ(catalog.num_failures(), run.failures().size());

    // best selection operates on the healthy layouts only
    const auto best = cat::select_best(catalog, "Trindade16", "mux21", cat::gate_library_kind::qca_one);
    ASSERT_NE(best.best, nullptr);
    EXPECT_NE(best.best->algorithm, "exact");
    for (const auto& r : catalog.layouts())
    {
        EXPECT_LE(best.best->area, r.area);
    }
}
