#include "network/gate_type.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

using namespace mnt::ntk;

TEST(GateTypeTest, ArityOfNullaryTypes)
{
    EXPECT_EQ(gate_arity(gate_type::none), 0);
    EXPECT_EQ(gate_arity(gate_type::const0), 0);
    EXPECT_EQ(gate_arity(gate_type::const1), 0);
    EXPECT_EQ(gate_arity(gate_type::pi), 0);
}

TEST(GateTypeTest, ArityOfUnaryTypes)
{
    EXPECT_EQ(gate_arity(gate_type::po), 1);
    EXPECT_EQ(gate_arity(gate_type::buf), 1);
    EXPECT_EQ(gate_arity(gate_type::fanout), 1);
    EXPECT_EQ(gate_arity(gate_type::inv), 1);
}

TEST(GateTypeTest, ArityOfBinaryAndTernaryTypes)
{
    EXPECT_EQ(gate_arity(gate_type::and2), 2);
    EXPECT_EQ(gate_arity(gate_type::xnor2), 2);
    EXPECT_EQ(gate_arity(gate_type::lt2), 2);
    EXPECT_EQ(gate_arity(gate_type::maj3), 3);
}

TEST(GateTypeTest, EvaluateBasicGates)
{
    EXPECT_FALSE(evaluate_gate(gate_type::and2, false, true));
    EXPECT_TRUE(evaluate_gate(gate_type::and2, true, true));
    EXPECT_TRUE(evaluate_gate(gate_type::or2, false, true));
    EXPECT_TRUE(evaluate_gate(gate_type::xor2, true, false));
    EXPECT_FALSE(evaluate_gate(gate_type::xor2, true, true));
    EXPECT_TRUE(evaluate_gate(gate_type::inv, false));
    EXPECT_TRUE(evaluate_gate(gate_type::buf, true));
}

TEST(GateTypeTest, EvaluateComparisons)
{
    // lt = ~a & b
    EXPECT_TRUE(evaluate_gate(gate_type::lt2, false, true));
    EXPECT_FALSE(evaluate_gate(gate_type::lt2, true, true));
    // gt = a & ~b
    EXPECT_TRUE(evaluate_gate(gate_type::gt2, true, false));
    // le = ~a | b
    EXPECT_TRUE(evaluate_gate(gate_type::le2, false, false));
    EXPECT_FALSE(evaluate_gate(gate_type::le2, true, false));
    // ge = a | ~b
    EXPECT_TRUE(evaluate_gate(gate_type::ge2, false, false));
    EXPECT_FALSE(evaluate_gate(gate_type::ge2, false, true));
}

TEST(GateTypeTest, EvaluateMajority)
{
    EXPECT_FALSE(evaluate_gate(gate_type::maj3, false, false, true));
    EXPECT_TRUE(evaluate_gate(gate_type::maj3, true, false, true));
    EXPECT_TRUE(evaluate_gate(gate_type::maj3, true, true, true));
}

TEST(GateTypeTest, WordEvaluationMatchesScalar)
{
    // exhaustively compare scalar vs word evaluation on all 2/3-input types
    const std::vector<gate_type> types = {gate_type::and2, gate_type::nand2, gate_type::or2,  gate_type::nor2,
                                          gate_type::xor2, gate_type::xnor2, gate_type::lt2,  gate_type::gt2,
                                          gate_type::le2,  gate_type::ge2,   gate_type::maj3, gate_type::inv,
                                          gate_type::buf};
    for (const auto t : types)
    {
        for (int a = 0; a < 2; ++a)
        {
            for (int b = 0; b < 2; ++b)
            {
                for (int c = 0; c < 2; ++c)
                {
                    const auto scalar = evaluate_gate(t, a != 0, b != 0, c != 0);
                    const auto word = evaluate_gate_word(t, a != 0 ? ~0ull : 0ull, b != 0 ? ~0ull : 0ull,
                                                         c != 0 ? ~0ull : 0ull);
                    EXPECT_EQ(scalar, (word & 1ull) != 0ull)
                        << gate_type_name(t) << " a=" << a << " b=" << b << " c=" << c;
                }
            }
        }
    }
}

TEST(GateTypeTest, NameRoundTrip)
{
    for (std::size_t i = 0; i < num_gate_types; ++i)
    {
        const auto t = static_cast<gate_type>(i);
        EXPECT_EQ(gate_type_from_name(std::string{gate_type_name(t)}), t);
    }
}

TEST(GateTypeTest, NameAliases)
{
    EXPECT_EQ(gate_type_from_name("not"), gate_type::inv);
    EXPECT_EQ(gate_type_from_name("buffer"), gate_type::buf);
    EXPECT_EQ(gate_type_from_name("maj3"), gate_type::maj3);
    EXPECT_EQ(gate_type_from_name("garbage"), gate_type::none);
}

TEST(GateTypeTest, Classification)
{
    EXPECT_TRUE(is_logic_gate(gate_type::and2));
    EXPECT_TRUE(is_logic_gate(gate_type::inv));
    EXPECT_FALSE(is_logic_gate(gate_type::buf));
    EXPECT_FALSE(is_logic_gate(gate_type::fanout));
    EXPECT_FALSE(is_logic_gate(gate_type::pi));
    EXPECT_TRUE(is_wire_like(gate_type::buf));
    EXPECT_TRUE(is_wire_like(gate_type::fanout));
    EXPECT_FALSE(is_wire_like(gate_type::and2));
    EXPECT_TRUE(is_valid_gate(gate_type::pi));
    EXPECT_FALSE(is_valid_gate(gate_type::none));
}
