/// \file test_properties_io.cpp
/// \brief Property suites over the readers and writers: accepted .fgl
///        documents reach a write→read→write byte fixpoint, hostile
///        documents either parse or raise typed errors (never crash),
///        and Verilog round-trips preserve structure (primitives style)
///        and function (assignments style).

#include "proptest_gtest.hpp"

#include "common/resilience.hpp"
#include "io/fgl_reader.hpp"
#include "io/fgl_writer.hpp"
#include "io/verilog_writer.hpp"
#include "physical_design/ortho.hpp"
#include "testing/generators.hpp"
#include "testing/oracles.hpp"
#include "testing/shrink.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <utility>

namespace
{

using namespace mnt;

/// Document properties share the same shape: generate a (possibly hostile)
/// document, run a reader oracle, shrink at the byte level.
pbt::property<std::string> document_property(
    std::function<std::string(pbt::rng&)> generate,
    std::function<pbt::oracle_result(const std::string&, const res::deadline_clock&)> check)
{
    pbt::property<std::string> prop{};
    prop.generate = std::move(generate);
    prop.check = std::move(check);
    prop.shrink = [](std::string document, const std::function<bool(const std::string&)>& still_fails)
    { return pbt::shrink_bytes(std::move(document), still_fails); };
    prop.show = [](const std::string& document) { return document; };
    return prop;
}

TEST(FglFixpoint, OrthoLayoutsRoundTripByteIdentically)
{
    const auto config = pbt::current_test_config("io.fgl.fixpoint", 200);
    pbt::property<ntk::logic_network> prop{};
    prop.generate = [](pbt::rng& random) { return pbt::random_network(random); };
    prop.check = [](const ntk::logic_network& network, const res::deadline_clock& deadline)
    {
        if (pbt::has_constant_po(network))
        {
            return pbt::oracle_result::pass();  // shrink probes may fold
        }
        pd::ortho_params params{};
        params.deadline = deadline;
        return pbt::check_fgl_fixpoint(pd::ortho(network, params));
    };
    prop.shrink = [](ntk::logic_network network, const std::function<bool(const ntk::logic_network&)>& still_fails)
    { return pbt::shrink_network(std::move(network), still_fails); };
    prop.show = [](const ntk::logic_network& network)
    { return io::write_verilog_string(network, io::verilog_style::primitives); };
    MNT_RUN_PROPERTY(config, prop);
}

TEST(FglReader, HostileDocumentsParseOrRaiseTypedErrors)
{
    const auto config = pbt::current_test_config("io.fgl.hostile", 200);
    MNT_RUN_PROPERTY(config, document_property([](pbt::rng& random) { return pbt::random_fgl_document(random); },
                                               [](const std::string& document, const res::deadline_clock&)
                                               { return pbt::check_fgl_document(document); }));
}

TEST(FglReader, HeavilyMutatedDocumentsNeverCrash)
{
    // crank mutation count + scratch probability: deep hostile territory
    const auto config = pbt::current_test_config("io.fgl.hostile_deep", 200);
    pbt::document_spec spec{};
    spec.min_mutations = 4;
    spec.max_mutations = 16;
    spec.scratch_percent = 40;
    MNT_RUN_PROPERTY(config,
                     document_property([spec](pbt::rng& random) { return pbt::random_fgl_document(random, spec); },
                                       [](const std::string& document, const res::deadline_clock&)
                                       { return pbt::check_fgl_document(document); }));
}

TEST(VerilogReader, HostileDocumentsParseOrRaiseTypedErrors)
{
    const auto config = pbt::current_test_config("io.verilog.hostile", 200);
    MNT_RUN_PROPERTY(config,
                     document_property([](pbt::rng& random) { return pbt::random_verilog_document(random); },
                                       [](const std::string& document, const res::deadline_clock&)
                                       { return pbt::check_verilog_document(document); }));
}

TEST(VerilogRoundtrip, BothStylesPreserveTheNetwork)
{
    const auto config = pbt::current_test_config("io.verilog.roundtrip", 200);
    pbt::property<ntk::logic_network> prop{};
    prop.generate = [](pbt::rng& random) { return pbt::random_network(random); };
    prop.check = [](const ntk::logic_network& network, const res::deadline_clock&)
    { return pbt::check_verilog_roundtrip(network); };
    prop.shrink = [](ntk::logic_network network, const std::function<bool(const ntk::logic_network&)>& still_fails)
    { return pbt::shrink_network(std::move(network), still_fails); };
    prop.show = [](const ntk::logic_network& network)
    { return io::write_verilog_string(network, io::verilog_style::primitives); };
    MNT_RUN_PROPERTY(config, prop);
}

}  // namespace
