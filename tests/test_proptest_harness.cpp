/// \file test_proptest_harness.cpp
/// \brief Self-tests of the property harness: seed derivation, generator
///        determinism, shrinking, failure reporting, replay, fault injection
///        and per-case deadlines. These tests exercise the machinery the
///        test_properties_* suites rely on.

#include "proptest_gtest.hpp"

#include "common/resilience.hpp"
#include "io/fgl_writer.hpp"
#include "testing/generators.hpp"
#include "testing/oracles.hpp"
#include "testing/proptest.hpp"
#include "testing/shrink.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <set>
#include <string>
#include <thread>
#include <vector>

namespace
{

using namespace mnt;

pbt::proptest_config plain_config(std::string property, const std::size_t cases)
{
    pbt::proptest_config config{};
    config.property = std::move(property);
    config.cases = cases;
    config.binary = "test_proptest_harness";
    config.gtest_filter = "Suite.Test";
    return config;
}

/// An integer property: fails iff the value is >= threshold.
pbt::property<std::uint64_t> threshold_property(const std::uint64_t threshold)
{
    pbt::property<std::uint64_t> prop{};
    prop.generate = [](pbt::rng& random) { return random.below(1000); };
    prop.check = [threshold](const std::uint64_t& value, const res::deadline_clock&)
    {
        return value < threshold ? pbt::oracle_result::pass() :
                                   pbt::oracle_result::fail("value " + std::to_string(value) + " >= threshold");
    };
    prop.show = [](const std::uint64_t& value) { return std::to_string(value); };
    return prop;
}

TEST(SeedDerivation, DeterministicAndDistinct)
{
    const auto a = pbt::derive_case_seed(1, "prop.a", 0);
    EXPECT_EQ(a, pbt::derive_case_seed(1, "prop.a", 0));

    // distinct across index, property name and master seed
    std::set<std::uint64_t> seeds{};
    for (std::size_t index = 0; index < 100; ++index)
    {
        seeds.insert(pbt::derive_case_seed(1, "prop.a", index));
    }
    seeds.insert(pbt::derive_case_seed(1, "prop.b", 0));
    seeds.insert(pbt::derive_case_seed(2, "prop.a", 0));
    EXPECT_EQ(seeds.size(), 102U);
}

TEST(SeedDerivation, RngIsSplitmix64)
{
    // lock the PRNG's output: the replay contract depends on these bytes
    pbt::rng random{0};
    EXPECT_EQ(random.next(), 0xe220a8397b1dcdafULL);
    EXPECT_EQ(random.next(), 0x6e789e6aa1b965f4ULL);
}

TEST(Generators, NetworkDeterministicPerSeed)
{
    pbt::rng a{42};
    pbt::rng b{42};
    const auto na = pbt::random_network(a);
    const auto nb = pbt::random_network(b);
    EXPECT_TRUE(na.structurally_equal(nb));
    EXPECT_GE(na.num_pis(), 2U);
    EXPECT_GE(na.num_pos(), 1U);
}

TEST(Generators, DocumentsDeterministicPerSeed)
{
    pbt::rng a{7};
    pbt::rng b{7};
    EXPECT_EQ(pbt::random_fgl_document(a), pbt::random_fgl_document(b));

    pbt::rng c{9};
    pbt::rng d{9};
    EXPECT_EQ(pbt::random_verilog_document(c), pbt::random_verilog_document(d));

    pbt::rng e{11};
    pbt::rng f{11};
    EXPECT_EQ(pbt::random_http_request(e), pbt::random_http_request(f));
}

TEST(Generators, LayoutOpsDeterministicPerSeed)
{
    pbt::rng a{3};
    pbt::rng b{3};
    const auto oa = pbt::random_layout_ops(a, 40, 6);
    const auto ob = pbt::random_layout_ops(b, 40, 6);
    EXPECT_EQ(pbt::layout_ops_to_string(oa), pbt::layout_ops_to_string(ob));
    EXPECT_EQ(oa.size(), 40U);
}

TEST(Harness, PassingPropertyRunsAllCases)
{
    const auto config = plain_config("harness.pass", 50);
    const auto result = pbt::run_property(config, threshold_property(1001));
    EXPECT_TRUE(result.passed());
    EXPECT_EQ(result.cases_run, 50U);
    EXPECT_TRUE(result.report().empty());
}

TEST(Harness, FailureCarriesSeedAndReplay)
{
    const auto config = plain_config("harness.fail", 200);
    const auto result = pbt::run_property(config, threshold_property(10));
    ASSERT_FALSE(result.passed());
    const auto& failure = *result.failure;
    EXPECT_NE(failure.reason.find(">= threshold"), std::string::npos);
    EXPECT_NE(failure.replay.find("MNT_PROPTEST_SEED=0x"), std::string::npos);
    EXPECT_NE(failure.replay.find("MNT_PROPTEST_CASES=1"), std::string::npos);
    EXPECT_NE(failure.replay.find("./tests/test_proptest_harness"), std::string::npos);
    EXPECT_NE(failure.replay.find("--gtest_filter=Suite.Test"), std::string::npos);

    const auto report = result.report();
    EXPECT_NE(report.find("replay:"), std::string::npos);
    EXPECT_NE(report.find(failure.replay), std::string::npos);
}

TEST(Harness, ReplaySingleReproducesTheFailingCase)
{
    const auto config = plain_config("harness.replay", 200);
    const auto first = pbt::run_property(config, threshold_property(10));
    ASSERT_FALSE(first.passed());

    // what the printed command does: master seed = case seed, one case
    auto replay = plain_config("harness.replay", 1);
    replay.seed = first.failure->case_seed;
    replay.replay_single = true;
    const auto second = pbt::run_property(replay, threshold_property(10));
    ASSERT_FALSE(second.passed());
    EXPECT_EQ(second.failure->reason, first.failure->reason);
    EXPECT_EQ(second.failure->case_index, 0U);
}

TEST(Harness, FromEnvironmentReadsSeedAndCases)
{
    ::setenv("MNT_PROPTEST_SEED", "0xdeadbeef", 1);
    ::setenv("MNT_PROPTEST_CASES", "1", 1);
    const auto replay = pbt::proptest_config::from_environment("env.prop", 200);
    EXPECT_EQ(replay.seed, 0xdeadbeefULL);
    EXPECT_EQ(replay.cases, 1U);
    EXPECT_TRUE(replay.replay_single);

    ::setenv("MNT_PROPTEST_CASES", "25", 1);
    const auto many = pbt::proptest_config::from_environment("env.prop", 200);
    EXPECT_EQ(many.cases, 25U);
    EXPECT_FALSE(many.replay_single);  // >1 case: seeds are derived again

    ::unsetenv("MNT_PROPTEST_SEED");
    ::unsetenv("MNT_PROPTEST_CASES");
    const auto defaults = pbt::proptest_config::from_environment("env.prop", 200);
    EXPECT_EQ(defaults.cases, 200U);
    EXPECT_EQ(defaults.seed, pbt::proptest_config::default_seed);
    EXPECT_FALSE(defaults.replay_single);
}

TEST(Harness, ShrinkMinimizesTheReproducer)
{
    auto prop = threshold_property(10);
    prop.shrink = [](std::uint64_t value, const std::function<bool(const std::uint64_t&)>& still_fails)
    {
        // bisect towards the smallest still-failing value
        while (value > 0 && still_fails(value / 2))
        {
            value /= 2;
        }
        while (value > 0 && still_fails(value - 1))
        {
            --value;
        }
        return value;
    };
    const auto result = pbt::run_property(plain_config("harness.shrink", 100), prop);
    ASSERT_FALSE(result.passed());
    EXPECT_EQ(result.failure->reproducer, "10");  // minimal value >= threshold
    EXPECT_NE(result.failure->shrunk_reason.find("value 10"), std::string::npos);
}

TEST(Harness, GeneratorExceptionIsReportedWithSeed)
{
    pbt::property<int> prop{};
    prop.generate = [](pbt::rng&) -> int { throw std::runtime_error{"boom"}; };
    prop.check = [](const int&, const res::deadline_clock&) { return pbt::oracle_result::pass(); };
    const auto result = pbt::run_property(plain_config("harness.genthrow", 5), prop);
    ASSERT_FALSE(result.passed());
    EXPECT_NE(result.failure->reason.find("generator threw: boom"), std::string::npos);
    EXPECT_NE(result.failure->replay.find("MNT_PROPTEST_SEED=0x"), std::string::npos);
}

TEST(Harness, CaseDeadlineMapsToTimeoutFailure)
{
    pbt::property<int> prop{};
    prop.generate = [](pbt::rng&) { return 0; };
    prop.check = [](const int&, const res::deadline_clock& deadline)
    {
        while (!deadline.expired())
        {
            std::this_thread::sleep_for(std::chrono::milliseconds{5});
        }
        deadline.throw_if_expired("harness.slow");
        return pbt::oracle_result::pass();
    };
    auto config = plain_config("harness.slow", 1);
    config.case_deadline_s = 0.05;
    const auto result = pbt::run_property(config, prop);
    ASSERT_FALSE(result.passed());
    EXPECT_NE(result.failure->reason.find("timeout"), std::string::npos);
}

TEST(Harness, FaultInjectionForcesShrunkFailureReport)
{
    // MNT_FAULT_INJECT=proptest.case end-to-end: forced failure, shrink
    // still fails (the fault fires on every check), full report renders.
    res::fault::configure("proptest.case");

    pbt::property<std::vector<int>> prop{};
    prop.generate = [](pbt::rng& random)
    {
        std::vector<int> values(static_cast<std::size_t>(random.range(4, 12)));
        for (auto& v : values)
        {
            v = static_cast<int>(random.below(100));
        }
        return values;
    };
    prop.check = [](const std::vector<int>&, const res::deadline_clock&) { return pbt::oracle_result::pass(); };
    prop.shrink = [](std::vector<int> values, const std::function<bool(const std::vector<int>&)>& still_fails)
    { return pbt::shrink_sequence<int>(std::move(values), still_fails, 100); };
    prop.show = [](const std::vector<int>& values) { return "sequence of " + std::to_string(values.size()); };

    const auto result = pbt::run_property(plain_config("harness.fault", 10), prop);
    res::fault::configure("");  // disarm before asserting

    ASSERT_FALSE(result.passed());
    EXPECT_EQ(result.failure->case_index, 0U);  // fires immediately
    EXPECT_NE(result.failure->reason.find("injected fault at proptest.case"), std::string::npos);
    // the fault fires on every shrink probe too, so the sequence collapses
    EXPECT_EQ(result.failure->reproducer, "sequence of 0");
    const auto report = result.report();
    EXPECT_NE(report.find("shrunk reproducer"), std::string::npos);
    EXPECT_NE(report.find("replay: MNT_PROPTEST_SEED=0x"), std::string::npos);
}

TEST(Shrink, BytesFindMinimalWitness)
{
    const auto contains_x = [](const std::string& s) { return s.find('x') != std::string::npos; };
    const auto shrunk = pbt::shrink_bytes("aaaaaaaaaaaaaaaaxaaaaaaaaaaaaaa", contains_x);
    EXPECT_EQ(shrunk, "x");
}

TEST(Shrink, BytesRespectBudget)
{
    std::size_t calls = 0;
    const auto pred = [&calls](const std::string& s)
    {
        ++calls;
        return s.find('x') != std::string::npos;
    };
    const auto shrunk = pbt::shrink_bytes(std::string(512, 'a') + "x", pred, 10);
    EXPECT_LE(calls, 10U);
    EXPECT_NE(shrunk.find('x'), std::string::npos);  // never commits a passing candidate
}

TEST(Shrink, SequenceFindsMinimalWitness)
{
    std::vector<int> input{1, 2, 3, 7, 4, 5, 6, 8, 9, 10};
    const auto has_seven = [](const std::vector<int>& v)
    { return std::find(v.begin(), v.end(), 7) != v.end(); };
    const auto shrunk = pbt::shrink_sequence<int>(std::move(input), has_seven);
    ASSERT_EQ(shrunk.size(), 1U);
    EXPECT_EQ(shrunk.front(), 7);
}

TEST(Shrink, NetworkDropsIrrelevantNodes)
{
    // a wide network whose failure only depends on having an XOR gate:
    // shrinking must strip the unrelated gates and surplus interface
    pbt::rng random{2024};
    pbt::network_spec spec{};
    spec.min_gates = 12;
    spec.max_gates = 16;
    spec.allow_xor = true;
    auto net = pbt::random_network(random, spec);

    const auto has_xor = [](const ntk::logic_network& candidate)
    {
        for (ntk::logic_network::node n = 0; n < candidate.size(); ++n)
        {
            if (candidate.type(n) == ntk::gate_type::xor2 || candidate.type(n) == ntk::gate_type::xnor2)
            {
                return true;
            }
        }
        return false;
    };
    if (!has_xor(net))
    {
        GTEST_SKIP() << "seed produced no XOR gate";
    }
    const auto before = net.num_gates();
    const auto shrunk = pbt::shrink_network(std::move(net), has_xor);
    EXPECT_TRUE(has_xor(shrunk));
    EXPECT_LE(shrunk.num_gates(), before);
    EXPECT_LE(shrunk.num_gates(), 3U);  // greedy deletion gets close to minimal
}

TEST(Oracles, PassAndFailCarryReasons)
{
    const auto ok = pbt::oracle_result::pass();
    EXPECT_TRUE(ok.passed);
    EXPECT_TRUE(static_cast<bool>(ok));
    const auto bad = pbt::oracle_result::fail("because");
    EXPECT_FALSE(bad.passed);
    EXPECT_EQ(bad.reason, "because");
}

TEST(Glue, CurrentTestConfigNamesThisBinaryAndTest)
{
    const auto config = pbt::current_test_config("glue.prop", 33);
    EXPECT_EQ(config.cases, 33U);
    EXPECT_EQ(config.binary, "test_proptest_harness");
    EXPECT_EQ(config.gtest_filter, "Glue.CurrentTestConfigNamesThisBinaryAndTest");
    const auto replay = pbt::replay_command(config, 0xabULL);
    EXPECT_NE(replay.find("MNT_PROPTEST_SEED=0xab "), std::string::npos);
    EXPECT_NE(replay.find("./tests/test_proptest_harness --gtest_filter=Glue."), std::string::npos);
}

}  // namespace
