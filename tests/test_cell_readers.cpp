#include "io/cell_readers.hpp"

#include "common/types.hpp"
#include "gate_library/bestagon.hpp"
#include "gate_library/qca_one.hpp"
#include "io/qca_writer.hpp"
#include "io/sqd_writer.hpp"
#include "network/transforms.hpp"
#include "physical_design/hexagonalization.hpp"
#include "physical_design/ortho.hpp"
#include "test_networks.hpp"

#include <gtest/gtest.h>

using namespace mnt;
using namespace mnt::io;
using namespace mnt::test;

TEST(QcaReaderTest, RoundTripPreservesCells)
{
    const auto layout = pd::ortho(ntk::to_aoi(mux21()));
    const auto cells = gl::apply_qca_one(layout);
    const auto reread = read_qca_string(write_qca_string(cells));

    EXPECT_EQ(reread.technology(), gl::cell_technology::qca);
    EXPECT_EQ(reread.layout_name(), cells.layout_name());
    EXPECT_EQ(reread.num_cells(), cells.num_cells());
    EXPECT_EQ(reread.num_input_cells(), cells.num_input_cells());
    EXPECT_EQ(reread.num_output_cells(), cells.num_output_cells());

    cells.foreach_cell(
        [&](const lyt::coordinate& c, const gl::cell& payload, const std::uint8_t zone)
        {
            ASSERT_FALSE(reread.is_empty_cell(c)) << c.to_string();
            EXPECT_EQ(reread.get_cell(c).kind, payload.kind) << c.to_string();
            EXPECT_EQ(reread.get_cell(c).name, payload.name) << c.to_string();
            EXPECT_EQ(reread.clock_zone_of(c), zone) << c.to_string();
        });
}

TEST(QcaReaderTest, FixedPolarizationsDistinguished)
{
    ntk::logic_network network{"ao"};
    const auto a = network.create_pi("a");
    const auto b = network.create_pi("b");
    network.create_po(network.create_and(a, b), "y0");
    const auto cells = gl::apply_qca_one(pd::ortho(network));
    const auto reread = read_qca_string(write_qca_string(cells));

    std::size_t fixed0 = 0;
    reread.foreach_cell([&](const lyt::coordinate&, const gl::cell& c, std::uint8_t)
                        { fixed0 += c.kind == gl::cell_kind::fixed_0 ? 1 : 0; });
    EXPECT_EQ(fixed0, 1u);
}

TEST(QcaReaderTest, MalformedDocumentsRejected)
{
    EXPECT_THROW(static_cast<void>(read_qca_string("[TYPE:QCADCell]\nx=0\n")), parse_error);   // unterminated
    EXPECT_THROW(static_cast<void>(read_qca_string("garbage line\n")), parse_error);           // no key=value
    EXPECT_THROW(static_cast<void>(read_qca_string("[TYPE:QCADCell]\nx=abc\n[#TYPE:QCADCell]\n")), parse_error);
    EXPECT_THROW(static_cast<void>(read_qca_string("[TYPE:QCADCell]\nclock=7\n[#TYPE:QCADCell]\n")), parse_error);
}

TEST(SqdReaderTest, RoundTripPreservesDots)
{
    const auto hex = pd::hexagonalization(pd::ortho(mux21()));
    const auto cells = gl::apply_bestagon(hex);
    const auto reread = read_sqd_string(write_sqd_string(cells));

    EXPECT_EQ(reread.technology(), gl::cell_technology::sidb);
    EXPECT_EQ(reread.num_cells(), cells.num_cells());
    // positions survive exactly
    cells.foreach_cell([&](const lyt::coordinate& c, const gl::cell&, std::uint8_t)
                       { EXPECT_FALSE(reread.is_empty_cell(c)) << c.to_string(); });
    // named pads survive (role reconstruction is heuristic, so compare count)
    EXPECT_EQ(reread.num_input_cells() + reread.num_output_cells(),
              cells.num_input_cells() + cells.num_output_cells());
}

TEST(SqdReaderTest, MalformedDocumentsRejected)
{
    EXPECT_THROW(static_cast<void>(read_sqd_string("<nope/>")), parse_error);
    EXPECT_THROW(static_cast<void>(read_sqd_string("<siqad><program/></siqad>")), parse_error);  // no design
    EXPECT_THROW(static_cast<void>(read_sqd_string(
                     "<siqad><design><layer type=\"DB\"><dbdot/></layer></design></siqad>")),
                 parse_error);  // dot without latcoord
}

TEST(CellReadersTest, MissingFilesThrow)
{
    EXPECT_THROW(static_cast<void>(read_qca_file("/nonexistent.qca")), mnt_error);
    EXPECT_THROW(static_cast<void>(read_sqd_file("/nonexistent.sqd")), mnt_error);
}
