#include "physical_design/ortho.hpp"

#include "common/types.hpp"
#include "layout/layout_utils.hpp"
#include "test_networks.hpp"
#include "verification/drc.hpp"
#include "verification/equivalence.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>

using namespace mnt;
using namespace mnt::pd;
using namespace mnt::test;

TEST(OrthoTest, Mux21IsCorrect)
{
    const auto network = mux21();
    ortho_stats stats{};
    const auto layout = ortho(network, {}, &stats);

    EXPECT_EQ(layout.clocking().kind(), lyt::clocking_kind::twoddwave);
    EXPECT_EQ(layout.topology(), lyt::layout_topology::cartesian);
    EXPECT_GT(stats.placed_nodes, 0u);
    EXPECT_GT(stats.runtime, 0.0);

    const auto report = ver::gate_level_drc(layout);
    EXPECT_TRUE(report.passed()) << (report.errors.empty() ? "" : report.errors.front());
    EXPECT_TRUE(ver::check_layout_equivalence(network, layout));
}

TEST(OrthoTest, FullAdderWithMajIsDecomposedAndCorrect)
{
    const auto network = full_adder();
    const auto layout = ortho(network);
    EXPECT_TRUE(ver::gate_level_drc(layout).passed());
    EXPECT_TRUE(ver::check_layout_equivalence(network, layout));
    // no MAJ tiles on a 2DDWave layout
    layout.foreach_tile([](const lyt::coordinate&, const lyt::gate_level_layout::tile_data& d)
                        { EXPECT_NE(d.type, ntk::gate_type::maj3); });
}

TEST(OrthoTest, SingleWireNetwork)
{
    ntk::logic_network network{"wire"};
    network.create_po(network.create_pi("a"), "y");
    const auto layout = ortho(network);
    EXPECT_TRUE(ver::check_layout_equivalence(network, layout));
    EXPECT_LE(layout.area(), 4u);
}

TEST(OrthoTest, HighFanoutNetwork)
{
    ntk::logic_network network{"fanout"};
    const auto a = network.create_pi("a");
    const auto b = network.create_pi("b");
    const auto g = network.create_and(a, b);
    for (int i = 0; i < 6; ++i)
    {
        network.create_po(network.create_not(g), "y" + std::to_string(i));
    }
    const auto layout = ortho(network);
    EXPECT_TRUE(ver::gate_level_drc(layout).passed());
    EXPECT_TRUE(ver::check_layout_equivalence(network, layout));
}

TEST(OrthoTest, NonCommutativeGatesKeepSlotOrder)
{
    ntk::logic_network network{"lt"};
    const auto a = network.create_pi("a");
    const auto b = network.create_pi("b");
    network.create_po(network.create_lt(a, b), "l");   // ~a & b
    network.create_po(network.create_gt(a, b), "g");   // a & ~b
    const auto layout = ortho(network);
    EXPECT_TRUE(ver::check_layout_equivalence(network, layout));
}

TEST(OrthoTest, SharedFaninBothSlots)
{
    ntk::logic_network network{"xx"};
    const auto a = network.create_pi("a");
    const auto g = network.create_xnor(a, a);  // both fanins identical
    network.create_po(g, "y");
    const auto layout = ortho(network);
    EXPECT_TRUE(ver::gate_level_drc(layout).passed());
    EXPECT_TRUE(ver::check_layout_equivalence(network, layout));
}

TEST(OrthoTest, ConstantsArePropagated)
{
    ntk::logic_network network{"c"};
    const auto a = network.create_pi("a");
    const auto g = network.create_and(a, network.get_constant(true));
    network.create_po(network.create_xor(g, network.get_constant(false)), "y");
    const auto layout = ortho(network);
    EXPECT_TRUE(ver::check_layout_equivalence(network, layout));
}

TEST(OrthoTest, ConstantPoRejected)
{
    ntk::logic_network network{"c"};
    static_cast<void>(network.create_pi("a"));
    network.create_po(network.get_constant(true), "y");
    EXPECT_THROW(static_cast<void>(ortho(network)), precondition_error);
}

TEST(OrthoTest, NoPosRejected)
{
    ntk::logic_network network{"empty"};
    network.create_pi("a");
    EXPECT_THROW(static_cast<void>(ortho(network)), precondition_error);
}

TEST(OrthoTest, GreedyOrientationNeverBreaksFunction)
{
    const auto network = random_network(4, 24, 3, 7);
    for (const bool greedy : {false, true})
    {
        ortho_params params{};
        params.greedy_orientation = greedy;
        const auto layout = ortho(network, params);
        EXPECT_TRUE(ver::check_layout_equivalence(network, layout)) << "greedy=" << greedy;
    }
}

TEST(OrthoTest, ParityChainStaysNarrow)
{
    // a pure chain shares rows; height should stay near the PI count
    const auto network = parity(6);
    const auto layout = ortho(network);
    EXPECT_TRUE(ver::check_layout_equivalence(network, layout));
    EXPECT_LE(layout.height(), 14u);
}

// property sweep: random networks of growing size must always be legal and
// equivalent
class OrthoRandomProperty : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>>
{};

TEST_P(OrthoRandomProperty, LegalAndEquivalent)
{
    const auto [gates, seed] = GetParam();
    const auto network = random_network(5, gates, 4, seed);
    ortho_stats stats{};
    const auto layout = ortho(network, {}, &stats);

    const auto report = ver::gate_level_drc(layout);
    ASSERT_TRUE(report.passed()) << report.errors.front();
    EXPECT_TRUE(ver::check_layout_equivalence(network, layout));

    const auto lstats = lyt::collect_layout_statistics(layout);
    EXPECT_EQ(lstats.num_pis, network.num_pis());
    EXPECT_EQ(lstats.num_pos, network.num_pos());
}

INSTANTIATE_TEST_SUITE_P(Sweep, OrthoRandomProperty,
                         ::testing::Combine(::testing::Values(8, 20, 50, 120, 300),
                                            ::testing::Values(1u, 2u, 3u)),
                         [](const auto& info)
                         {
                             return "g" + std::to_string(std::get<0>(info.param)) + "_s" +
                                    std::to_string(std::get<1>(info.param));
                         });
