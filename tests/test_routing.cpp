#include "layout/routing.hpp"

#include "common/types.hpp"
#include "layout/gate_level_layout.hpp"
#include "verification/drc.hpp"

#include <gtest/gtest.h>

using namespace mnt;
using namespace mnt::lyt;
using mnt::ntk::gate_type;

namespace
{

gate_level_layout make_2dd(const std::uint32_t w = 8, const std::uint32_t h = 8)
{
    return gate_level_layout{"r", layout_topology::cartesian, clocking_scheme::twoddwave(), w, h};
}

}  // namespace

TEST(RoutingTest, DirectNeighborNeedsNoWires)
{
    auto layout = make_2dd();
    layout.place({0, 0}, gate_type::pi, "a");
    layout.place({1, 0}, gate_type::po, "y");
    const auto path = find_path(layout, {0, 0}, {1, 0});
    ASSERT_TRUE(path.has_value());
    EXPECT_TRUE(path->empty());
    establish_path(layout, {0, 0}, {1, 0}, *path);
    EXPECT_EQ(layout.incoming_of({1, 0}).size(), 1u);
}

TEST(RoutingTest, StraightLineRoute)
{
    auto layout = make_2dd();
    layout.place({0, 0}, gate_type::pi, "a");
    layout.place({4, 0}, gate_type::po, "y");
    EXPECT_TRUE(route(layout, {0, 0}, {4, 0}));
    // three wire tiles in between
    EXPECT_EQ(layout.num_wires(), 3u);
    EXPECT_EQ(layout.type_of({1, 0}), gate_type::buf);
    EXPECT_EQ(layout.type_of({2, 0}), gate_type::buf);
    EXPECT_EQ(layout.type_of({3, 0}), gate_type::buf);
}

TEST(RoutingTest, PathRespectsClocking)
{
    // 2DDWave cannot route westward: src east of dst
    auto layout = make_2dd();
    layout.place({4, 0}, gate_type::pi, "a");
    layout.place({0, 0}, gate_type::po, "y");
    EXPECT_FALSE(find_path(layout, {4, 0}, {0, 0}).has_value());
}

TEST(RoutingTest, RouteAroundObstacle)
{
    auto layout = make_2dd();
    layout.place({0, 0}, gate_type::pi, "a");
    layout.place({2, 0}, gate_type::and2);  // obstacle: gates cannot be crossed
    layout.place({4, 2}, gate_type::po, "y");
    const auto path = find_path(layout, {0, 0}, {4, 2});
    ASSERT_TRUE(path.has_value());
    // path must detour south around the gate
    for (const auto& p : *path)
    {
        EXPECT_NE(p.ground(), coordinate(2, 0));
    }
    establish_path(layout, {0, 0}, {4, 2}, *path);
    EXPECT_EQ(layout.num_wires(), 5u);  // shortest monotone detour
}

TEST(RoutingTest, CrossingOverWire)
{
    auto layout = make_2dd();
    // vertical wire chain through column 2
    layout.place({2, 0}, gate_type::pi, "v");
    layout.place({2, 4}, gate_type::po, "vy");
    ASSERT_TRUE(route(layout, {2, 0}, {2, 4}));

    // horizontal net through row 2 must cross the vertical wire at (2,2)
    layout.place({0, 2}, gate_type::pi, "h");
    layout.place({4, 2}, gate_type::po, "hy");
    const auto path = find_path(layout, {0, 2}, {4, 2});
    ASSERT_TRUE(path.has_value());
    establish_path(layout, {0, 2}, {4, 2}, *path);
    EXPECT_EQ(layout.num_crossings(), 1u);
    EXPECT_EQ(layout.type_of({2, 2, 1}), gate_type::buf);
}

TEST(RoutingTest, CrossingDisabledFails)
{
    auto layout = make_2dd(5, 5);
    layout.place({2, 0}, gate_type::pi, "v");
    layout.place({2, 4}, gate_type::po, "vy");
    ASSERT_TRUE(route(layout, {2, 0}, {2, 4}));
    // block the alternative row paths to force a crossing
    for (int x = 0; x < 5; ++x)
    {
        for (int y : {1, 3})
        {
            if (layout.is_empty_tile({x, y}))
            {
                layout.place({x, y}, gate_type::and2);
            }
        }
    }
    layout.place({0, 2}, gate_type::pi, "h");
    layout.place({4, 2}, gate_type::po, "hy");
    routing_options options{};
    options.allow_crossings = false;
    EXPECT_FALSE(find_path(layout, {0, 2}, {4, 2}, options).has_value());
    options.allow_crossings = true;
    EXPECT_TRUE(find_path(layout, {0, 2}, {4, 2}, options).has_value());
}

TEST(RoutingTest, GatesCannotBeCrossed)
{
    auto layout = make_2dd(5, 1);  // single row: no detour possible
    layout.place({0, 0}, gate_type::pi, "a");
    layout.place({2, 0}, gate_type::and2);
    layout.place({4, 0}, gate_type::po, "y");
    EXPECT_FALSE(find_path(layout, {0, 0}, {4, 0}).has_value());
}

TEST(RoutingTest, CoincidentEndpointsRejected)
{
    auto layout = make_2dd();
    layout.place({1, 1}, gate_type::buf);
    EXPECT_THROW(static_cast<void>(find_path(layout, {1, 1}, {1, 1})), precondition_error);
}

TEST(RoutingTest, EmptyEndpointsRejected)
{
    auto layout = make_2dd();
    layout.place({0, 0}, gate_type::pi, "a");
    EXPECT_THROW(static_cast<void>(find_path(layout, {0, 0}, {3, 3})), precondition_error);
}

TEST(RoutingTest, MaxExpansionsLimitsSearch)
{
    auto layout = make_2dd(20, 20);
    layout.place({0, 0}, gate_type::pi, "a");
    layout.place({19, 19}, gate_type::po, "y");
    routing_options options{};
    options.max_expansions = 3;
    EXPECT_FALSE(find_path(layout, {0, 0}, {19, 19}, options).has_value());
}

TEST(RoutingTest, USERouteCanTurnBack)
{
    // USE clocking permits non-monotone paths; route westward
    gate_level_layout layout{"use", layout_topology::cartesian, clocking_scheme::use(), 8, 8};
    layout.place({4, 0}, gate_type::pi, "a");
    layout.place({0, 0}, gate_type::po, "y");
    const auto path = find_path(layout, {4, 0}, {0, 0});
    ASSERT_TRUE(path.has_value());
    establish_path(layout, {4, 0}, {0, 0}, *path);
    // every consecutive pair must advance the clock by one
    auto prev = coordinate{4, 0};
    for (const auto& p : *path)
    {
        EXPECT_TRUE(layout.clocking().is_incoming_clocked(p, prev));
        prev = p;
    }
    EXPECT_TRUE(layout.clocking().is_incoming_clocked({0, 0}, prev));
}

TEST(RoutingTest, HexagonalRowRoute)
{
    gate_level_layout layout{"hex", layout_topology::hexagonal_even_row, clocking_scheme::row(), 6, 6};
    layout.place({3, 0}, gate_type::pi, "a");
    layout.place({1, 4}, gate_type::po, "y");
    const auto path = find_path(layout, {3, 0}, {1, 4});
    ASSERT_TRUE(path.has_value());
    EXPECT_EQ(path->size(), 3u);  // one wire per intermediate row
    establish_path(layout, {3, 0}, {1, 4}, *path);
    EXPECT_TRUE(mnt::ver::gate_level_drc(layout).passed());
}

TEST(RoutingTest, RipUpRemovesChain)
{
    auto layout = make_2dd();
    layout.place({0, 0}, gate_type::pi, "a");
    layout.place({4, 2}, gate_type::po, "y");
    ASSERT_TRUE(route(layout, {0, 0}, {4, 2}));
    const auto wires_before = layout.num_wires();
    EXPECT_GT(wires_before, 0u);
    rip_up_path(layout, {0, 0}, {4, 2});
    EXPECT_EQ(layout.num_wires(), 0u);
    EXPECT_TRUE(layout.incoming_of({4, 2}).empty());
    EXPECT_TRUE(layout.outgoing_of({0, 0}).empty());
    // endpoints stay
    EXPECT_EQ(layout.type_of({0, 0}), gate_type::pi);
    EXPECT_EQ(layout.type_of({4, 2}), gate_type::po);
}

TEST(RoutingTest, RoutedLayoutPassesDrc)
{
    auto layout = make_2dd();
    layout.place({1, 0}, gate_type::pi, "a");
    layout.place({0, 1}, gate_type::pi, "b");
    layout.place({2, 2}, gate_type::and2);
    layout.place({7, 7}, gate_type::po, "y");
    ASSERT_TRUE(route(layout, {1, 0}, {2, 2}));
    ASSERT_TRUE(route(layout, {0, 1}, {2, 2}));
    ASSERT_TRUE(route(layout, {2, 2}, {7, 7}));
    const auto report = mnt::ver::gate_level_drc(layout);
    EXPECT_TRUE(report.passed()) << (report.errors.empty() ? "" : report.errors.front());
}
