#include "physical_design/nanoplacer.hpp"

#include "common/types.hpp"
#include "test_networks.hpp"
#include "verification/drc.hpp"
#include "verification/equivalence.hpp"

#include <gtest/gtest.h>

using namespace mnt;
using namespace mnt::pd;
using namespace mnt::test;

TEST(NanoplacerTest, Mux21On2DDWave)
{
    const auto network = mux21();
    nanoplacer_params params{};
    params.iterations = 400;
    nanoplacer_stats stats{};
    const auto layout = nanoplacer(network, params, &stats);
    ASSERT_TRUE(layout.has_value());
    EXPECT_GT(stats.attempted_moves, 0u);
    const auto report = ver::gate_level_drc(*layout);
    EXPECT_TRUE(report.passed()) << (report.errors.empty() ? "" : report.errors.front());
    EXPECT_TRUE(ver::check_layout_equivalence(network, *layout));
}

TEST(NanoplacerTest, DeterministicPerSeed)
{
    const auto network = half_adder();
    nanoplacer_params params{};
    params.iterations = 200;
    params.seed = 99;
    const auto a = nanoplacer(network, params);
    const auto b = nanoplacer(network, params);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(a->area(), b->area());
    EXPECT_EQ(a->num_wires(), b->num_wires());
}

TEST(NanoplacerTest, WorksOnUseResEsr)
{
    const auto network = half_adder();
    for (const auto scheme : {lyt::clocking_kind::use, lyt::clocking_kind::res, lyt::clocking_kind::esr})
    {
        nanoplacer_params params{};
        params.scheme = scheme;
        params.iterations = 300;
        const auto layout = nanoplacer(network, params);
        ASSERT_TRUE(layout.has_value()) << lyt::clocking_name(scheme);
        EXPECT_EQ(layout->clocking().kind(), scheme);
        const auto report = ver::gate_level_drc(*layout);
        EXPECT_TRUE(report.passed()) << lyt::clocking_name(scheme) << ": "
                                     << (report.errors.empty() ? "" : report.errors.front());
        EXPECT_TRUE(ver::check_layout_equivalence(network, *layout)) << lyt::clocking_name(scheme);
    }
}

TEST(NanoplacerTest, MediumRandomNetwork)
{
    const auto network = random_network(5, 40, 3, 17);
    nanoplacer_params params{};
    params.iterations = 300;
    const auto layout = nanoplacer(network, params);
    ASSERT_TRUE(layout.has_value());
    EXPECT_TRUE(ver::gate_level_drc(*layout).passed());
    EXPECT_TRUE(ver::check_layout_equivalence(network, *layout));
}

TEST(NanoplacerTest, AnnealingDoesNotRegressArea)
{
    // the returned layout is the best snapshot: more iterations should not
    // yield a worse result than (almost) none for the same seed
    const auto network = mux21();
    nanoplacer_params few{};
    few.iterations = 1;
    nanoplacer_params many{};
    many.iterations = 800;
    const auto base = nanoplacer(network, few);
    const auto tuned = nanoplacer(network, many);
    ASSERT_TRUE(base.has_value());
    ASSERT_TRUE(tuned.has_value());
    EXPECT_LE(tuned->area(), base->area());
}

TEST(NanoplacerTest, RejectsOpenScheme)
{
    nanoplacer_params params{};
    params.scheme = lyt::clocking_kind::open;
    EXPECT_THROW(static_cast<void>(nanoplacer(mux21(), params)), precondition_error);
}

TEST(NanoplacerTest, RejectsNetworkWithoutPos)
{
    ntk::logic_network network{"x"};
    network.create_pi("a");
    EXPECT_THROW(static_cast<void>(nanoplacer(network, {})), precondition_error);
}

TEST(NanoplacerTest, HexagonalRowTopology)
{
    const auto network = half_adder();
    nanoplacer_params params{};
    params.topology = lyt::layout_topology::hexagonal_even_row;
    params.scheme = lyt::clocking_kind::row;
    params.iterations = 300;
    const auto layout = nanoplacer(network, params);
    ASSERT_TRUE(layout.has_value());
    EXPECT_EQ(layout->topology(), lyt::layout_topology::hexagonal_even_row);
    const auto report = ver::gate_level_drc(*layout);
    EXPECT_TRUE(report.passed()) << (report.errors.empty() ? "" : report.errors.front());
    EXPECT_TRUE(ver::check_layout_equivalence(network, *layout));
}
