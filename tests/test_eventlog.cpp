#include "telemetry/eventlog.hpp"

#include "common/types.hpp"
#include "service/json.hpp"
#include "testing/generators.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace mnt;
using namespace mnt::tel;
using mnt::svc::json_value;

namespace
{

/// The event log is process-wide; every test starts from an empty ring with
/// default threshold and no sink.
class eventlog_fixture : public ::testing::Test
{
protected:
    void SetUp() override
    {
        auto& log = event_log::instance();
        log.close_sink();
        log.set_min_severity(log_severity::info);
        log.set_capacity(event_log::default_capacity);
        log.set_stderr_echo(false);
        log.clear();
    }

    void TearDown() override
    {
        SetUp();  // same reset, leave the singleton clean for other tests
    }
};

std::string hostile_string(pbt::rng& random, const std::size_t length)
{
    static constexpr unsigned char nasty[] = {'"', '\\', '\n', '\r', '\t', 0x00, 0x01, 0x1F,
                                              0x7F, 0xC0, 0xE0, 0xED, 0xF5, 0xFF, 0x80};
    std::string out;
    for (std::size_t i = 0; i < length; ++i)
    {
        if (random.chance(1, 2))
        {
            out += static_cast<char>(nasty[random.below(sizeof(nasty))]);
        }
        else
        {
            out += static_cast<char>('a' + random.below(26));
        }
    }
    return out;
}

}  // namespace

// ----------------------------------------------------------------- severity

TEST(EventLogSeverity, NamesRoundTrip)
{
    for (const auto severity :
         {log_severity::debug, log_severity::info, log_severity::warn, log_severity::error})
    {
        EXPECT_EQ(parse_severity(severity_name(severity)), severity);
    }
    EXPECT_EQ(parse_severity("bogus"), log_severity::info);
    EXPECT_EQ(parse_severity(""), log_severity::info);
}

TEST_F(eventlog_fixture, MinimumSeverityFiltersRecords)
{
    auto& log = event_log::instance();
    log.set_min_severity(log_severity::warn);
    log.log(log_severity::debug, "test", "dropped");
    log.log(log_severity::info, "test", "dropped too");
    log.log(log_severity::warn, "test", "kept");
    log.log(log_severity::error, "test", "kept too");

    const auto records = log.snapshot();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].message, "kept");
    EXPECT_EQ(records[1].message, "kept too");
    EXPECT_EQ(log.total_logged(), 2u);
}

// --------------------------------------------------------------- ring buffer

TEST_F(eventlog_fixture, RingWrapsAndCountsOverwrites)
{
    auto& log = event_log::instance();
    log.set_capacity(4);
    for (int i = 0; i < 10; ++i)
    {
        log.log(log_severity::info, "test", "message " + std::to_string(i));
    }
    const auto records = log.snapshot();
    ASSERT_EQ(records.size(), 4u);
    EXPECT_EQ(records.front().message, "message 6");  // oldest retained
    EXPECT_EQ(records.back().message, "message 9");
    EXPECT_EQ(log.total_logged(), 10u);
    EXPECT_EQ(log.overwritten(), 6u);
}

TEST_F(eventlog_fixture, ShrinkingCapacityDropsTheOldest)
{
    auto& log = event_log::instance();
    for (int i = 0; i < 8; ++i)
    {
        log.log(log_severity::info, "test", std::to_string(i));
    }
    log.set_capacity(2);
    const auto records = log.snapshot();
    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].message, "6");
    EXPECT_EQ(records[1].message, "7");
}

// ------------------------------------------------------------ JSONL encoding

TEST_F(eventlog_fixture, RecordsSerializeAsStrictJson)
{
    log_record record{};
    record.ts = 1754650000.123;
    record.severity = log_severity::warn;
    record.component = "store";
    record.message = "pruned corrupt blob";
    record.fields = {{"id", "3f2a"}, {"n", "1"}};

    const auto line = log_record_json(record);
    EXPECT_EQ(line.find('\n'), std::string::npos);

    const auto parsed = json_value::parse(line);
    EXPECT_DOUBLE_EQ(parsed.at("ts").as_number(), 1754650000.123);
    EXPECT_EQ(parsed.at("severity").as_string(), "warn");
    EXPECT_EQ(parsed.at("component").as_string(), "store");
    EXPECT_EQ(parsed.at("message").as_string(), "pruned corrupt blob");
    EXPECT_EQ(parsed.at("fields").at("id").as_string(), "3f2a");
    EXPECT_EQ(parsed.at("fields").at("n").as_string(), "1");
}

TEST_F(eventlog_fixture, HostileStringsAlwaysYieldOneParsableLine)
{
    pbt::rng random{0xC0FFEEULL};
    for (int round = 0; round < 200; ++round)
    {
        log_record record{};
        record.severity = log_severity::error;
        record.component = hostile_string(random, 1 + random.below(12));
        record.message = hostile_string(random, 1 + random.below(32));
        record.fields = {{hostile_string(random, 4), hostile_string(random, 16)}};

        const auto line = log_record_json(record);
        ASSERT_EQ(line.find('\n'), std::string::npos) << "round " << round;
        // strict parse: raw control bytes or broken escapes would throw
        ASSERT_NO_THROW(json_value::parse(line)) << "round " << round << ": " << line;
    }
}

// ------------------------------------------------------------------- sink

TEST_F(eventlog_fixture, SinkReceivesOneLinePerRecord)
{
    const auto path = std::filesystem::temp_directory_path() / "mnt_eventlog_test.jsonl";
    std::filesystem::remove(path);

    auto& log = event_log::instance();
    log.open_sink(path);
    log.log(log_severity::info, "test", "first", {{"k", "v"}});
    log.log(log_severity::warn, "test", "second");
    log.close_sink();

    std::ifstream in{path};
    ASSERT_TRUE(in.good());
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line))
    {
        lines.push_back(line);
    }
    ASSERT_EQ(lines.size(), 2u);
    EXPECT_EQ(json_value::parse(lines[0]).at("message").as_string(), "first");
    EXPECT_EQ(json_value::parse(lines[0]).at("fields").at("k").as_string(), "v");
    EXPECT_EQ(json_value::parse(lines[1]).at("severity").as_string(), "warn");
    std::filesystem::remove(path);
}

TEST_F(eventlog_fixture, SinkAppendsAcrossReopens)
{
    const auto path = std::filesystem::temp_directory_path() / "mnt_eventlog_append.jsonl";
    std::filesystem::remove(path);

    auto& log = event_log::instance();
    log.open_sink(path);
    log.log(log_severity::info, "test", "run 1");
    log.close_sink();
    log.open_sink(path);
    log.log(log_severity::info, "test", "run 2");
    log.close_sink();

    std::ifstream in{path};
    std::size_t count = 0;
    std::string line;
    while (std::getline(in, line))
    {
        ++count;
    }
    EXPECT_EQ(count, 2u);
    std::filesystem::remove(path);
}

TEST_F(eventlog_fixture, UnopenableSinkThrows)
{
    EXPECT_THROW(event_log::instance().open_sink("/nonexistent-dir/events.jsonl"), mnt::mnt_error);
}

// ------------------------------------------------------------- convenience

TEST_F(eventlog_fixture, LogEventForwardsToTheSingleton)
{
    log_event(log_severity::warn, "portfolio", "combination failed",
              {{"combo", "ortho|USE"}, {"kind", "timeout"}});
    const auto records = event_log::instance().snapshot();
    ASSERT_EQ(records.size(), 1u);
    EXPECT_EQ(records[0].component, "portfolio");
    ASSERT_EQ(records[0].fields.size(), 2u);
    EXPECT_EQ(records[0].fields[0].first, "combo");
    EXPECT_GT(records[0].ts, 0.0);
}
