/// \file test_integration.cpp
/// \brief Cross-module integration and property tests: complete pipelines
///        from Verilog text to cell-level output, chained optimizations,
///        and randomized end-to-end sweeps — the flows a downstream MNT
///        Bench user runs.

#include "benchmarks/functions.hpp"
#include "benchmarks/suites.hpp"
#include "gate_library/bestagon.hpp"
#include "gate_library/qca_one.hpp"
#include "io/fgl_reader.hpp"
#include "io/fgl_writer.hpp"
#include "io/qca_writer.hpp"
#include "io/sqd_writer.hpp"
#include "io/verilog_reader.hpp"
#include "io/verilog_writer.hpp"
#include "layout/layout_utils.hpp"
#include "network/transforms.hpp"
#include "physical_design/hexagonalization.hpp"
#include "physical_design/input_ordering.hpp"
#include "physical_design/ortho.hpp"
#include "physical_design/post_layout_optimization.hpp"
#include "test_networks.hpp"
#include "verification/drc.hpp"
#include "verification/equivalence.hpp"
#include "verification/wave_simulation.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <string>
#include <tuple>

using namespace mnt;
using namespace mnt::test;

TEST(IntegrationTest, VerilogToQcaCells)
{
    // the full QCA ONE flow: Verilog -> network -> AOI -> ortho -> PLO ->
    // .fgl -> reread -> cells -> .qca
    const auto network = io::read_verilog_string(R"(
        module demo(a, b, c, y0, y1);
          input a, b, c;
          output y0, y1;
          wire w;
          assign w = (a & b) | (~a & c);
          assign y0 = w & c;
          assign y1 = ~w;
        endmodule
    )");

    const auto aoi = ntk::to_aoi(network);
    const auto layout = pd::post_layout_optimization(pd::ortho(aoi));
    ASSERT_TRUE(ver::check_layout_equivalence(network, layout));
    ASSERT_TRUE(ver::gate_level_drc(layout).passed());

    const auto reread = io::read_fgl_string(io::write_fgl_string(layout));
    ASSERT_TRUE(ver::check_layout_equivalence(network, reread));

    const auto cells = gl::apply_qca_one(reread);
    EXPECT_GT(cells.num_cells(), 0u);
    EXPECT_EQ(cells.num_input_cells(), 3u);
    EXPECT_EQ(cells.num_output_cells(), 2u);
    EXPECT_FALSE(io::write_qca_string(cells).empty());
}

TEST(IntegrationTest, VerilogToSidbCells)
{
    // the full Bestagon flow: network -> ortho -> 45° -> PLO (hex) -> cells
    const auto network = bm::full_adder();
    const auto hex = pd::post_layout_optimization(pd::hexagonalization(pd::ortho(network)));
    ASSERT_TRUE(ver::check_layout_equivalence(network, hex));
    ASSERT_TRUE(ver::gate_level_drc(hex).passed());

    const auto cells = gl::apply_bestagon(hex);
    EXPECT_EQ(cells.num_input_cells(), 3u);
    EXPECT_EQ(cells.num_output_cells(), 2u);
    EXPECT_FALSE(io::write_sqd_string(cells).empty());
}

TEST(IntegrationTest, OptimizationChainMonotonicity)
{
    // every optimization stage must preserve function and never grow area
    const auto network = random_network(5, 35, 3, 77);
    const auto base = pd::ortho(network);
    const auto inord = pd::input_ordering_ortho(network);
    const auto plo = pd::post_layout_optimization(inord);

    EXPECT_LE(inord.area(), base.area());
    EXPECT_LE(plo.area(), inord.area());
    for (const auto* layout : {&base, &inord, &plo})
    {
        EXPECT_TRUE(ver::check_layout_equivalence(network, *layout));
    }
}

TEST(IntegrationTest, HexPipelinePreservesEverySuiteFunction)
{
    // the complete Bestagon pipeline over all small benchmark functions
    for (const auto& entry : bm::trindade16())
    {
        const auto network = entry.build();
        const auto hex = pd::hexagonalization(pd::ortho(network));
        ASSERT_TRUE(ver::gate_level_drc(hex).passed()) << entry.name;
        EXPECT_TRUE(ver::check_layout_equivalence(network, hex)) << entry.name;
    }
}

TEST(IntegrationTest, SuiteVerilogRoundTrip)
{
    // every Fontes18 function survives Verilog serialization
    for (const auto& entry : bm::fontes18())
    {
        const auto network = entry.build();
        for (const auto style : {io::verilog_style::assignments, io::verilog_style::primitives})
        {
            const auto reread = io::read_verilog_string(io::write_verilog_string(network, style));
            EXPECT_TRUE(ver::check_equivalence(network, reread))
                << entry.name << " style " << static_cast<int>(style);
        }
    }
}

// property sweep: random pipelines end-to-end
class PipelineProperty : public ::testing::TestWithParam<std::tuple<std::size_t, std::uint64_t>>
{};

TEST_P(PipelineProperty, OrthoPloFglHexAllEquivalent)
{
    const auto [gates, seed] = GetParam();
    const auto network = random_network(6, gates, 4, seed);

    const auto layout = pd::ortho(network);
    const auto optimized = pd::post_layout_optimization(layout);
    EXPECT_LE(optimized.area(), layout.area());

    const auto reread = io::read_fgl_string(io::write_fgl_string(optimized));
    EXPECT_TRUE(ver::check_layout_equivalence(network, reread));

    const auto hex = pd::hexagonalization(layout);
    EXPECT_TRUE(ver::check_layout_equivalence(network, hex));
    const auto hex_reread = io::read_fgl_string(io::write_fgl_string(hex));
    EXPECT_TRUE(ver::check_layout_equivalence(network, hex_reread));
}

INSTANTIATE_TEST_SUITE_P(Sweep, PipelineProperty,
                         ::testing::Combine(::testing::Values(10, 30, 60), ::testing::Values(101u, 202u)),
                         [](const auto& info)
                         {
                             return "g" + std::to_string(std::get<0>(info.param)) + "_s" +
                                    std::to_string(std::get<1>(info.param));
                         });

// suite-wide property: every small benchmark function survives both library
// pipelines end to end (QCA ONE Cartesian and Bestagon hexagonal)
class SuitePipelineProperty : public ::testing::TestWithParam<int>
{};

TEST_P(SuitePipelineProperty, BothLibraryFlows)
{
    auto entries = bm::trindade16();
    const auto fontes = bm::fontes18();
    entries.insert(entries.end(), fontes.begin(), fontes.end());
    const auto& e = entries[static_cast<std::size_t>(GetParam())];
    const auto network = e.build();

    // QCA ONE flow
    const auto cart = pd::post_layout_optimization(pd::ortho(network));
    ASSERT_TRUE(ver::gate_level_drc(cart).passed()) << e.name;
    EXPECT_TRUE(ver::check_layout_equivalence(network, cart)) << e.name;
    EXPECT_TRUE(ver::check_wave_equivalence(network, cart)) << e.name;

    // Bestagon flow
    const auto hex = pd::hexagonalization(pd::ortho(network));
    ASSERT_TRUE(ver::gate_level_drc(hex).passed()) << e.name;
    EXPECT_TRUE(ver::check_layout_equivalence(network, hex)) << e.name;

    // file format round trips
    const auto fgl = io::read_fgl_string(io::write_fgl_string(hex));
    EXPECT_TRUE(ver::check_layout_equivalence(network, fgl)) << e.name;
    const auto verilog = io::read_verilog_string(io::write_verilog_string(network));
    EXPECT_TRUE(ver::check_equivalence(network, verilog)) << e.name;
}

INSTANTIATE_TEST_SUITE_P(AllSmallBenchmarks, SuitePipelineProperty, ::testing::Range(0, 18),
                         [](const auto& info)
                         {
                             auto entries = bm::trindade16();
                             const auto fontes = bm::fontes18();
                             entries.insert(entries.end(), fontes.begin(), fontes.end());
                             auto name = entries[static_cast<std::size_t>(info.param)].name;
                             for (auto& c : name)
                             {
                                 if (!std::isalnum(static_cast<unsigned char>(c)))
                                 {
                                     c = '_';
                                 }
                             }
                             return name;
                         });
