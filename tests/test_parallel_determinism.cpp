/// \file test_parallel_determinism.cpp
/// \brief The determinism contract of the task runtime: every parallelized
///        physical-design algorithm produces *byte-identical* .fgl output at
///        1, 2 and 8 compute threads. This is what keeps `--deterministic`
///        honest now that exact races aspect ratios, InOrd sweeps orderings
///        concurrently, NanoPlaceR anneals multiple chains, and DRC scans
///        rows in parallel (see DESIGN.md §15).

#include "common/taskrt/taskrt.hpp"

#include "benchmarks/families.hpp"
#include "io/fgl_writer.hpp"
#include "physical_design/exact.hpp"
#include "physical_design/input_ordering.hpp"
#include "physical_design/nanoplacer.hpp"
#include "physical_design/ortho.hpp"
#include "test_networks.hpp"
#include "verification/drc.hpp"
#include "verification/equivalence.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <set>
#include <string>
#include <vector>

using namespace mnt;
using namespace mnt::test;

namespace
{

constexpr std::size_t thread_counts[] = {1, 2, 8};

/// Runs \p produce once per thread count (restarting the pool in between)
/// and asserts the serialized outputs are byte-identical to the 1-thread run.
void expect_identical_across_thread_counts(const std::function<std::string()>& produce)
{
    std::string reference;
    for (const auto threads : thread_counts)
    {
        trt::set_thread_count(threads);
        const auto out = produce();
        if (threads == 1)
        {
            reference = out;
            ASSERT_FALSE(reference.empty());
        }
        else
        {
            EXPECT_EQ(out, reference) << "output diverged at " << threads << " threads";
        }
    }
}

class ParallelDeterminismTest : public ::testing::Test
{
protected:
    void SetUp() override
    {
        unsetenv("MNT_THREADS");
        trt::set_thread_count(0);
        trt::shutdown();
    }

    void TearDown() override
    {
        trt::set_thread_count(0);
        trt::shutdown();
    }
};

}  // namespace

TEST_F(ParallelDeterminismTest, InputOrderingSweepIsByteIdentical)
{
    const auto network = random_network(6, 30, 3, 51);
    pd::input_ordering_params params{};
    params.max_orderings = 6;

    expect_identical_across_thread_counts(
        [&]
        {
            pd::input_ordering_stats stats{};
            const auto layout = pd::input_ordering_ortho(network, params, &stats);
            EXPECT_EQ(stats.orderings_tried, 6u);
            return io::write_fgl_string(layout);
        });
}

TEST_F(ParallelDeterminismTest, ExactRatioRaceIsByteIdentical)
{
    // the race winner is the lowest-index successful aspect ratio — exactly
    // the ratio the sequential loop would have found first — so the layout
    // (and its serialization) cannot depend on the thread count
    const auto network = mux21();
    pd::exact_params params{};
    params.timeout_s = 30.0;

    expect_identical_across_thread_counts(
        [&]
        {
            pd::exact_stats stats{};
            const auto layout = pd::exact(network, params, &stats);
            EXPECT_FALSE(stats.timed_out);
            if (!layout.has_value())
            {
                return std::string{};
            }
            return io::write_fgl_string(*layout);
        });
}

TEST_F(ParallelDeterminismTest, NanoplacerSingleChainIsByteIdentical)
{
    const auto network = half_adder();
    pd::nanoplacer_params params{};
    params.iterations = 300;
    params.seed = 7;

    expect_identical_across_thread_counts(
        [&]
        {
            const auto layout = pd::nanoplacer(network, params);
            EXPECT_TRUE(layout.has_value());
            return layout.has_value() ? io::write_fgl_string(*layout) : std::string{};
        });
}

TEST_F(ParallelDeterminismTest, NanoplacerMultiChainIsByteIdentical)
{
    const auto network = half_adder();
    pd::nanoplacer_params params{};
    params.iterations = 600;
    params.exchange_period = 128;
    params.chains = 3;
    params.seed = 42;

    std::string fgl;
    expect_identical_across_thread_counts(
        [&]
        {
            const auto layout = pd::nanoplacer(network, params);
            EXPECT_TRUE(layout.has_value());
            if (!layout.has_value())
            {
                return std::string{};
            }
            EXPECT_TRUE(ver::check_layout_equivalence(network, *layout));
            fgl = io::write_fgl_string(*layout);
            return fgl;
        });

    // and repeatable: a second full run reproduces the same bytes
    trt::set_thread_count(2);
    const auto again = pd::nanoplacer(network, params);
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(io::write_fgl_string(*again), fgl);
}

TEST_F(ParallelDeterminismTest, MoreChainsNeverBreakValidity)
{
    const auto network = mux21();
    for (const std::size_t chains : {std::size_t{1}, std::size_t{2}, std::size_t{4}})
    {
        pd::nanoplacer_params params{};
        params.iterations = 400;
        params.chains = chains;
        params.exchange_period = 100;
        trt::set_thread_count(4);
        const auto layout = pd::nanoplacer(network, params);
        ASSERT_TRUE(layout.has_value()) << chains << " chains";
        const auto report = ver::gate_level_drc(*layout);
        EXPECT_TRUE(report.passed()) << (report.errors.empty() ? "" : report.errors.front());
        EXPECT_TRUE(ver::check_layout_equivalence(network, *layout)) << chains << " chains";
    }
}

TEST_F(ParallelDeterminismTest, ChainSeedsAreDistinctAndStable)
{
    // KAT: the derivation is part of the replayability contract — a chain
    // observed in a multi-chain run can be reproduced in isolation, so the
    // constants must never drift silently
    EXPECT_EQ(pd::nanoplacer_chain_seed(42, 0), pd::nanoplacer_chain_seed(42, 0));

    std::set<std::uint64_t> seeds;
    for (std::size_t c = 0; c < 8; ++c)
    {
        seeds.insert(pd::nanoplacer_chain_seed(42, c));
    }
    EXPECT_EQ(seeds.size(), 8u);        // pairwise distinct
    EXPECT_EQ(seeds.count(42), 0u);     // never the base seed itself
    // different base seeds diverge immediately
    EXPECT_NE(pd::nanoplacer_chain_seed(1, 0), pd::nanoplacer_chain_seed(2, 0));
}

TEST_F(ParallelDeterminismTest, FamilyManifestIsByteIdenticalAcrossThreadCounts)
{
    // the manifest's function records are computed through parallel_for, but
    // the document is assembled in index order — its *bytes* (and therefore
    // the manifest hash served to clients) must not depend on the pool size
    auto spec = *bm::find_reference_family("aoi");
    spec.count = 64;

    expect_identical_across_thread_counts([&] { return bm::family_manifest_bytes(spec); });

    // and repeatable: a second run at a parallel thread count reproduces the
    // same hash (the value `mnt_bench_cli families` prints)
    trt::set_thread_count(2);
    const auto first = bm::family_manifest_hash(spec);
    const auto second = bm::family_manifest_hash(spec);
    EXPECT_EQ(first, second);
}

TEST_F(ParallelDeterminismTest, RowParallelDrcReportIsOrderInvariant)
{
    // the fused row-parallel scan concatenates per-row buckets, so the
    // report (including message *order*) must match at any thread count
    const auto network = random_network(5, 24, 3, 9);
    const auto layout = pd::ortho(network);

    trt::set_thread_count(1);
    const auto reference = ver::gate_level_drc(layout);

    for (const std::size_t threads : {std::size_t{2}, std::size_t{8}})
    {
        trt::set_thread_count(threads);
        const auto report = ver::gate_level_drc(layout);
        EXPECT_EQ(report.errors, reference.errors) << threads << " threads";
        EXPECT_EQ(report.warnings, reference.warnings) << threads << " threads";
        EXPECT_EQ(report.passed(), reference.passed());
    }
}
