#include "service/server.hpp"

#include "benchmarks/functions.hpp"
#include "core/filters.hpp"
#include "io/fgl_writer.hpp"
#include "physical_design/hexagonalization.hpp"
#include "physical_design/ortho.hpp"
#include "service/json.hpp"
#include "service/query.hpp"

#include <gtest/gtest.h>

#include <cctype>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace mnt;
using namespace mnt::svc;

namespace
{

/// A raw loopback HTTP/1.1 client: one request, reads until the server
/// closes the connection (the server always sends `Connection: close`).
struct client_response
{
    int status{0};
    std::string headers;
    std::string body;
};

client_response http_exchange(const std::uint16_t port, const std::string& request)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);

    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(port);
    EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr), 1);
    EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address)), 0);

    std::size_t sent = 0;
    while (sent < request.size())
    {
        // MSG_NOSIGNAL: if the server hits its read deadline and closes the
        // connection mid-send (it will under heavy ctest load), the client must
        // see EPIPE and break, not die from a process-wide SIGPIPE
        const auto n = ::send(fd, request.data() + sent, request.size() - sent, MSG_NOSIGNAL);
        if (n <= 0)
        {
            break;
        }
        sent += static_cast<std::size_t>(n);
    }

    std::string raw;
    char buffer[4096];
    for (;;)
    {
        const auto n = ::recv(fd, buffer, sizeof(buffer), 0);
        if (n <= 0)
        {
            break;
        }
        raw.append(buffer, static_cast<std::size_t>(n));
    }
    ::close(fd);

    client_response response{};
    const auto header_end = raw.find("\r\n\r\n");
    if (header_end == std::string::npos)
    {
        return response;
    }
    response.headers = raw.substr(0, header_end);
    response.body = raw.substr(header_end + 4);
    // "HTTP/1.1 NNN ..."
    if (response.headers.size() > 12)
    {
        response.status = std::stoi(response.headers.substr(9, 3));
    }
    return response;
}

std::string get_request(const std::string& target)
{
    return "GET " + target + " HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n";
}

std::string post_request(const std::string& target, const std::string& body)
{
    return "POST " + target + " HTTP/1.1\r\nHost: 127.0.0.1\r\nContent-Length: " + std::to_string(body.size()) +
           "\r\n\r\n" + body;
}

/// A tiny real catalog: two layouts of 2:1 MUX (cartesian + hexagonal).
class server_fixture : public ::testing::Test
{
protected:
    void SetUp() override
    {
        const auto network = bm::mux21();
        catalog.add_network("Trindade16", "2:1 MUX", network);

        const auto cartesian = pd::ortho(network);
        cat::layout_record qca{};
        qca.benchmark_set = "Trindade16";
        qca.benchmark_name = "2:1 MUX";
        qca.library = cat::gate_library_kind::qca_one;
        qca.clocking = cartesian.clocking().name();
        qca.algorithm = "ortho";
        qca.runtime = 0.1;
        qca.layout = cartesian;
        catalog.add_layout(qca);

        cat::layout_record hex{};
        hex.benchmark_set = "Trindade16";
        hex.benchmark_name = "2:1 MUX";
        hex.library = cat::gate_library_kind::bestagon;
        hex.algorithm = "ortho";
        hex.optimizations = {"45°"};
        hex.runtime = 0.2;
        hex.layout = pd::hexagonalization(cartesian);
        hex.clocking = hex.layout.clocking().name();
        catalog.add_layout(hex);

        engine = std::make_unique<query_engine>(catalog);
    }

    cat::catalog catalog;
    std::unique_ptr<query_engine> engine;
};

}  // namespace

// ------------------------------------------------------------ response cache

TEST(ResponseCacheTest, EvictsLeastRecentlyUsed)
{
    response_cache cache{2};
    cache.put("a", "1");
    cache.put("b", "2");
    EXPECT_EQ(cache.get("a"), std::optional<std::string>{"1"});  // refreshes "a"
    cache.put("c", "3");                                         // evicts "b"
    EXPECT_FALSE(cache.get("b").has_value());
    EXPECT_EQ(cache.get("a"), std::optional<std::string>{"1"});
    EXPECT_EQ(cache.get("c"), std::optional<std::string>{"3"});
    EXPECT_EQ(cache.size(), 2u);
}

TEST(ResponseCacheTest, ZeroCapacityDisablesCaching)
{
    response_cache cache{0};
    cache.put("a", "1");
    EXPECT_FALSE(cache.get("a").has_value());
    EXPECT_EQ(cache.size(), 0u);
}

// --------------------------------------------------------- socketless routes

TEST_F(server_fixture, HandleRoutesWithoutSockets)
{
    catalog_server server{*engine};

    const auto health = server.handle({"GET", "/healthz", "", ""});
    EXPECT_EQ(health.status, 200);
    EXPECT_EQ(json_value::parse(health.body).at("layouts").as_u64(), 2u);

    const auto layouts = server.handle({"GET", "/layouts", "", ""});
    EXPECT_EQ(layouts.status, 200);
    EXPECT_EQ(layouts.body, page_json_string(engine->run(page_query{})));

    const auto not_found = server.handle({"GET", "/nope", "", ""});
    EXPECT_EQ(not_found.status, 404);
    const auto bad_method = server.handle({"PUT", "/layouts", "", ""});
    EXPECT_EQ(bad_method.status, 405);
    const auto bad_query = server.handle({"GET", "/layouts", "library=cmos", ""});
    EXPECT_EQ(bad_query.status, 400);
    EXPECT_NE(json_value::parse(bad_query.body).at("error").at("message").as_string(), "");
}

TEST_F(server_fixture, HandleHonorsExpiredDeadline)
{
    catalog_server server{*engine};
    const auto response = server.handle({"GET", "/layouts", "", ""}, res::deadline_clock::after(0.0));
    EXPECT_EQ(response.status, 408);
}

// -------------------------------------------------------------- HTTP end2end

TEST_F(server_fixture, ServesEveryEndpointOverLoopback)
{
    server_options options{};
    options.threads = 2;
    catalog_server server{*engine, options};
    server.start();
    ASSERT_TRUE(server.running());
    ASSERT_NE(server.port(), 0);

    // /healthz
    const auto health = http_exchange(server.port(), get_request("/healthz"));
    EXPECT_EQ(health.status, 200);
    EXPECT_NE(health.headers.find("Content-Type: application/json"), std::string::npos);
    EXPECT_NE(health.headers.find("Connection: close"), std::string::npos);

    // /layouts — identical to the in-memory engine
    const auto layouts = http_exchange(server.port(), get_request("/layouts?library=Bestagon"));
    EXPECT_EQ(layouts.status, 200);
    page_query expected_query{};
    expected_query.filter.libraries = {cat::gate_library_kind::bestagon};
    EXPECT_EQ(layouts.body, page_json_string(engine->run(expected_query)));

    // POST /layouts with a JSON body
    const auto posted =
        http_exchange(server.port(), post_request("/layouts", R"({"libraries": ["Bestagon"]})"));
    EXPECT_EQ(posted.status, 200);
    EXPECT_EQ(posted.body, layouts.body);

    // /facets — metadata only
    const auto facets = http_exchange(server.port(), get_request("/facets"));
    EXPECT_EQ(facets.status, 200);
    const auto facet_doc = json_value::parse(facets.body);
    EXPECT_EQ(facet_doc.at("count").as_u64(), 0u);
    EXPECT_EQ(facet_doc.at("facets").at("libraries").at("Bestagon").as_u64(), 1u);

    // /best — best_only forced
    const auto best = http_exchange(server.port(), get_request("/best"));
    EXPECT_EQ(best.status, 200);
    page_query best_query{};
    best_query.filter.best_only = true;
    EXPECT_EQ(best.body, page_json_string(engine->run(best_query)));

    // /benchmarks
    const auto benchmarks = http_exchange(server.port(), get_request("/benchmarks"));
    EXPECT_EQ(benchmarks.status, 200);
    const auto bench_doc = json_value::parse(benchmarks.body);
    EXPECT_EQ(bench_doc.at("count").as_u64(), 1u);
    EXPECT_EQ(bench_doc.at("benchmarks").as_array().front().at("layouts").as_u64(), 2u);

    // /download/<id> — canonical .fgl bytes
    const auto& id = engine->id_of(0);
    const auto download = http_exchange(server.port(), get_request("/download/" + id));
    EXPECT_EQ(download.status, 200);
    EXPECT_NE(download.headers.find("Content-Type: application/xml"), std::string::npos);
    EXPECT_EQ(download.body, io::write_fgl_string(catalog.layouts()[0].layout));

    // error paths
    EXPECT_EQ(http_exchange(server.port(), get_request("/download/ffffffffffffffff")).status, 404);
    EXPECT_EQ(http_exchange(server.port(), get_request("/layouts?library=cmos")).status, 400);
    EXPECT_EQ(http_exchange(server.port(), get_request("/nope")).status, 404);
    EXPECT_EQ(http_exchange(server.port(), "NONSENSE\r\n\r\n").status, 400);

    server.stop();
    EXPECT_FALSE(server.running());
    server.stop();  // idempotent
}

TEST_F(server_fixture, SlowClientIsCutOffWithRequestTimeout)
{
    server_options options{};
    options.threads = 1;
    options.request_deadline_s = 0.3;
    catalog_server server{*engine, options};
    server.start();

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(server.port());
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr), 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address)), 0);

    // a slow-loris client: trickle an incomplete request head and never
    // finish it — the worker must answer 408 once the deadline expires
    // instead of waiting on the socket indefinitely
    const std::string fragment = "GET /layouts HTTP/1.1\r\n";
    for (const char c : fragment)
    {
        if (::send(fd, &c, 1, MSG_NOSIGNAL) <= 0)
        {
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds{10});
    }

    std::string raw;
    char buffer[1024];
    for (;;)
    {
        const auto n = ::recv(fd, buffer, sizeof(buffer), 0);
        if (n <= 0)
        {
            break;
        }
        raw.append(buffer, static_cast<std::size_t>(n));
    }
    ::close(fd);
    EXPECT_EQ(raw.rfind("HTTP/1.1 408", 0), 0u) << raw;
    server.stop();
}

TEST_F(server_fixture, ConcurrentClientsGetConsistentAnswers)
{
    server_options options{};
    options.threads = 4;
    catalog_server server{*engine, options};
    server.start();

    const auto expected = page_json_string(engine->run(page_query{}));
    std::vector<std::thread> clients;
    std::vector<std::string> bodies(8);
    for (std::size_t i = 0; i < bodies.size(); ++i)
    {
        clients.emplace_back([&, i] { bodies[i] = http_exchange(server.port(), get_request("/layouts")).body; });
    }
    for (auto& t : clients)
    {
        t.join();
    }
    for (const auto& body : bodies)
    {
        EXPECT_EQ(body, expected);
    }
    server.stop();
}

TEST_F(server_fixture, DownloadRejectsMalformedIds)
{
    server_options options{};
    options.threads = 1;
    catalog_server server{*engine, options};
    server.start();
    ASSERT_TRUE(server.running());

    const auto& good = engine->id_of(0);
    ASSERT_EQ(http_exchange(server.port(), get_request("/download/" + good)).status, 200);

    // path traversal must never reach the store or the filesystem
    EXPECT_EQ(http_exchange(server.port(), get_request("/download/../../etc/passwd")).status, 404);
    EXPECT_EQ(http_exchange(server.port(), get_request("/download/..%2f..%2fetc%2fpasswd")).status, 404);
    // uppercase hex is not a minted id shape
    std::string upper = good;
    for (auto& ch : upper)
    {
        ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
    }
    EXPECT_EQ(http_exchange(server.port(), get_request("/download/" + upper)).status, 404);
    // too short / too long / empty
    EXPECT_EQ(http_exchange(server.port(), get_request("/download/abc123")).status, 404);
    EXPECT_EQ(http_exchange(server.port(), get_request("/download/" + good + "00")).status, 404);
    EXPECT_EQ(http_exchange(server.port(), get_request("/download/")).status, 404);
    // correct length, non-hex alphabet
    EXPECT_EQ(http_exchange(server.port(), get_request("/download/zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz")).status,
              404);

    server.stop();
}
