#include "service/server.hpp"

#include "benchmarks/functions.hpp"
#include "common/resilience.hpp"
#include "core/filters.hpp"
#include "io/fgl_writer.hpp"
#include "physical_design/hexagonalization.hpp"
#include "physical_design/ortho.hpp"
#include "service/json.hpp"
#include "service/query.hpp"
#include "service/snapshot.hpp"
#include "telemetry/telemetry.hpp"

#include <gtest/gtest.h>

#include <cctype>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace mnt;
using namespace mnt::svc;

namespace
{

struct client_response
{
    int status{0};
    std::string headers;
    std::string body;

    /// Value of header \p name ("" when absent); \p name must match the
    /// server's canonical casing.
    [[nodiscard]] std::string header(const std::string& name) const
    {
        const auto key = "\r\n" + name + ": ";
        const auto at = headers.find(key);
        if (at == std::string::npos)
        {
            return {};
        }
        const auto begin = at + key.size();
        return headers.substr(begin, headers.find("\r\n", begin) - begin);
    }
};

/// A persistent loopback HTTP/1.1 client. Responses are framed by
/// Content-Length (absent = no body, e.g. 304), so several exchanges can
/// share one keep-alive connection; pipelining is just send_raw() twice
/// before the first read_response().
class keepalive_client
{
public:
    explicit keepalive_client(const std::uint16_t port)
    {
        fd = ::socket(AF_INET, SOCK_STREAM, 0);
        EXPECT_GE(fd, 0);
        sockaddr_in address{};
        address.sin_family = AF_INET;
        address.sin_port = htons(port);
        EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr), 1);
        EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address)), 0);
    }

    ~keepalive_client()
    {
        if (fd >= 0)
        {
            ::close(fd);
        }
    }

    keepalive_client(const keepalive_client&) = delete;
    keepalive_client& operator=(const keepalive_client&) = delete;

    void send_raw(const std::string& bytes) const
    {
        std::size_t sent = 0;
        while (sent < bytes.size())
        {
            const auto n = ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
            if (n <= 0)
            {
                break;
            }
            sent += static_cast<std::size_t>(n);
        }
    }

    /// Reads exactly one response off the connection.
    [[nodiscard]] client_response read_response()
    {
        client_response response{};
        const auto header_end = fill_until("\r\n\r\n");
        if (header_end == std::string::npos)
        {
            return response;
        }
        response.headers = buffered.substr(0, header_end);
        buffered.erase(0, header_end + 4);
        if (response.headers.size() > 12)
        {
            response.status = std::stoi(response.headers.substr(9, 3));
        }

        std::size_t content_length = 0;
        const auto key = response.headers.find("Content-Length: ");
        if (key != std::string::npos)
        {
            content_length = std::stoul(response.headers.substr(key + 16));
        }
        while (buffered.size() < content_length)
        {
            if (!fill_more())
            {
                break;
            }
        }
        response.body = buffered.substr(0, content_length);
        buffered.erase(0, content_length);
        return response;
    }

    /// True when the server has closed its end (a clean EOF on recv).
    [[nodiscard]] bool server_closed() const
    {
        char byte = 0;
        const auto n = ::recv(fd, &byte, 1, MSG_PEEK);
        return n == 0;
    }

private:
    [[nodiscard]] std::size_t fill_until(const std::string& marker)
    {
        for (;;)
        {
            const auto at = buffered.find(marker);
            if (at != std::string::npos)
            {
                return at;
            }
            if (!fill_more())
            {
                return std::string::npos;
            }
        }
    }

    [[nodiscard]] bool fill_more()
    {
        char buffer[4096];
        const auto n = ::recv(fd, buffer, sizeof(buffer), 0);
        if (n <= 0)
        {
            return false;
        }
        buffered.append(buffer, static_cast<std::size_t>(n));
        return true;
    }

    int fd{-1};
    std::string buffered;
};

/// One-shot exchange: sends `Connection: close` semantics are the caller's
/// job (use the request builders below); reads until the server closes.
client_response http_exchange(const std::uint16_t port, const std::string& request)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);

    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(port);
    EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr), 1);
    EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address)), 0);

    std::size_t sent = 0;
    while (sent < request.size())
    {
        // MSG_NOSIGNAL: if the server hits its read deadline and closes the
        // connection mid-send (it will under heavy ctest load), the client must
        // see EPIPE and break, not die from a process-wide SIGPIPE
        const auto n = ::send(fd, request.data() + sent, request.size() - sent, MSG_NOSIGNAL);
        if (n <= 0)
        {
            break;
        }
        sent += static_cast<std::size_t>(n);
    }

    std::string raw;
    char buffer[4096];
    for (;;)
    {
        const auto n = ::recv(fd, buffer, sizeof(buffer), 0);
        if (n <= 0)
        {
            break;
        }
        raw.append(buffer, static_cast<std::size_t>(n));
    }
    ::close(fd);

    client_response response{};
    const auto header_end = raw.find("\r\n\r\n");
    if (header_end == std::string::npos)
    {
        return response;
    }
    response.headers = raw.substr(0, header_end);
    response.body = raw.substr(header_end + 4);
    // "HTTP/1.1 NNN ..."
    if (response.headers.size() > 12)
    {
        response.status = std::stoi(response.headers.substr(9, 3));
    }
    return response;
}

std::string request_line(const std::string& method, const std::string& target, const bool close,
                         const std::string& extra_headers = {}, const std::string& body = {})
{
    std::string request = method + " " + target + " HTTP/1.1\r\nHost: 127.0.0.1\r\n";
    if (!body.empty())
    {
        request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
    }
    request += extra_headers;
    if (close)
    {
        request += "Connection: close\r\n";
    }
    return request + "\r\n" + body;
}

std::string get_request(const std::string& target)
{
    return request_line("GET", target, true);
}

std::string post_request(const std::string& target, const std::string& body)
{
    return request_line("POST", target, true, {}, body);
}

std::string keepalive_get(const std::string& target, const std::string& extra_headers = {})
{
    return request_line("GET", target, false, extra_headers);
}

/// A tiny real catalog: two layouts of 2:1 MUX (cartesian + hexagonal).
class server_fixture : public ::testing::Test
{
protected:
    void SetUp() override
    {
        const auto network = bm::mux21();
        catalog.add_network("Trindade16", "2:1 MUX", network);

        const auto cartesian = pd::ortho(network);
        cat::layout_record qca{};
        qca.benchmark_set = "Trindade16";
        qca.benchmark_name = "2:1 MUX";
        qca.library = cat::gate_library_kind::qca_one;
        qca.clocking = cartesian.clocking().name();
        qca.algorithm = "ortho";
        qca.runtime = 0.1;
        qca.layout = cartesian;
        catalog.add_layout(qca);

        cat::layout_record hex{};
        hex.benchmark_set = "Trindade16";
        hex.benchmark_name = "2:1 MUX";
        hex.library = cat::gate_library_kind::bestagon;
        hex.algorithm = "ortho";
        hex.optimizations = {"45°"};
        hex.runtime = 0.2;
        hex.layout = pd::hexagonalization(cartesian);
        hex.clocking = hex.layout.clocking().name();
        catalog.add_layout(hex);

        engine = std::make_unique<query_engine>(catalog);
    }

    cat::catalog catalog;
    std::unique_ptr<query_engine> engine;
};

}  // namespace

// ------------------------------------------------------------ response cache

TEST(ResponseCacheTest, EvictsLeastRecentlyUsed)
{
    response_cache cache{2};
    cache.put("a", "1", "e1");
    cache.put("b", "2", "e2");
    ASSERT_TRUE(cache.get("a").has_value());  // refreshes "a"
    EXPECT_EQ(cache.get("a")->body, "1");
    EXPECT_EQ(cache.get("a")->etag, "e1");
    cache.put("c", "3", "e3");  // evicts "b"
    EXPECT_FALSE(cache.get("b").has_value());
    EXPECT_TRUE(cache.get("a").has_value());
    EXPECT_TRUE(cache.get("c").has_value());
    EXPECT_EQ(cache.size(), 2u);
}

TEST(ResponseCacheTest, ZeroCapacityDisablesCaching)
{
    response_cache cache{0};
    cache.put("a", "1", "e");
    EXPECT_FALSE(cache.get("a").has_value());
    EXPECT_EQ(cache.size(), 0u);
}

TEST(ResponseCacheTest, EvictsPastByteBound)
{
    // each entry: 1-byte key + 8-byte body + 2-byte etag = 11 bytes
    response_cache cache{100, 24};
    cache.put("a", "aaaaaaaa", "e1");
    cache.put("b", "bbbbbbbb", "e2");
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.bytes(), 22u);
    cache.put("c", "cccccccc", "e3");  // 33 > 24: evicts LRU "a"
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_LE(cache.bytes(), 24u);
    EXPECT_FALSE(cache.get("a").has_value());
    EXPECT_TRUE(cache.get("b").has_value());
    EXPECT_TRUE(cache.get("c").has_value());

    // one oversized body evicts everything else and is then dropped itself
    cache.put("d", std::string(100, 'd'), "e4");
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.bytes(), 0u);
}

TEST(ResponseCacheTest, StaleGenerationPutIsRejected)
{
    response_cache cache{8};
    cache.put("a", "old", "e-old", 0);
    ASSERT_TRUE(cache.get("a").has_value());

    cache.invalidate(1);
    EXPECT_EQ(cache.size(), 0u);
    EXPECT_EQ(cache.bytes(), 0u);

    // a handler that rendered against the pre-swap snapshot races its put()
    // in after the invalidation — it must be dropped, not re-admitted
    cache.put("a", "stale", "e-stale", 0);
    EXPECT_FALSE(cache.get("a").has_value());

    cache.put("a", "fresh", "e-fresh", 1);
    ASSERT_TRUE(cache.get("a").has_value());
    EXPECT_EQ(cache.get("a")->body, "fresh");
}

// --------------------------------------------------------- socketless routes

TEST_F(server_fixture, HandleRoutesWithoutSockets)
{
    catalog_server server{*engine};

    const auto health = server.handle({"GET", "/healthz", "", ""});
    EXPECT_EQ(health.status, 200);
    EXPECT_EQ(json_value::parse(health.body).at("layouts").as_u64(), 2u);

    const auto layouts = server.handle({"GET", "/layouts", "", ""});
    EXPECT_EQ(layouts.status, 200);
    EXPECT_EQ(layouts.body, page_json_string(engine->run(page_query{})));
    EXPECT_EQ(layouts.etag, make_etag(layouts.body));

    const auto not_found = server.handle({"GET", "/nope", "", ""});
    EXPECT_EQ(not_found.status, 404);
    const auto bad_method = server.handle({"PUT", "/layouts", "", ""});
    EXPECT_EQ(bad_method.status, 405);
    const auto unknown_method = server.handle({"BREW", "/layouts", "", ""});
    EXPECT_EQ(unknown_method.status, 501);
    const auto bad_query = server.handle({"GET", "/layouts", "library=cmos", ""});
    EXPECT_EQ(bad_query.status, 400);
    EXPECT_NE(json_value::parse(bad_query.body).at("error").at("message").as_string(), "");
}

TEST_F(server_fixture, HandleHonorsExpiredDeadline)
{
    catalog_server server{*engine};
    const auto response = server.handle({"GET", "/layouts", "", ""}, res::deadline_clock::after(0.0));
    EXPECT_EQ(response.status, 408);
}

TEST_F(server_fixture, HandleAnswersConditionalRequestsWith304)
{
    catalog_server server{*engine};

    const auto first = server.handle({"GET", "/benchmarks", "", ""});
    ASSERT_EQ(first.status, 200);
    ASSERT_FALSE(first.etag.empty());
    EXPECT_EQ(first.body, render_benchmarks_json(*engine));

    http_request revisit{"GET", "/benchmarks", "", ""};
    revisit.if_none_match = "\"" + first.etag + "\"";
    const auto second = server.handle(revisit);
    EXPECT_EQ(second.status, 304);
    EXPECT_EQ(second.etag, first.etag);
    EXPECT_TRUE(second.body.empty());

    // a non-matching validator serves the full body again
    revisit.if_none_match = "\"0123456789abcdef0123456789abcdef\"";
    EXPECT_EQ(server.handle(revisit).status, 200);
    // the wildcard matches any representation
    revisit.if_none_match = "*";
    EXPECT_EQ(server.handle(revisit).status, 304);
}

TEST_F(server_fixture, PublishSwapsSnapshotAndInvalidatesCache)
{
    catalog_server server{*engine};
    EXPECT_EQ(server.snapshot_generation(), 0u);

    const auto before = server.handle({"GET", "/benchmarks", "", ""});
    ASSERT_EQ(before.status, 200);

    // regeneration grew the catalog: a fresh engine over a superset catalog
    catalog.add_network("EPFL", "xor5", bm::mux21());
    auto regrown = std::make_shared<query_engine>(catalog);
    server.publish(regrown);

    EXPECT_EQ(server.snapshot_generation(), 1u);
    const auto after = server.handle({"GET", "/benchmarks", "", ""});
    ASSERT_EQ(after.status, 200);
    EXPECT_NE(after.body, before.body);
    EXPECT_NE(after.etag, before.etag);
    EXPECT_EQ(json_value::parse(after.body).at("count").as_u64(), 2u);

    // the old validator no longer matches — the revisit re-downloads
    http_request revisit{"GET", "/benchmarks", "", ""};
    revisit.if_none_match = "\"" + before.etag + "\"";
    EXPECT_EQ(server.handle(revisit).status, 200);
}

// -------------------------------------------------------------- HTTP parsing

TEST(ParseHttpRequestTest, ParsesConnectionAndConditionalHeaders)
{
    const auto keep = parse_http_request("GET / HTTP/1.1\r\nHost: x\r\n\r\n", 1024);
    ASSERT_EQ(keep.status, http_parse_status::ok);
    EXPECT_FALSE(keep.request.connection_close);

    const auto close = parse_http_request("GET / HTTP/1.1\r\nConnection: close\r\n\r\n", 1024);
    ASSERT_EQ(close.status, http_parse_status::ok);
    EXPECT_TRUE(close.request.connection_close);

    // HTTP/1.0 defaults to close unless keep-alive is requested
    const auto old = parse_http_request("GET / HTTP/1.0\r\n\r\n", 1024);
    ASSERT_EQ(old.status, http_parse_status::ok);
    EXPECT_TRUE(old.request.connection_close);
    const auto old_keep = parse_http_request("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", 1024);
    ASSERT_EQ(old_keep.status, http_parse_status::ok);
    EXPECT_FALSE(old_keep.request.connection_close);

    const auto conditional =
        parse_http_request("GET / HTTP/1.1\r\nIf-None-Match: \"abc\"\r\n\r\n", 1024);
    ASSERT_EQ(conditional.status, http_parse_status::ok);
    EXPECT_EQ(conditional.request.if_none_match, "\"abc\"");
}

// -------------------------------------------------------------- HTTP end2end

TEST_F(server_fixture, ServesEveryEndpointOverLoopback)
{
    server_options options{};
    options.threads = 2;
    catalog_server server{*engine, options};
    server.start();
    ASSERT_TRUE(server.running());
    ASSERT_NE(server.port(), 0);

    // /healthz
    const auto health = http_exchange(server.port(), get_request("/healthz"));
    EXPECT_EQ(health.status, 200);
    EXPECT_NE(health.headers.find("Content-Type: application/json"), std::string::npos);
    EXPECT_NE(health.headers.find("Connection: close"), std::string::npos);

    // /layouts — identical to the in-memory engine
    const auto layouts = http_exchange(server.port(), get_request("/layouts?library=Bestagon"));
    EXPECT_EQ(layouts.status, 200);
    page_query expected_query{};
    expected_query.filter.libraries = {cat::gate_library_kind::bestagon};
    EXPECT_EQ(layouts.body, page_json_string(engine->run(expected_query)));

    // the default page comes out of the pre-rendered snapshot — still
    // byte-identical to a direct engine render
    const auto default_page = http_exchange(server.port(), get_request("/layouts"));
    EXPECT_EQ(default_page.status, 200);
    EXPECT_EQ(default_page.body, page_json_string(engine->run(page_query{})));
    EXPECT_FALSE(default_page.header("ETag").empty());

    // POST /layouts with a JSON body
    const auto posted =
        http_exchange(server.port(), post_request("/layouts", R"({"libraries": ["Bestagon"]})"));
    EXPECT_EQ(posted.status, 200);
    EXPECT_EQ(posted.body, layouts.body);

    // /facets — metadata only; snapshot path must match the engine render
    const auto facets = http_exchange(server.port(), get_request("/facets"));
    EXPECT_EQ(facets.status, 200);
    const auto facet_doc = json_value::parse(facets.body);
    EXPECT_EQ(facet_doc.at("count").as_u64(), 0u);
    EXPECT_EQ(facet_doc.at("facets").at("libraries").at("Bestagon").as_u64(), 1u);
    page_query facet_query{};
    facet_query.limit = 0;
    facet_query.include_facets = true;
    EXPECT_EQ(facets.body, page_json_string(engine->run(facet_query)));

    // /best — best_only forced
    const auto best = http_exchange(server.port(), get_request("/best"));
    EXPECT_EQ(best.status, 200);
    page_query best_query{};
    best_query.filter.best_only = true;
    EXPECT_EQ(best.body, page_json_string(engine->run(best_query)));

    // /benchmarks — snapshot path, byte-identical to the renderer
    const auto benchmarks = http_exchange(server.port(), get_request("/benchmarks"));
    EXPECT_EQ(benchmarks.status, 200);
    EXPECT_EQ(benchmarks.body, render_benchmarks_json(*engine));
    const auto bench_doc = json_value::parse(benchmarks.body);
    EXPECT_EQ(bench_doc.at("count").as_u64(), 1u);
    EXPECT_EQ(bench_doc.at("benchmarks").as_array().front().at("layouts").as_u64(), 2u);

    // /download/<id> — canonical .fgl bytes; the id doubles as the ETag
    const auto& id = engine->id_of(0);
    const auto download = http_exchange(server.port(), get_request("/download/" + id));
    EXPECT_EQ(download.status, 200);
    EXPECT_NE(download.headers.find("Content-Type: application/xml"), std::string::npos);
    EXPECT_EQ(download.body, io::write_fgl_string(catalog.layouts()[0].layout));
    EXPECT_EQ(download.header("ETag"), "\"" + id + "\"");

    // error paths
    EXPECT_EQ(http_exchange(server.port(), get_request("/download/ffffffffffffffff")).status, 404);
    EXPECT_EQ(http_exchange(server.port(), get_request("/layouts?library=cmos")).status, 400);
    EXPECT_EQ(http_exchange(server.port(), get_request("/nope")).status, 404);
    EXPECT_EQ(http_exchange(server.port(), "NONSENSE\r\n\r\n").status, 400);
    EXPECT_EQ(http_exchange(server.port(), request_line("BREW", "/layouts", true)).status, 501);

    server.stop();
    EXPECT_FALSE(server.running());
    server.stop();  // idempotent
}

TEST_F(server_fixture, KeepAliveServesSequentialRequestsOnOneConnection)
{
    server_options options{};
    options.threads = 1;
    catalog_server server{*engine, options};
    server.start();

    keepalive_client client{server.port()};

    client.send_raw(keepalive_get("/healthz"));
    const auto first = client.read_response();
    EXPECT_EQ(first.status, 200);
    EXPECT_EQ(first.header("Connection"), "keep-alive");
    EXPECT_EQ(json_value::parse(first.body).at("layouts").as_u64(), 2u);

    client.send_raw(keepalive_get("/benchmarks"));
    const auto second = client.read_response();
    EXPECT_EQ(second.status, 200);
    EXPECT_EQ(second.body, render_benchmarks_json(*engine));

    // the final request asks for close; the server honors it
    client.send_raw(get_request("/layouts"));
    const auto last = client.read_response();
    EXPECT_EQ(last.status, 200);
    EXPECT_EQ(last.header("Connection"), "close");
    EXPECT_EQ(last.body, page_json_string(engine->run(page_query{})));
    EXPECT_TRUE(client.server_closed());

    server.stop();
}

TEST_F(server_fixture, PipelinedRequestsAreAnsweredInOrder)
{
    server_options options{};
    options.threads = 1;
    catalog_server server{*engine, options};
    server.start();

    keepalive_client client{server.port()};

    // both requests hit the wire before the first response is read
    client.send_raw(keepalive_get("/benchmarks") + keepalive_get("/healthz"));

    const auto first = client.read_response();
    EXPECT_EQ(first.status, 200);
    EXPECT_EQ(first.body, render_benchmarks_json(*engine));

    const auto second = client.read_response();
    EXPECT_EQ(second.status, 200);
    EXPECT_EQ(json_value::parse(second.body).at("status").as_string(), "ok");

    server.stop();
}

TEST_F(server_fixture, IfNoneMatchRevisitGets304WithoutBody)
{
    server_options options{};
    options.threads = 1;
    catalog_server server{*engine, options};
    server.start();

    keepalive_client client{server.port()};

    client.send_raw(keepalive_get("/benchmarks"));
    const auto first = client.read_response();
    ASSERT_EQ(first.status, 200);
    const auto etag = first.header("ETag");
    ASSERT_FALSE(etag.empty());

    client.send_raw(keepalive_get("/benchmarks", "If-None-Match: " + etag + "\r\n"));
    const auto revisit = client.read_response();
    EXPECT_EQ(revisit.status, 304);
    EXPECT_TRUE(revisit.body.empty());
    EXPECT_EQ(revisit.header("ETag"), etag);
    EXPECT_EQ(revisit.headers.find("Content-Length"), std::string::npos);

    // the connection survives the 304 and serves a normal response next
    client.send_raw(keepalive_get("/healthz"));
    EXPECT_EQ(client.read_response().status, 200);

    server.stop();
}

TEST_F(server_fixture, HeadMatchesGetWithoutBody)
{
    server_options options{};
    options.threads = 1;
    catalog_server server{*engine, options};
    server.start();

    const auto get = http_exchange(server.port(), get_request("/benchmarks"));
    ASSERT_EQ(get.status, 200);

    const auto head = http_exchange(server.port(), request_line("HEAD", "/benchmarks", true));
    EXPECT_EQ(head.status, 200);
    EXPECT_TRUE(head.body.empty());
    // identical headers: Content-Length reflects the would-be body
    EXPECT_EQ(head.header("Content-Length"), std::to_string(get.body.size()));
    EXPECT_EQ(head.header("Content-Type"), get.header("Content-Type"));
    EXPECT_EQ(head.header("ETag"), get.header("ETag"));

    // HEAD of an error route carries the error's frame, no body
    const auto missing = http_exchange(server.port(), request_line("HEAD", "/nope", true));
    EXPECT_EQ(missing.status, 404);
    EXPECT_TRUE(missing.body.empty());

    server.stop();
}

TEST_F(server_fixture, SlowClientIsCutOffWithRequestTimeout)
{
    server_options options{};
    options.threads = 1;
    options.request_deadline_s = 0.3;
    catalog_server server{*engine, options};
    server.start();

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(server.port());
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr), 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address)), 0);

    // a slow-loris client: trickle an incomplete request head and never
    // finish it — the event loop must answer 408 once the deadline expires
    // instead of holding the connection open indefinitely
    const std::string fragment = "GET /layouts HTTP/1.1\r\n";
    for (const char c : fragment)
    {
        if (::send(fd, &c, 1, MSG_NOSIGNAL) <= 0)
        {
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds{10});
    }

    std::string raw;
    char buffer[1024];
    for (;;)
    {
        const auto n = ::recv(fd, buffer, sizeof(buffer), 0);
        if (n <= 0)
        {
            break;
        }
        raw.append(buffer, static_cast<std::size_t>(n));
    }
    ::close(fd);
    EXPECT_EQ(raw.rfind("HTTP/1.1 408", 0), 0u) << raw;
    server.stop();
}

TEST_F(server_fixture, IdleKeepAliveConnectionIsClosed)
{
    server_options options{};
    options.threads = 1;
    options.idle_timeout_s = 0.2;
    catalog_server server{*engine, options};
    server.start();

    keepalive_client client{server.port()};
    client.send_raw(keepalive_get("/healthz"));
    EXPECT_EQ(client.read_response().status, 200);

    // idle past the timeout: the server reclaims the connection
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds{5};
    while (!client.server_closed() && std::chrono::steady_clock::now() < deadline)
    {
        std::this_thread::sleep_for(std::chrono::milliseconds{50});
    }
    EXPECT_TRUE(client.server_closed());

    server.stop();
}

TEST_F(server_fixture, AcceptFailureBacksOffInsteadOfSpinning)
{
    server_options options{};
    options.threads = 1;
    catalog_server server{*engine, options};
    server.start();

    auto& errors = tel::registry::instance().get_counter("server.accept_errors");
    const auto errors_before = errors.value();

    // the first accept attempt reports EMFILE (fd exhaustion); the loop must
    // count it, back off with the listen fd deregistered, then recover and
    // serve the very connection whose accept initially failed
    res::fault::configure("server.accept=1");
    const auto health = http_exchange(server.port(), get_request("/healthz"));
    res::fault::configure("");

    EXPECT_EQ(health.status, 200);
    EXPECT_EQ(errors.value(), errors_before + 1);

    // and the server keeps serving afterwards
    EXPECT_EQ(http_exchange(server.port(), get_request("/healthz")).status, 200);

    server.stop();
}

TEST_F(server_fixture, ConcurrentClientsGetConsistentAnswers)
{
    server_options options{};
    options.threads = 4;
    catalog_server server{*engine, options};
    server.start();

    const auto expected = page_json_string(engine->run(page_query{}));
    std::vector<std::thread> clients;
    std::vector<std::string> bodies(8);
    for (std::size_t i = 0; i < bodies.size(); ++i)
    {
        clients.emplace_back([&, i] { bodies[i] = http_exchange(server.port(), get_request("/layouts")).body; });
    }
    for (auto& t : clients)
    {
        t.join();
    }
    for (const auto& body : bodies)
    {
        EXPECT_EQ(body, expected);
    }
    server.stop();
}

TEST_F(server_fixture, DownloadRejectsMalformedIds)
{
    server_options options{};
    options.threads = 1;
    catalog_server server{*engine, options};
    server.start();
    ASSERT_TRUE(server.running());

    const auto& good = engine->id_of(0);
    ASSERT_EQ(http_exchange(server.port(), get_request("/download/" + good)).status, 200);

    // path traversal must never reach the store or the filesystem
    EXPECT_EQ(http_exchange(server.port(), get_request("/download/../../etc/passwd")).status, 404);
    EXPECT_EQ(http_exchange(server.port(), get_request("/download/..%2f..%2fetc%2fpasswd")).status, 404);
    // uppercase hex is not a minted id shape
    std::string upper = good;
    for (auto& ch : upper)
    {
        ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
    }
    EXPECT_EQ(http_exchange(server.port(), get_request("/download/" + upper)).status, 404);
    // too short / too long / empty
    EXPECT_EQ(http_exchange(server.port(), get_request("/download/abc123")).status, 404);
    EXPECT_EQ(http_exchange(server.port(), get_request("/download/" + good + "00")).status, 404);
    EXPECT_EQ(http_exchange(server.port(), get_request("/download/")).status, 404);
    // correct length, non-hex alphabet
    EXPECT_EQ(http_exchange(server.port(), get_request("/download/zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz")).status,
              404);

    server.stop();
}
