#pragma once

/// \file test_networks.hpp
/// \brief Shared specimen networks for the physical design test suites.

#include "network/logic_network.hpp"

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace mnt::test
{

using ntk::logic_network;

/// y = (~s & a) | (s & b)
inline logic_network mux21()
{
    logic_network network{"mux21"};
    const auto s = network.create_pi("s");
    const auto a = network.create_pi("a");
    const auto b = network.create_pi("b");
    const auto l = network.create_and(network.create_not(s), a);
    const auto r = network.create_and(s, b);
    network.create_po(network.create_or(l, r), "y");
    return network;
}

/// sum = a ^ b ^ cin, carry = maj(a, b, cin)
inline logic_network full_adder()
{
    logic_network network{"fa"};
    const auto a = network.create_pi("a");
    const auto b = network.create_pi("b");
    const auto cin = network.create_pi("cin");
    network.create_po(network.create_xor(network.create_xor(a, b), cin), "sum");
    network.create_po(network.create_maj(a, b, cin), "carry");
    return network;
}

/// half adder: sum = a ^ b, carry = a & b (shared fanins)
inline logic_network half_adder()
{
    logic_network network{"ha"};
    const auto a = network.create_pi("a");
    const auto b = network.create_pi("b");
    network.create_po(network.create_xor(a, b), "sum");
    network.create_po(network.create_and(a, b), "carry");
    return network;
}

/// k-input xor chain
inline logic_network parity(const std::size_t k, const std::string& name = "parity")
{
    logic_network network{name};
    auto acc = network.create_pi("x0");
    for (std::size_t i = 1; i < k; ++i)
    {
        acc = network.create_xor(acc, network.create_pi("x" + std::to_string(i)));
    }
    network.create_po(acc, "p");
    return network;
}

/// Deterministic pseudo-random network with locality (fanins drawn from a
/// sliding window), mixed gate types, and high-fanout nodes.
inline logic_network random_network(const std::size_t num_pis, const std::size_t num_gates,
                                    const std::size_t num_pos, const std::uint64_t seed,
                                    const std::string& name = "rand")
{
    logic_network network{name};
    std::mt19937_64 rng{seed};
    std::vector<logic_network::node> pool;

    for (std::size_t i = 0; i < num_pis; ++i)
    {
        pool.push_back(network.create_pi("in" + std::to_string(i)));
    }

    const std::size_t window = 24;
    for (std::size_t i = 0; i < num_gates; ++i)
    {
        const auto lo = pool.size() > window ? pool.size() - window : 0u;
        std::uniform_int_distribution<std::size_t> pick{lo, pool.size() - 1};
        const auto a = pool[pick(rng)];
        const auto b = pool[pick(rng)];
        const auto kind = rng() % 6;
        logic_network::node g{};
        switch (kind)
        {
            case 0: g = network.create_and(a, b); break;
            case 1: g = network.create_or(a, b); break;
            case 2: g = network.create_xor(a, b); break;
            case 3: g = network.create_nand(a, b); break;
            case 4: g = network.create_not(a); break;
            default: g = network.create_xnor(a, b); break;
        }
        pool.push_back(g);
    }

    for (std::size_t i = 0; i < num_pos; ++i)
    {
        network.create_po(pool[pool.size() - 1 - (i % std::min(pool.size(), window))],
                          "out" + std::to_string(i));
    }
    return network;
}

}  // namespace mnt::test
