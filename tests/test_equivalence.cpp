#include "verification/equivalence.hpp"

#include "layout/routing.hpp"
#include "network/transforms.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace mnt;
using namespace mnt::ntk;
using namespace mnt::ver;

namespace
{

logic_network make_mux()
{
    logic_network network{"mux"};
    const auto s = network.create_pi("s");
    const auto a = network.create_pi("a");
    const auto b = network.create_pi("b");
    const auto lhs = network.create_and(network.create_not(s), a);
    const auto rhs = network.create_and(s, b);
    network.create_po(network.create_or(lhs, rhs), "y");
    return network;
}

/// same function, different structure: y = (a & ~s) | (b & s) via xor trick
logic_network make_mux_variant()
{
    logic_network network{"mux2"};
    const auto s = network.create_pi("s");
    const auto a = network.create_pi("a");
    const auto b = network.create_pi("b");
    // y = a ^ (s & (a ^ b))
    const auto axb = network.create_xor(a, b);
    const auto gated = network.create_and(s, axb);
    network.create_po(network.create_xor(a, gated), "y");
    return network;
}

}  // namespace

TEST(EquivalenceTest, IdenticalNetworksAreEquivalent)
{
    const auto result = check_equivalence(make_mux(), make_mux());
    EXPECT_TRUE(result.equivalent);
    EXPECT_TRUE(result.formal);
    EXPECT_TRUE(result.reason.empty());
}

TEST(EquivalenceTest, StructurallyDifferentButEquivalent)
{
    EXPECT_TRUE(check_equivalence(make_mux(), make_mux_variant()));
}

TEST(EquivalenceTest, PiOrderDoesNotMatter)
{
    logic_network a{"a"};
    const auto x1 = a.create_pi("x");
    const auto y1 = a.create_pi("y");
    a.create_po(a.create_lt(x1, y1), "o");  // ~x & y

    logic_network b{"b"};
    const auto y2 = b.create_pi("y");  // swapped creation order
    const auto x2 = b.create_pi("x");
    b.create_po(b.create_lt(x2, y2), "o");

    EXPECT_TRUE(check_equivalence(a, b));
}

TEST(EquivalenceTest, DetectsFunctionalMismatch)
{
    logic_network a{"a"};
    const auto x1 = a.create_pi("x");
    const auto y1 = a.create_pi("y");
    a.create_po(a.create_and(x1, y1), "o");

    logic_network b{"b"};
    const auto x2 = b.create_pi("x");
    const auto y2 = b.create_pi("y");
    b.create_po(b.create_or(x2, y2), "o");

    const auto result = check_equivalence(a, b);
    EXPECT_FALSE(result.equivalent);
    EXPECT_NE(result.reason.find("'o'"), std::string::npos);
}

TEST(EquivalenceTest, DetectsIoNameMismatch)
{
    logic_network a{"a"};
    a.create_po(a.create_pi("x"), "o");
    logic_network b{"b"};
    b.create_po(b.create_pi("z"), "o");
    const auto result = check_equivalence(a, b);
    EXPECT_FALSE(result.equivalent);
    EXPECT_NE(result.reason.find("input"), std::string::npos);
}

TEST(EquivalenceTest, DetectsPoNameMismatch)
{
    logic_network a{"a"};
    a.create_po(a.create_pi("x"), "o1");
    logic_network b{"b"};
    b.create_po(b.create_pi("x"), "o2");
    EXPECT_FALSE(check_equivalence(a, b));
}

TEST(EquivalenceTest, LargeNetworkFallsBackToRandom)
{
    // 20-input xor chains: equivalent by construction
    logic_network a{"a"};
    logic_network b{"b"};
    logic_network::node acc_a = logic_network::invalid_node;
    logic_network::node acc_b = logic_network::invalid_node;
    for (int i = 0; i < 20; ++i)
    {
        const auto name = "x" + std::to_string(i);
        const auto pa = a.create_pi(name);
        const auto pb = b.create_pi(name);
        acc_a = (i == 0) ? pa : a.create_xor(acc_a, pa);
        acc_b = (i == 0) ? pb : b.create_xor(acc_b, pb);
    }
    a.create_po(acc_a, "p");
    b.create_po(acc_b, "p");

    const auto result = check_equivalence(a, b);
    EXPECT_TRUE(result.equivalent);
    EXPECT_FALSE(result.formal);
}

TEST(EquivalenceTest, RandomCheckFindsEasyMismatch)
{
    logic_network a{"a"};
    logic_network b{"b"};
    logic_network::node acc_a = logic_network::invalid_node;
    logic_network::node acc_b = logic_network::invalid_node;
    for (int i = 0; i < 20; ++i)
    {
        const auto name = "x" + std::to_string(i);
        const auto pa = a.create_pi(name);
        const auto pb = b.create_pi(name);
        acc_a = (i == 0) ? pa : a.create_xor(acc_a, pa);
        acc_b = (i == 0) ? pb : b.create_and(acc_b, pb);
    }
    a.create_po(acc_a, "p");
    b.create_po(acc_b, "p");
    EXPECT_FALSE(check_equivalence(a, b));
}

TEST(EquivalenceTest, TransformsPreserveFunction)
{
    const auto mux = make_mux();
    EXPECT_TRUE(check_equivalence(mux, cleanup(mux)));
    EXPECT_TRUE(check_equivalence(mux, substitute_fanouts(mux)));
    EXPECT_TRUE(check_equivalence(mux, to_aoi(mux)));
}

TEST(EquivalenceTest, LayoutEquivalence)
{
    // hand-build the AND layout and check it against its specification
    lyt::gate_level_layout layout{"and", lyt::layout_topology::cartesian, lyt::clocking_scheme::twoddwave(), 4, 3};
    layout.place({1, 0}, gate_type::pi, "a");
    layout.place({0, 1}, gate_type::pi, "b");
    layout.place({1, 1}, gate_type::and2);
    layout.place({2, 1}, gate_type::po, "y");
    layout.connect({1, 0}, {1, 1});
    layout.connect({0, 1}, {1, 1});
    layout.connect({1, 1}, {2, 1});

    logic_network spec{"and"};
    spec.create_po(spec.create_and(spec.create_pi("a"), spec.create_pi("b")), "y");
    EXPECT_TRUE(check_layout_equivalence(spec, layout));

    logic_network wrong{"or"};
    wrong.create_po(wrong.create_or(wrong.create_pi("a"), wrong.create_pi("b")), "y");
    EXPECT_FALSE(check_layout_equivalence(wrong, layout));
}

TEST(EquivalenceTest, BrokenLayoutReportsExtractionFailure)
{
    lyt::gate_level_layout layout{"broken", lyt::layout_topology::cartesian, lyt::clocking_scheme::twoddwave(), 3, 3};
    layout.place({1, 0}, gate_type::pi, "a");
    layout.place({1, 1}, gate_type::and2);  // missing second fanin
    layout.place({2, 1}, gate_type::po, "y");
    layout.connect({1, 0}, {1, 1});
    layout.connect({1, 1}, {2, 1});

    logic_network spec{"and"};
    spec.create_po(spec.create_and(spec.create_pi("a"), spec.create_pi("b")), "y");
    const auto result = check_layout_equivalence(spec, layout);
    EXPECT_FALSE(result.equivalent);
    EXPECT_NE(result.reason.find("extraction failed"), std::string::npos);
}

// ---------------------------------------------------------- shared fanout
//
// XOR/XNOR/MAJ behind a shared driver exercise the miter construction
// where one signal participates in several parity/majority cones at once —
// the cases the FCN flows produce after fanout substitution.

TEST(EquivalenceTest, SharedFanoutXorXnorComplementAgree)
{
    // y0 = a ^ b, y1 = ~(a ^ b), both cones sharing the same xor node
    logic_network shared{"shared_parity"};
    {
        const auto a = shared.create_pi("a");
        const auto b = shared.create_pi("b");
        const auto x = shared.create_xor(a, b);
        shared.create_po(x, "y0");
        shared.create_po(shared.create_not(x), "y1");
    }

    // independent cones: y1 rebuilt as a dedicated xnor gate
    logic_network split{"split_parity"};
    {
        const auto a = split.create_pi("a");
        const auto b = split.create_pi("b");
        split.create_po(split.create_xor(a, b), "y0");
        split.create_po(split.create_gate(gate_type::xnor2, std::vector<logic_network::node>{a, b}), "y1");
    }
    EXPECT_TRUE(check_equivalence(shared, split));
}

TEST(EquivalenceTest, SharedFanoutMajorityDecompositionAgrees)
{
    // maj(a, b, c) with a and b additionally driving a second output
    logic_network majority{"shared_maj"};
    {
        const auto a = majority.create_pi("a");
        const auto b = majority.create_pi("b");
        const auto c = majority.create_pi("c");
        majority.create_po(majority.create_maj(a, b, c), "y0");
        majority.create_po(majority.create_and(a, b), "y1");
    }

    logic_network decomposed{"decomposed_maj"};
    {
        const auto a = decomposed.create_pi("a");
        const auto b = decomposed.create_pi("b");
        const auto c = decomposed.create_pi("c");
        const auto ab = decomposed.create_and(a, b);
        const auto ac = decomposed.create_and(a, c);
        const auto bc = decomposed.create_and(b, c);
        decomposed.create_po(decomposed.create_or(decomposed.create_or(ab, ac), bc), "y0");
        decomposed.create_po(ab, "y1");
    }
    EXPECT_TRUE(check_equivalence(majority, decomposed));

    // the layout-prep transforms must preserve the shared-fanout function
    EXPECT_TRUE(check_equivalence(majority, substitute_fanouts(decompose_maj(majority), 2)));
}

TEST(EquivalenceTest, SharedFanoutParityFlipIsDetected)
{
    // same sharing shape, but y1 loses its complement: must not pass
    logic_network shared{"shared_parity"};
    {
        const auto a = shared.create_pi("a");
        const auto b = shared.create_pi("b");
        const auto x = shared.create_xor(a, b);
        shared.create_po(x, "y0");
        shared.create_po(shared.create_not(x), "y1");
    }

    logic_network flipped{"flipped_parity"};
    {
        const auto a = flipped.create_pi("a");
        const auto b = flipped.create_pi("b");
        const auto x = flipped.create_xor(a, b);
        flipped.create_po(x, "y0");
        flipped.create_po(x, "y1");
    }
    const auto result = check_equivalence(shared, flipped);
    EXPECT_FALSE(result.equivalent);
    EXPECT_FALSE(result.reason.empty());
}
