#include "telemetry/trace_export.hpp"

#include "benchmarks/functions.hpp"
#include "common/types.hpp"
#include "physical_design/hexagonalization.hpp"
#include "physical_design/ortho.hpp"
#include "physical_design/portfolio.hpp"
#include "service/json.hpp"
#include "service/query.hpp"
#include "service/server.hpp"
#include "telemetry/telemetry.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

using namespace mnt;
using mnt::svc::json_value;

namespace
{

/// Recording on + empty registry for every test, recording off afterwards so
/// other test binaries' assumptions hold.
class trace_fixture : public ::testing::Test
{
protected:
    void SetUp() override
    {
        tel::registry::instance().reset();
        tel::set_trace_recording(true);
    }

    void TearDown() override
    {
        tel::set_trace_recording(false);
        tel::registry::instance().reset();
    }
};

/// The ph:"X" events of a parsed trace document.
std::vector<const json_value*> complete_events(const json_value& document)
{
    std::vector<const json_value*> spans;
    for (const auto& event : document.at("traceEvents").as_array())
    {
        if (event.at("ph").as_string() == "X")
        {
            spans.push_back(&event);
        }
    }
    return spans;
}

bool has_span_named(const json_value& document, const std::string& name)
{
    for (const auto* event : complete_events(document))
    {
        if (event->at("name").as_string() == name)
        {
            return true;
        }
    }
    return false;
}

/// Minimal raw loopback HTTP client (the server always closes after one
/// response).
std::string http_get(const std::uint16_t port, const std::string& target)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(port);
    EXPECT_EQ(::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr), 1);
    EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address)), 0);
    const std::string request = "GET " + target + " HTTP/1.1\r\nHost: 127.0.0.1\r\n\r\n";
    EXPECT_EQ(::send(fd, request.data(), request.size(), 0), static_cast<ssize_t>(request.size()));
    std::string raw;
    char buffer[4096];
    for (;;)
    {
        const auto n = ::recv(fd, buffer, sizeof(buffer), 0);
        if (n <= 0)
        {
            break;
        }
        raw.append(buffer, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return raw;
}

/// The find-based descent the tests use everywhere: every trace document
/// must parse strictly (json_value::parse throws on any malformed JSON).
json_value parse_trace(const std::string& text)
{
    return json_value::parse(text);
}

}  // namespace

// ------------------------------------------------------------ document shape

TEST_F(trace_fixture, EmptyTimelineIsStillAValidDocument)
{
    const auto document = parse_trace(tel::chrome_trace_string());
    EXPECT_EQ(document.at("displayTimeUnit").as_string(), "ms");
    EXPECT_TRUE(document.at("traceEvents").is_array());
    EXPECT_EQ(document.at("otherData").at("tool").as_string(), "mnt_bench");
    EXPECT_EQ(complete_events(document).size(), 0u);
}

TEST_F(trace_fixture, EveryEventCarriesTheRequiredFields)
{
    {
        const tel::span outer{"outer", "detail \"quoted\"\n\xFF"};
        const tel::span inner{"inner"};
    }
    const auto document = parse_trace(tel::chrome_trace_string());
    const auto& events = document.at("traceEvents").as_array();
    ASSERT_GE(events.size(), 2u);

    bool saw_process_name = false;
    bool saw_thread_name = false;
    for (const auto& event : events)
    {
        const auto ph = event.at("ph").as_string();
        ASSERT_TRUE(ph == "X" || ph == "M") << ph;
        EXPECT_TRUE(event.at("pid").is_number());
        if (ph == "M")
        {
            saw_process_name |= event.at("name").as_string() == "process_name";
            saw_thread_name |= event.at("name").as_string() == "thread_name";
            continue;
        }
        // complete events: name/cat/ts/dur/tid all mandatory
        EXPECT_FALSE(event.at("name").as_string().empty());
        EXPECT_EQ(event.at("cat").as_string(), "span");
        EXPECT_TRUE(event.at("ts").is_number());
        EXPECT_TRUE(event.at("dur").is_number());
        EXPECT_TRUE(event.at("tid").is_number());
        EXPECT_GE(event.at("ts").as_number(), 0.0);
        EXPECT_GE(event.at("dur").as_number(), 0.0);
    }
    EXPECT_TRUE(saw_process_name);
    EXPECT_TRUE(saw_thread_name);
    // the hostile args string survived as strict JSON and is attached
    bool saw_detail = false;
    for (const auto* event : complete_events(document))
    {
        if (const auto* args = event->find("args"); args != nullptr)
        {
            saw_detail |= !args->at("detail").as_string().empty();
        }
    }
    EXPECT_TRUE(saw_detail);
}

TEST_F(trace_fixture, NestedSpansAreOrderedWithinTheParentWindow)
{
    {
        const tel::span outer{"window/outer"};
        const tel::span inner{"window/inner"};
    }
    const auto document = parse_trace(tel::chrome_trace_string());
    const json_value* outer = nullptr;
    const json_value* inner = nullptr;
    for (const auto* event : complete_events(document))
    {
        if (event->at("name").as_string() == "window/outer")
        {
            outer = event;
        }
        if (event->at("name").as_string() == "window/inner")
        {
            inner = event;
        }
    }
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    // the child opened after and closed before its parent
    EXPECT_GE(inner->at("ts").as_number(), outer->at("ts").as_number());
    EXPECT_LE(inner->at("ts").as_number() + inner->at("dur").as_number(),
              outer->at("ts").as_number() + outer->at("dur").as_number() + 1e-3);
    EXPECT_EQ(inner->at("tid").as_u64(), outer->at("tid").as_u64());
}

// ------------------------------------------------- spans from three layers

TEST_F(trace_fixture, CapturesPortfolioAlgorithmAndServerSpans)
{
    tel::set_enabled(true);

    // layer 1+2: a real portfolio run (physical_design) with its algorithm
    // spans (ortho etc.) nested inside
    const auto network = bm::mux21();
    pd::portfolio_params params{};
    params.try_exact = false;
    const auto run = pd::generate_portfolio(network, pd::portfolio_flavor::cartesian, params);
    ASSERT_FALSE(run.results.empty());

    // layer 3: a served HTTP request (service)
    cat::catalog catalog;
    catalog.add_network("Trindade16", "2:1 MUX", network);
    cat::layout_record record{};
    record.benchmark_set = "Trindade16";
    record.benchmark_name = "2:1 MUX";
    record.library = cat::gate_library_kind::qca_one;
    record.algorithm = "ortho";
    record.runtime = 0.1;
    record.layout = pd::ortho(network);
    record.clocking = record.layout.clocking().name();
    catalog.add_layout(record);
    const svc::query_engine engine{catalog};
    svc::server_options options{};
    options.threads = 1;
    svc::catalog_server server{engine, options};
    server.start();
    ASSERT_NE(server.port(), 0);
    const auto raw = http_get(server.port(), "/layouts");
    EXPECT_NE(raw.find("200"), std::string::npos);
    server.stop();

    const auto document = parse_trace(tel::chrome_trace_string());
    EXPECT_TRUE(has_span_named(document, "portfolio/cartesian"));
    EXPECT_TRUE(has_span_named(document, "ortho"));
    EXPECT_TRUE(has_span_named(document, "server/request"));

    // the request span carries "GET /layouts" as its detail arg
    bool saw_request_detail = false;
    for (const auto* event : complete_events(document))
    {
        if (event->at("name").as_string() == "server/request")
        {
            const auto* args = event->find("args");
            ASSERT_NE(args, nullptr);
            saw_request_detail |= args->at("detail").as_string() == "GET /layouts";
        }
    }
    EXPECT_TRUE(saw_request_detail);

    tel::set_enabled(false);
}

// -------------------------------------------- worker-pool span parentage

TEST_F(trace_fixture, ParallelPortfolioCombosNestUnderThePortfolioRoot)
{
    tel::set_enabled(true);

    pd::portfolio_params params{};
    params.try_exact = false;
    params.jobs = 3;
    const auto run = pd::generate_portfolio(bm::mux21(), pd::portfolio_flavor::cartesian, params);
    ASSERT_FALSE(run.results.empty());

    const auto tree = tel::registry::instance().trace();
    ASSERT_NE(tree, nullptr);

    const tel::span_node* portfolio = nullptr;
    for (const auto& child : tree->children)
    {
        if (child->name == "portfolio/cartesian")
        {
            portfolio = child.get();
        }
        // no combo span may surface as a direct root child: that would mean
        // a worker thread lost the portfolio parent context
        EXPECT_EQ(child->name.find("ortho"), std::string::npos) << child->name;
    }
    ASSERT_NE(portfolio, nullptr);
    EXPECT_FALSE(portfolio->children.empty());

    std::size_t combos = 0;
    for (const auto& child : portfolio->children)
    {
        combos += child->name.find('|') != std::string::npos || child->name.find("ortho") == 0 ? 1 : 0;
    }
    EXPECT_GT(combos, 0u);

    // the per-thread timeline saw more than one worker tid
    const auto events = tel::registry::instance().trace_events();
    std::vector<std::uint32_t> tids;
    for (const auto& event : events)
    {
        if (std::find(tids.begin(), tids.end(), event.tid) == tids.end())
        {
            tids.push_back(event.tid);
        }
    }
    EXPECT_GE(tids.size(), 2u);

    tel::set_enabled(false);
}

// ------------------------------------------------------------- file export

TEST_F(trace_fixture, WritesAndExportsFiles)
{
    {
        const tel::span s{"file/span"};
    }
    const auto path = std::filesystem::temp_directory_path() / "mnt_trace_export_test.json";
    tel::write_chrome_trace_file(path);
    std::ifstream in{path};
    ASSERT_TRUE(in.good());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const auto document = parse_trace(buffer.str());
    EXPECT_TRUE(has_span_named(document, "file/span"));
    std::filesystem::remove(path);

    // unwritable path must throw, not crash
    EXPECT_THROW(tel::write_chrome_trace_file("/nonexistent-dir/trace.json"), mnt::mnt_error);
}
