#include "network/optimization.hpp"

#include "network/network_utils.hpp"
#include "physical_design/ortho.hpp"
#include "test_networks.hpp"
#include "verification/equivalence.hpp"

#include <gtest/gtest.h>

using namespace mnt;
using namespace mnt::ntk;
using namespace mnt::test;

TEST(StrashTest, MergesStructuralDuplicates)
{
    logic_network network{"dup"};
    const auto a = network.create_pi("a");
    const auto b = network.create_pi("b");
    const auto g1 = network.create_and(a, b);
    const auto g2 = network.create_and(a, b);  // duplicate
    const auto g3 = network.create_and(b, a);  // commuted duplicate
    network.create_po(network.create_xor(g1, g2), "y0");  // = 0
    network.create_po(network.create_or(g1, g3), "y1");   // = g1

    const auto hashed = strash(network);
    EXPECT_TRUE(ver::check_equivalence(network, hashed));
    // one AND at most survives; the xor collapses to const
    EXPECT_LE(hashed.num_gates(), 1u);
}

TEST(StrashTest, LocalIdentities)
{
    logic_network network{"ids"};
    const auto a = network.create_pi("a");
    const auto b = network.create_pi("b");
    network.create_po(network.create_and(a, a), "and_xx");    // x
    network.create_po(network.create_xor(b, b), "xor_xx");    // 0
    network.create_po(network.create_xnor(a, a), "xnor_xx");  // 1
    network.create_po(network.create_not(network.create_not(a)), "double_inv");
    network.create_po(network.create_maj(a, a, b), "maj_xxy");  // x

    const auto hashed = strash(network);
    EXPECT_TRUE(ver::check_equivalence(network, hashed));
    EXPECT_EQ(hashed.num_gates(), 0u);
}

TEST(StrashTest, PreservesNonCommutativeOrder)
{
    logic_network network{"lt"};
    const auto a = network.create_pi("a");
    const auto b = network.create_pi("b");
    network.create_po(network.create_lt(a, b), "l");
    network.create_po(network.create_lt(b, a), "g");  // NOT a duplicate
    const auto hashed = strash(network);
    EXPECT_TRUE(ver::check_equivalence(network, hashed));
    EXPECT_EQ(hashed.num_gates(), 2u);
}

TEST(BalanceTest, ReducesChainDepth)
{
    // 16-input AND chain: depth 16 -> 4
    logic_network network{"chain"};
    auto acc = network.create_pi("x0");
    for (int i = 1; i < 16; ++i)
    {
        acc = network.create_and(acc, network.create_pi("x" + std::to_string(i)));
    }
    network.create_po(acc, "y");

    EXPECT_EQ(depth(network), 16u);
    const auto balanced = balance(network);
    EXPECT_TRUE(ver::check_equivalence(network, balanced));
    EXPECT_EQ(depth(balanced), 5u);  // 4 logic levels + PO
}

TEST(BalanceTest, SharedChainInternalsNotCollapsed)
{
    // an internal node with a second user must stay a leaf boundary
    logic_network network{"shared"};
    const auto a = network.create_pi("a");
    const auto b = network.create_pi("b");
    const auto c = network.create_pi("c");
    const auto ab = network.create_and(a, b);
    const auto abc = network.create_and(ab, c);
    network.create_po(abc, "y0");
    network.create_po(network.create_not(ab), "y1");  // second user of ab

    const auto balanced = balance(network);
    EXPECT_TRUE(ver::check_equivalence(network, balanced));
}

TEST(BalanceTest, XorChainsBalanceToo)
{
    const auto network = parity(8);
    const auto balanced = balance(network);
    EXPECT_TRUE(ver::check_equivalence(network, balanced));
    EXPECT_LE(depth(balanced), 4u);  // 3 xor levels + PO
}

TEST(OptimizeTest, PipelineShrinksRedundantNetworks)
{
    // duplicated parity cones over the same inputs
    logic_network network{"redundant"};
    std::vector<logic_network::node> pis;
    for (int i = 0; i < 6; ++i)
    {
        pis.push_back(network.create_pi("x" + std::to_string(i)));
    }
    const auto cone = [&]()
    {
        auto acc = pis[0];
        for (int i = 1; i < 6; ++i)
        {
            acc = network.create_xor(acc, pis[static_cast<std::size_t>(i)]);
        }
        return acc;
    };
    network.create_po(network.create_and(cone(), cone()), "y");  // AND(x, x) over clones

    const auto optimized = optimize(network);
    EXPECT_TRUE(ver::check_equivalence(network, optimized));
    EXPECT_LT(optimized.num_gates(), network.num_gates() / 2 + 1);
}

TEST(OptimizeTest, SmallerNetworksYieldSmallerLayouts)
{
    // the end-to-end payoff: optimization before ortho reduces area
    logic_network network{"payoff"};
    std::vector<logic_network::node> pis;
    for (int i = 0; i < 4; ++i)
    {
        pis.push_back(network.create_pi("x" + std::to_string(i)));
    }
    // deliberately redundant structure: g1 and g2 are structural clones
    const auto f1 = network.create_and(pis[0], pis[1]);
    const auto f2 = network.create_and(pis[0], pis[1]);
    const auto g1 = network.create_or(f1, pis[2]);
    const auto g2 = network.create_or(f2, pis[2]);
    network.create_po(network.create_or(g1, g2), "z");  // = g1
    network.create_po(network.create_and(g2, pis[3]), "w");

    const auto optimized = optimize(network);
    EXPECT_TRUE(ver::check_equivalence(network, optimized));

    const auto raw_layout = pd::ortho(network);
    const auto opt_layout = pd::ortho(optimized);
    EXPECT_LT(opt_layout.area(), raw_layout.area());
    EXPECT_TRUE(ver::check_layout_equivalence(network, opt_layout));
}

TEST(OptimizeTest, IdempotentOnOptimalNetworks)
{
    const auto network = mux21();
    const auto once = optimize(network);
    const auto twice = optimize(once);
    EXPECT_EQ(once.size(), twice.size());
    EXPECT_TRUE(ver::check_equivalence(network, twice));
}

TEST(OptimizeTest, RandomSweepEquivalence)
{
    for (const std::uint64_t seed : {401u, 402u, 403u})
    {
        const auto network = random_network(6, 60, 4, seed);
        const auto optimized = optimize(network);
        EXPECT_TRUE(ver::check_equivalence(network, optimized)) << seed;
        EXPECT_LE(optimized.num_gates(), network.num_gates()) << seed;
    }
}
