#include "layout/clocking_scheme.hpp"

#include "common/types.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace mnt;
using namespace mnt::lyt;

TEST(ClockingSchemeTest, TwoDDWaveIsDiagonal)
{
    const auto scheme = clocking_scheme::twoddwave();
    for (int y = 0; y < 8; ++y)
    {
        for (int x = 0; x < 8; ++x)
        {
            EXPECT_EQ(scheme.clock_number({x, y}), static_cast<std::uint8_t>((x + y) % 4));
        }
    }
}

TEST(ClockingSchemeTest, TwoDDWaveFlowsEastAndSouth)
{
    const auto scheme = clocking_scheme::twoddwave();
    for (int y = 0; y < 5; ++y)
    {
        for (int x = 0; x < 5; ++x)
        {
            EXPECT_TRUE(scheme.is_incoming_clocked({x + 1, y}, {x, y}));
            EXPECT_TRUE(scheme.is_incoming_clocked({x, y + 1}, {x, y}));
            EXPECT_FALSE(scheme.is_incoming_clocked({x, y}, {x + 1, y}));
        }
    }
}

TEST(ClockingSchemeTest, RowClockingFlowsSouthOnly)
{
    const auto scheme = clocking_scheme::row();
    EXPECT_EQ(scheme.clock_number({0, 0}), 0);
    EXPECT_EQ(scheme.clock_number({7, 0}), 0);
    EXPECT_EQ(scheme.clock_number({3, 5}), 1);
    EXPECT_TRUE(scheme.is_incoming_clocked({4, 1}, {4, 0}));
    EXPECT_FALSE(scheme.is_incoming_clocked({5, 0}, {4, 0}));  // same row
}

TEST(ClockingSchemeTest, CutoutsArePeriodic)
{
    for (const auto kind : {clocking_kind::twoddwave, clocking_kind::use, clocking_kind::res, clocking_kind::esr,
                            clocking_kind::row})
    {
        const auto scheme = clocking_scheme::create(kind);
        for (int y = 0; y < 4; ++y)
        {
            for (int x = 0; x < 4; ++x)
            {
                EXPECT_EQ(scheme.clock_number({x, y}), scheme.clock_number({x + 4, y}));
                EXPECT_EQ(scheme.clock_number({x, y}), scheme.clock_number({x, y + 4}));
                EXPECT_EQ(scheme.clock_number({x, y}), scheme.clock_number({x + 8, y + 4}));
            }
        }
    }
}

TEST(ClockingSchemeTest, ZonesAreAlwaysInRange)
{
    for (const auto kind : {clocking_kind::twoddwave, clocking_kind::use, clocking_kind::res, clocking_kind::esr,
                            clocking_kind::row})
    {
        const auto scheme = clocking_scheme::create(kind);
        for (int y = -4; y < 8; ++y)
        {
            for (int x = -4; x < 8; ++x)
            {
                EXPECT_LT(scheme.clock_number({x, y}), clocking_scheme::num_clocks);
            }
        }
    }
}

TEST(ClockingSchemeTest, CrossingSharesGroundZone)
{
    const auto scheme = clocking_scheme::use();
    EXPECT_EQ(scheme.clock_number({2, 3, 1}), scheme.clock_number({2, 3, 0}));
}

TEST(ClockingSchemeTest, USESupportsBackwardFlow)
{
    // USE snakes: there must exist adjacent tile pairs flowing westward
    const auto scheme = clocking_scheme::use();
    bool westward = false;
    for (int y = 0; y < 4 && !westward; ++y)
    {
        for (int x = 1; x < 4 && !westward; ++x)
        {
            westward = scheme.is_incoming_clocked({x - 1, y}, {x, y});
        }
    }
    EXPECT_TRUE(westward);
}

TEST(ClockingSchemeTest, OpenSchemeAssignments)
{
    auto scheme = clocking_scheme::open();
    EXPECT_FALSE(scheme.is_regular());
    EXPECT_FALSE(scheme.has_assigned_clock({1, 1}));
    scheme.assign_clock({1, 1}, 3);
    EXPECT_TRUE(scheme.has_assigned_clock({1, 1}));
    EXPECT_EQ(scheme.clock_number({1, 1}), 3);
    EXPECT_EQ(scheme.clock_number({1, 1, 1}), 3);  // crossing layer shares
    EXPECT_THROW(scheme.assign_clock({0, 0}, 4), precondition_error);
}

TEST(ClockingSchemeTest, RegularSchemeRejectsAssignment)
{
    auto scheme = clocking_scheme::twoddwave();
    EXPECT_THROW(scheme.assign_clock({0, 0}, 1), precondition_error);
}

TEST(ClockingSchemeTest, NameRoundTrip)
{
    for (const auto kind : {clocking_kind::twoddwave, clocking_kind::use, clocking_kind::res, clocking_kind::esr,
                            clocking_kind::row, clocking_kind::open})
    {
        EXPECT_EQ(clocking_from_name(clocking_name(kind)), kind);
    }
    EXPECT_EQ(clocking_from_name("2ddwave"), clocking_kind::twoddwave);
    EXPECT_THROW(static_cast<void>(clocking_from_name("nonsense")), mnt_error);
}

TEST(ClockingSchemeTest, RegularSchemesPerTopology)
{
    const auto cart = regular_schemes_for(layout_topology::cartesian);
    EXPECT_EQ(cart.size(), 5u);
    const auto hex = regular_schemes_for(layout_topology::hexagonal_even_row);
    ASSERT_EQ(hex.size(), 1u);
    EXPECT_EQ(hex[0], clocking_kind::row);
}

TEST(ClockingSchemeTest, EqualityComparison)
{
    EXPECT_EQ(clocking_scheme::use(), clocking_scheme::use());
    EXPECT_FALSE(clocking_scheme::use() == clocking_scheme::res());
    auto a = clocking_scheme::open();
    auto b = clocking_scheme::open();
    EXPECT_EQ(a, b);
    a.assign_clock({0, 0}, 2);
    EXPECT_FALSE(a == b);
}

TEST(ClockingSchemeTest, MayFlowConservativeReachability)
{
    using lyt::may_flow;
    // 2DDWave: strictly east/south
    EXPECT_TRUE(may_flow(clocking_kind::twoddwave, layout_topology::cartesian, {1, 1}, {3, 1}));
    EXPECT_FALSE(may_flow(clocking_kind::twoddwave, layout_topology::cartesian, {3, 1}, {1, 1}));
    EXPECT_FALSE(may_flow(clocking_kind::twoddwave, layout_topology::cartesian, {1, 1}, {1, 1}));
    // hex ROW: strictly downward within the diagonal cone
    EXPECT_TRUE(may_flow(clocking_kind::row, layout_topology::hexagonal_even_row, {3, 0}, {1, 4}));
    EXPECT_FALSE(may_flow(clocking_kind::row, layout_topology::hexagonal_even_row, {3, 0}, {7, 2}));
    EXPECT_FALSE(may_flow(clocking_kind::row, layout_topology::hexagonal_even_row, {3, 4}, {3, 0}));
    // Cartesian ROW: straight columns only
    EXPECT_TRUE(may_flow(clocking_kind::row, layout_topology::cartesian, {2, 0}, {2, 5}));
    EXPECT_FALSE(may_flow(clocking_kind::row, layout_topology::cartesian, {2, 0}, {3, 5}));
    // snaking schemes: never prune
    EXPECT_TRUE(may_flow(clocking_kind::use, layout_topology::cartesian, {5, 5}, {0, 0}));
    EXPECT_TRUE(may_flow(clocking_kind::res, layout_topology::cartesian, {5, 5}, {0, 0}));
    EXPECT_TRUE(may_flow(clocking_kind::esr, layout_topology::cartesian, {5, 5}, {0, 0}));
}
