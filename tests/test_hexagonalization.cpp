#include "physical_design/hexagonalization.hpp"

#include "common/types.hpp"
#include "physical_design/ortho.hpp"
#include "test_networks.hpp"
#include "verification/drc.hpp"
#include "verification/equivalence.hpp"

#include <gtest/gtest.h>

using namespace mnt;
using namespace mnt::pd;
using namespace mnt::test;

TEST(HexagonalizationTest, Mux21TransformsCorrectly)
{
    const auto network = mux21();
    const auto cartesian = ortho(network);
    const auto hex = hexagonalization(cartesian);

    EXPECT_EQ(hex.topology(), lyt::layout_topology::hexagonal_even_row);
    EXPECT_EQ(hex.clocking().kind(), lyt::clocking_kind::row);
    const auto report = ver::gate_level_drc(hex);
    EXPECT_TRUE(report.passed()) << (report.errors.empty() ? "" : report.errors.front());
    EXPECT_TRUE(ver::check_layout_equivalence(network, hex));
}

TEST(HexagonalizationTest, PreservesGateAndCrossingCounts)
{
    const auto network = random_network(5, 40, 3, 11);
    const auto cartesian = ortho(network);
    const auto hex = hexagonalization(cartesian);

    EXPECT_EQ(hex.num_gates(), cartesian.num_gates());
    EXPECT_EQ(hex.num_wires(), cartesian.num_wires());
    EXPECT_EQ(hex.num_crossings(), cartesian.num_crossings());
    EXPECT_EQ(hex.num_pis(), cartesian.num_pis());
    EXPECT_EQ(hex.num_pos(), cartesian.num_pos());
}

TEST(HexagonalizationTest, GeometryFollowsTheDiagonalFormula)
{
    const auto network = half_adder();
    const auto cartesian = ortho(network);
    const auto hex = hexagonalization(cartesian);
    // rows = diagonals of the Cartesian layout
    EXPECT_EQ(hex.height(), cartesian.width() + cartesian.height() - 1);
    EXPECT_LE(hex.width(), (cartesian.width() + cartesian.height()) / 2 + 1);
}

TEST(HexagonalizationTest, RejectsNonTwoDDWaveInput)
{
    lyt::gate_level_layout use_layout{"x", lyt::layout_topology::cartesian, lyt::clocking_scheme::use(), 4, 4};
    EXPECT_THROW(static_cast<void>(hexagonalization(use_layout)), precondition_error);

    lyt::gate_level_layout hex_layout{"x", lyt::layout_topology::hexagonal_even_row, lyt::clocking_scheme::row(), 4,
                                      4};
    EXPECT_THROW(static_cast<void>(hexagonalization(hex_layout)), precondition_error);
}

TEST(HexagonalizationTest, RandomSweepStaysEquivalent)
{
    for (const std::uint64_t seed : {21u, 22u, 23u})
    {
        const auto network = random_network(4, 60, 4, seed);
        const auto hex = hexagonalization(ortho(network));
        ASSERT_TRUE(ver::gate_level_drc(hex).passed()) << "seed " << seed;
        EXPECT_TRUE(ver::check_layout_equivalence(network, hex)) << "seed " << seed;
    }
}

TEST(HexagonalizationTest, EmptyLayoutHandled)
{
    const lyt::gate_level_layout empty{"e", lyt::layout_topology::cartesian, lyt::clocking_scheme::twoddwave(), 3,
                                       3};
    const auto hex = hexagonalization(empty);
    EXPECT_EQ(hex.num_occupied(), 0u);
}

TEST(HexagonalizationTest, OddHeightLayoutsKeepAdjacency)
{
    // regression: with an odd Cartesian height the x offset must be rounded
    // up to even, otherwise east/south steps land on non-neighbors
    ntk::logic_network network{"odd"};
    const auto a = network.create_pi("a");
    const auto b = network.create_pi("b");
    const auto c = network.create_pi("c");
    network.create_po(network.create_xor(network.create_xor(a, b), c), "p");

    const auto cartesian = pd::ortho(network);
    ASSERT_EQ(cartesian.height() % 2, 1u);  // the scenario under test
    const auto hex = hexagonalization(cartesian);
    const auto report = ver::gate_level_drc(hex);
    EXPECT_TRUE(report.passed()) << (report.errors.empty() ? "" : report.errors.front());
    EXPECT_TRUE(ver::check_layout_equivalence(network, hex));
}
