#include "core/json_export.hpp"

#include "benchmarks/functions.hpp"
#include "core/filters.hpp"
#include "physical_design/ortho.hpp"

#include <gtest/gtest.h>

#include <string>

using namespace mnt;
using namespace mnt::cat;

namespace
{

catalog small_catalog()
{
    catalog c;
    c.add_network("Trindade16", "2:1 MUX", bm::mux21());

    layout_record record{};
    record.benchmark_set = "Trindade16";
    record.benchmark_name = "2:1 MUX";
    record.library = gate_library_kind::qca_one;
    record.clocking = "2DDWave";
    record.algorithm = "ortho";
    record.optimizations = {"InOrd (SDN)", "PLO"};
    record.runtime = 0.125;
    record.layout = pd::ortho(bm::mux21());
    c.add_layout(std::move(record));
    return c;
}

}  // namespace

TEST(JsonExportTest, EscapeSpecials)
{
    EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
    EXPECT_EQ(json_escape(std::string{"ctl\x01"}), "ctl\\u0001");
    EXPECT_EQ(json_escape("plain"), "plain");
}

TEST(JsonExportTest, DocumentStructure)
{
    const auto c = small_catalog();
    const auto doc = catalog_json_string(c);

    EXPECT_NE(doc.find("\"networks\": ["), std::string::npos);
    EXPECT_NE(doc.find("\"layouts\": ["), std::string::npos);
    EXPECT_NE(doc.find("\"set\": \"Trindade16\""), std::string::npos);
    EXPECT_NE(doc.find("\"name\": \"2:1 MUX\""), std::string::npos);
    EXPECT_NE(doc.find("\"library\": \"QCA ONE\""), std::string::npos);
    EXPECT_NE(doc.find("\"algorithm\": \"ortho\""), std::string::npos);
    EXPECT_NE(doc.find("\"optimizations\": [\"InOrd (SDN)\", \"PLO\"]"), std::string::npos);
    EXPECT_NE(doc.find("\"inputs\": 3"), std::string::npos);
    EXPECT_NE(doc.find("\"gates\": 4"), std::string::npos);
    EXPECT_NE(doc.find("\"runtime_s\": 0.125"), std::string::npos);

    // metrics derived from the layout itself must appear
    const auto& r = c.layouts().front();
    EXPECT_NE(doc.find("\"area\": " + std::to_string(r.area)), std::string::npos);
}

TEST(JsonExportTest, BalancedBracesAndQuotes)
{
    const auto doc = catalog_json_string(small_catalog());
    long braces = 0;
    long brackets = 0;
    long quotes = 0;
    bool escaped = false;
    bool in_string = false;
    for (const char ch : doc)
    {
        if (escaped)
        {
            escaped = false;
            continue;
        }
        if (ch == '\\')
        {
            escaped = true;
            continue;
        }
        if (ch == '"')
        {
            in_string = !in_string;
            ++quotes;
            continue;
        }
        if (in_string)
        {
            continue;
        }
        braces += ch == '{' ? 1 : ch == '}' ? -1 : 0;
        brackets += ch == '[' ? 1 : ch == ']' ? -1 : 0;
        EXPECT_GE(braces, 0);
        EXPECT_GE(brackets, 0);
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
    EXPECT_EQ(quotes % 2, 0);
}

TEST(JsonExportTest, SelectionExportsOnlyReferencedNetworks)
{
    auto c = small_catalog();
    c.add_network("Fontes18", "t", bm::t_function());  // never selected

    filter_query query{};
    query.libraries = {gate_library_kind::qca_one};
    const auto selection = apply_filter(c, query);

    std::ostringstream stream;
    write_selection_json(c, selection, stream);
    const auto doc = stream.str();
    EXPECT_NE(doc.find("2:1 MUX"), std::string::npos);
    EXPECT_EQ(doc.find("Fontes18"), std::string::npos);
}

TEST(JsonExportTest, EmptyCatalog)
{
    const catalog c;
    const auto doc = catalog_json_string(c);
    EXPECT_NE(doc.find("\"networks\": ["), std::string::npos);
    EXPECT_NE(doc.find("\"layouts\": ["), std::string::npos);
}
