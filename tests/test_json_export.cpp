#include "core/json_export.hpp"

#include "benchmarks/functions.hpp"
#include "core/filters.hpp"
#include "physical_design/ortho.hpp"

#include <gtest/gtest.h>

#include <string>

using namespace mnt;
using namespace mnt::cat;

namespace
{

catalog small_catalog()
{
    catalog c;
    c.add_network("Trindade16", "2:1 MUX", bm::mux21());

    layout_record record{};
    record.benchmark_set = "Trindade16";
    record.benchmark_name = "2:1 MUX";
    record.library = gate_library_kind::qca_one;
    record.clocking = "2DDWave";
    record.algorithm = "ortho";
    record.optimizations = {"InOrd (SDN)", "PLO"};
    record.runtime = 0.125;
    record.layout = pd::ortho(bm::mux21());
    c.add_layout(std::move(record));
    return c;
}

}  // namespace

TEST(JsonExportTest, EscapeSpecials)
{
    EXPECT_EQ(json_escape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(json_escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
    EXPECT_EQ(json_escape(std::string{"ctl\x01"}), "ctl\\u0001");
    EXPECT_EQ(json_escape("plain"), "plain");
}

TEST(JsonExportTest, EscapeControlCharactersAndDelete)
{
    EXPECT_EQ(json_escape(std::string{"a\bb\fc"}), "a\\bb\\fc");
    EXPECT_EQ(json_escape(std::string{"nul\0byte", 8}), "nul\\u0000byte");
    EXPECT_EQ(json_escape(std::string{"del\x7f"}), "del\\u007f");
    EXPECT_EQ(json_escape(std::string{"\x01\x02\x1f"}), "\\u0001\\u0002\\u001f");
}

TEST(JsonExportTest, ValidUtf8PassesThroughVerbatim)
{
    // 2-, 3- and 4-byte sequences (é, 漢, 😀) and a benchmark-style name
    EXPECT_EQ(json_escape("\xC3\xA9"), "\xC3\xA9");
    EXPECT_EQ(json_escape("\xE6\xBC\xA2"), "\xE6\xBC\xA2");
    EXPECT_EQ(json_escape("\xF0\x9F\x98\x80"), "\xF0\x9F\x98\x80");
    EXPECT_EQ(json_escape("ortho@ROW+45°"), "ortho@ROW+45°");
}

TEST(JsonExportTest, InvalidUtf8IsReplacedNotEmitted)
{
    // hostile benchmark names must never produce invalid JSON output:
    // every byte that cannot start/continue a valid sequence becomes U+FFFD
    EXPECT_EQ(json_escape("\xFF"), "\\ufffd");
    EXPECT_EQ(json_escape("a\x80z"), "a\\ufffdz");              // lone continuation
    EXPECT_EQ(json_escape("\xC3 x"), "\\ufffd x");              // truncated 2-byte
    EXPECT_EQ(json_escape("\xC0\xAF"), "\\ufffd\\ufffd");       // overlong 2-byte
    EXPECT_EQ(json_escape("\xE0\x80\x80"), "\\ufffd\\ufffd\\ufffd");  // overlong 3-byte
    EXPECT_EQ(json_escape("\xED\xA0\x80"), "\\ufffd\\ufffd\\ufffd");  // UTF-16 surrogate
    EXPECT_EQ(json_escape("\xF5\x80\x80\x80"), "\\ufffd\\ufffd\\ufffd\\ufffd");  // > U+10FFFF
    EXPECT_EQ(json_escape(std::string{"\xF0\x9F\x98"}), "\\ufffd\\ufffd\\ufffd");  // truncated 4-byte
}

TEST(JsonExportTest, HostileNamesYieldParseableDocuments)
{
    catalog c;
    c.add_network("set\"\\\n\x01\xFF", "name\x7f\xC3(", bm::mux21());

    layout_record record{};
    record.benchmark_set = "set\"\\\n\x01\xFF";
    record.benchmark_name = "name\x7f\xC3(";
    record.library = gate_library_kind::qca_one;
    record.clocking = "2DDWave";
    record.algorithm = "ortho";
    record.optimizations = {"opt\twith\x02junk\x90"};
    record.layout = pd::ortho(bm::mux21());
    c.add_layout(std::move(record));

    const auto doc = catalog_json_string(c);
    // no raw control or invalid byte may survive into the document
    for (const char ch : doc)
    {
        const auto byte = static_cast<unsigned char>(ch);
        EXPECT_TRUE(byte >= 0x20 || ch == '\n') << "raw byte " << static_cast<int>(byte);
        EXPECT_NE(byte, 0xFFu);
        EXPECT_NE(byte, 0x90u);
    }
    EXPECT_NE(doc.find("set\\\"\\\\\\n\\u0001\\ufffd"), std::string::npos);
    EXPECT_NE(doc.find("name\\u007f\\ufffd("), std::string::npos);
    EXPECT_NE(doc.find("opt\\twith\\u0002junk\\ufffd"), std::string::npos);
}

TEST(JsonExportTest, DocumentStructure)
{
    const auto c = small_catalog();
    const auto doc = catalog_json_string(c);

    EXPECT_NE(doc.find("\"networks\": ["), std::string::npos);
    EXPECT_NE(doc.find("\"layouts\": ["), std::string::npos);
    EXPECT_NE(doc.find("\"set\": \"Trindade16\""), std::string::npos);
    EXPECT_NE(doc.find("\"name\": \"2:1 MUX\""), std::string::npos);
    EXPECT_NE(doc.find("\"library\": \"QCA ONE\""), std::string::npos);
    EXPECT_NE(doc.find("\"algorithm\": \"ortho\""), std::string::npos);
    EXPECT_NE(doc.find("\"optimizations\": [\"InOrd (SDN)\", \"PLO\"]"), std::string::npos);
    EXPECT_NE(doc.find("\"inputs\": 3"), std::string::npos);
    EXPECT_NE(doc.find("\"gates\": 4"), std::string::npos);
    EXPECT_NE(doc.find("\"runtime_s\": 0.125"), std::string::npos);

    // metrics derived from the layout itself must appear
    const auto& r = c.layouts().front();
    EXPECT_NE(doc.find("\"area\": " + std::to_string(r.area)), std::string::npos);
}

TEST(JsonExportTest, BalancedBracesAndQuotes)
{
    const auto doc = catalog_json_string(small_catalog());
    long braces = 0;
    long brackets = 0;
    long quotes = 0;
    bool escaped = false;
    bool in_string = false;
    for (const char ch : doc)
    {
        if (escaped)
        {
            escaped = false;
            continue;
        }
        if (ch == '\\')
        {
            escaped = true;
            continue;
        }
        if (ch == '"')
        {
            in_string = !in_string;
            ++quotes;
            continue;
        }
        if (in_string)
        {
            continue;
        }
        braces += ch == '{' ? 1 : ch == '}' ? -1 : 0;
        brackets += ch == '[' ? 1 : ch == ']' ? -1 : 0;
        EXPECT_GE(braces, 0);
        EXPECT_GE(brackets, 0);
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
    EXPECT_EQ(quotes % 2, 0);
}

TEST(JsonExportTest, SelectionExportsOnlyReferencedNetworks)
{
    auto c = small_catalog();
    c.add_network("Fontes18", "t", bm::t_function());  // never selected

    filter_query query{};
    query.libraries = {gate_library_kind::qca_one};
    const auto selection = apply_filter(c, query);

    std::ostringstream stream;
    write_selection_json(c, selection, stream);
    const auto doc = stream.str();
    EXPECT_NE(doc.find("2:1 MUX"), std::string::npos);
    EXPECT_EQ(doc.find("Fontes18"), std::string::npos);
}

TEST(JsonExportTest, EmptyCatalog)
{
    const catalog c;
    const auto doc = catalog_json_string(c);
    EXPECT_NE(doc.find("\"networks\": ["), std::string::npos);
    EXPECT_NE(doc.find("\"layouts\": ["), std::string::npos);
}
