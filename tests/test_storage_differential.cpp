/// \file test_storage_differential.cpp
/// \brief Differential tests for the dense tile-grid layout storage.
///
/// The gate-level layout used to be backed by hash maps; it is now a dense
/// flat-vector grid. These tests replay randomized place/route/erase
/// sequences against a minimal map-backed reference model implementing the
/// old semantics and assert identical observable state — occupancy, gate
/// types, fanin/fanout order, tiles_sorted order, and bounding box. A second
/// set of tests pins the .fgl serialization of every Trindade16 and Fontes18
/// benchmark to content hashes captured with the map-backed implementation,
/// proving the storage swap is byte-invisible on the paper's Table I flows.

#include "benchmarks/suites.hpp"
#include "common/types.hpp"
#include "io/fgl_writer.hpp"
#include "layout/gate_level_layout.hpp"
#include "network/gate_type.hpp"
#include "physical_design/hexagonalization.hpp"
#include "physical_design/ortho.hpp"
#include "service/hash.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

using namespace mnt;
using namespace mnt::lyt;
using mnt::ntk::gate_type;

namespace
{

/// Map-backed reference model mirroring the observable semantics of the old
/// hash-map layout storage: insertion-ordered fanin/fanout lists, first-
/// occurrence removal, PI/PO creation order.
class reference_model
{
public:
    struct entry
    {
        gate_type type{gate_type::none};
        std::vector<coordinate> incoming;
    };

    void place(const coordinate& c, const gate_type t)
    {
        tiles[c] = entry{t, {}};
        if (t == gate_type::pi)
        {
            pis.push_back(c);
        }
        else if (t == gate_type::po)
        {
            pos.push_back(c);
        }
    }

    void connect(const coordinate& src, const coordinate& dst)
    {
        tiles.at(dst).incoming.push_back(src);
        outgoing[src].push_back(dst);
    }

    void disconnect(const coordinate& src, const coordinate& dst)
    {
        if (const auto it = tiles.find(dst); it != tiles.end())
        {
            auto& in = it->second.incoming;
            if (const auto pos_it = std::find(in.begin(), in.end(), src); pos_it != in.end())
            {
                in.erase(pos_it);
            }
        }
        if (const auto out_it = outgoing.find(src); out_it != outgoing.end())
        {
            auto& outs = out_it->second;
            if (const auto pos_it = std::find(outs.begin(), outs.end(), dst); pos_it != outs.end())
            {
                outs.erase(pos_it);
            }
            if (outs.empty())
            {
                outgoing.erase(out_it);
            }
        }
    }

    void clear_tile(const coordinate& c)
    {
        const auto it = tiles.find(c);
        if (it == tiles.end())
        {
            return;
        }
        for (const auto& src : std::vector<coordinate>{it->second.incoming})
        {
            disconnect(src, c);
        }
        if (const auto out_it = outgoing.find(c); out_it != outgoing.end())
        {
            for (const auto& dst : std::vector<coordinate>{out_it->second})
            {
                disconnect(c, dst);
            }
        }
        outgoing.erase(c);
        const auto t = it->second.type;
        tiles.erase(it);
        if (t == gate_type::pi)
        {
            pis.erase(std::remove(pis.begin(), pis.end(), c), pis.end());
        }
        else if (t == gate_type::po)
        {
            pos.erase(std::remove(pos.begin(), pos.end(), c), pos.end());
        }
    }

    void move_tile(const coordinate& from, const coordinate& to)
    {
        auto d = std::move(tiles.at(from));
        tiles.erase(from);
        if (const auto out_it = outgoing.find(from); out_it != outgoing.end())
        {
            for (const auto& dst : out_it->second)
            {
                auto& in = tiles.at(dst).incoming;
                std::replace(in.begin(), in.end(), from, to);
            }
            outgoing.emplace(to, std::move(out_it->second));
            outgoing.erase(from);
        }
        for (const auto& src : d.incoming)
        {
            if (const auto src_out = outgoing.find(src); src_out != outgoing.end())
            {
                std::replace(src_out->second.begin(), src_out->second.end(), from, to);
            }
        }
        const auto t = d.type;
        tiles.emplace(to, std::move(d));
        if (t == gate_type::pi)
        {
            std::replace(pis.begin(), pis.end(), from, to);
        }
        else if (t == gate_type::po)
        {
            std::replace(pos.begin(), pos.end(), from, to);
        }
    }

    [[nodiscard]] std::vector<coordinate> outgoing_of(const coordinate& c) const
    {
        const auto it = outgoing.find(c);
        return it == outgoing.cend() ? std::vector<coordinate>{} : it->second;
    }

    // std::map iterates keys in coordinate (y, x, z) order — exactly the
    // documented tiles_sorted order
    std::map<coordinate, entry> tiles;
    std::unordered_map<coordinate, std::vector<coordinate>, coordinate_hash> outgoing;
    std::vector<coordinate> pis;
    std::vector<coordinate> pos;
};

constexpr std::uint32_t side = 8;

/// Asserts that layout and model agree on every observable query.
void expect_equivalent(const gate_level_layout& layout, const reference_model& model)
{
    ASSERT_EQ(layout.num_occupied(), model.tiles.size());
    ASSERT_EQ(layout.pi_tiles(), model.pis);
    ASSERT_EQ(layout.po_tiles(), model.pos);

    for (std::uint8_t z = 0; z < 2; ++z)
    {
        for (std::int32_t y = 0; y < static_cast<std::int32_t>(side); ++y)
        {
            for (std::int32_t x = 0; x < static_cast<std::int32_t>(side); ++x)
            {
                const coordinate c{x, y, z};
                const auto it = model.tiles.find(c);
                if (it == model.tiles.cend())
                {
                    ASSERT_TRUE(layout.is_empty_tile(c)) << "spurious tile at " << c.to_string();
                    ASSERT_EQ(layout.type_of(c), gate_type::none);
                    ASSERT_TRUE(layout.outgoing_of(c).empty());
                    ASSERT_TRUE(layout.incoming_of(c).empty());
                    continue;
                }
                ASSERT_TRUE(layout.has_tile(c)) << "missing tile at " << c.to_string();
                ASSERT_EQ(layout.type_of(c), it->second.type) << "type mismatch at " << c.to_string();
                ASSERT_EQ(layout.incoming_of(c), it->second.incoming) << "fanin mismatch at " << c.to_string();
                const auto outs = layout.outgoing_of(c);
                ASSERT_EQ(std::vector<coordinate>(outs.begin(), outs.end()), model.outgoing_of(c))
                    << "fanout mismatch at " << c.to_string();
            }
        }
    }

    // tiles_sorted must equal the model's key order (y, x, z)
    std::vector<coordinate> expected_sorted;
    expected_sorted.reserve(model.tiles.size());
    for (const auto& [c, d] : model.tiles)
    {
        expected_sorted.push_back(c);
    }
    ASSERT_EQ(layout.tiles_sorted(), expected_sorted);

    if (!model.tiles.empty())
    {
        std::int32_t min_x = side;
        std::int32_t min_y = side;
        std::int32_t max_x = -1;
        std::int32_t max_y = -1;
        for (const auto& [c, d] : model.tiles)
        {
            min_x = std::min(min_x, c.x);
            min_y = std::min(min_y, c.y);
            max_x = std::max(max_x, c.x);
            max_y = std::max(max_y, c.y);
        }
        const auto [lo, hi] = layout.bounding_box();
        ASSERT_EQ(lo, coordinate(min_x, min_y));
        ASSERT_EQ(hi, coordinate(max_x, max_y));
    }
}

/// Replays \p num_ops random operations with the given seed on both
/// implementations, checking equivalence as it goes.
void run_differential(const std::uint32_t seed, const std::size_t num_ops)
{
    std::mt19937 rng{seed};
    gate_level_layout layout{"diff", layout_topology::cartesian, clocking_scheme::twoddwave(), side, side};
    reference_model model;

    const std::vector<gate_type> types{gate_type::pi,  gate_type::po,     gate_type::buf, gate_type::inv,
                                       gate_type::and2, gate_type::fanout, gate_type::buf, gate_type::buf};

    const auto random_coordinate = [&rng]
    {
        std::uniform_int_distribution<std::int32_t> xy(0, static_cast<std::int32_t>(side) - 1);
        std::uniform_int_distribution<int> layer(0, 9);
        return coordinate{xy(rng), xy(rng), static_cast<std::uint8_t>(layer(rng) == 0 ? 1 : 0)};
    };
    const auto random_occupied = [&rng, &model]() -> coordinate
    {
        std::uniform_int_distribution<std::size_t> pick(0, model.tiles.size() - 1);
        auto it = model.tiles.cbegin();
        std::advance(it, static_cast<std::ptrdiff_t>(pick(rng)));
        return it->first;
    };

    std::uniform_int_distribution<int> op_dist(0, 99);
    for (std::size_t op = 0; op < num_ops; ++op)
    {
        const auto roll = op_dist(rng);
        try
        {
            if (roll < 40 || model.tiles.empty())
            {
                const auto c = random_coordinate();
                const auto t = types[std::uniform_int_distribution<std::size_t>(0, types.size() - 1)(rng)];
                layout.place(c, t);           // throws on occupied/invalid
                model.place(c, t);            // reached only on success
            }
            else if (roll < 65)
            {
                const auto src = random_occupied();
                const auto dst = random_occupied();
                if (src == dst)
                {
                    continue;  // self-loops are rejected at the reader level
                }
                layout.connect(src, dst);
                model.connect(src, dst);
            }
            else if (roll < 75)
            {
                const auto src = random_occupied();
                const auto dst = random_occupied();
                layout.disconnect(src, dst);  // never throws
                model.disconnect(src, dst);
            }
            else if (roll < 90)
            {
                const auto c = random_occupied();
                layout.clear_tile(c);
                model.clear_tile(c);
            }
            else
            {
                const auto from = random_occupied();
                const auto to = random_coordinate();
                layout.move_tile(from, to);
                if (from != to)
                {
                    model.move_tile(from, to);
                }
            }
        }
        catch (const precondition_error&)
        {
            // rejected operations must leave the layout untouched; the model
            // was deliberately not updated, so the equivalence check below
            // verifies exactly that
        }

        if (op % 16 == 0)
        {
            expect_equivalent(layout, model);
            if (::testing::Test::HasFatalFailure())
            {
                FAIL() << "divergence with seed " << seed << " after " << op << " operations";
            }
        }
    }
    expect_equivalent(layout, model);
}

}  // namespace

TEST(StorageDifferentialTest, RandomizedSequencesMatchMapSemantics)
{
    for (std::uint32_t seed = 1; seed <= 8; ++seed)
    {
        run_differential(seed, 600);
        if (HasFatalFailure())
        {
            return;
        }
    }
}

TEST(StorageDifferentialTest, HeavyChurnSingleSeed)
{
    run_differential(0xC0FFEE, 5000);
}

// --------------------------------------------------------- golden .fgl bytes
//
// Content hashes of io::write_fgl_string over ortho (Cartesian/QCA ONE) and
// hexagonalization (Bestagon) layouts of every Trindade16 and Fontes18
// function, captured with the hash-map storage immediately before the dense
// grid replaced it. Byte-identical output proves the swap preserves
// placement, routing, tile order, and serialization.

namespace
{

struct golden_hash
{
    const char* name;
    const char* hash;
};

constexpr golden_hash golden_cartesian[] = {
    {"2:1 MUX", "7361bafc2c0c9afaf78146be7fca7335"},
    {"XOR", "d5a7fc69314f4f688623084a81b73590"},
    {"XNOR", "f7a44445bf744a2f68d80c833307112f"},
    {"Half Adder", "eeb7f4b764388928cb0067a5a3a76c5b"},
    {"Full Adder", "204b76b1cf54a3ee13c0bfcd45a82d9c"},
    {"Parity Gen.", "852765d56fba8db8aa2d89ab35bca4c5"},
    {"Parity Check.", "cb220afc441318495e642f1dc59c07dc"},
    {"t", "3beed10682bbf84d2ba1479ec8eb14aa"},
    {"b1_r2", "12d62c18c9dc4c77a0b9b059005b2d92"},
    {"majority", "6a480c8dd6250ea1d3861a654e10fc64"},
    {"newtag", "dee8d874922c37b2e6d8c27835043e55"},
    {"clpl", "c2a970c5fa6b3c41b9854b5e21b401f6"},
    {"1bitAdderAOIG", "c3b1a262368ceb1b9b2c09c67b290fc2"},
    {"1bitAdderMaj", "87647cfc18994824c4f24a6f14d62052"},
    {"2bitAdderMaj", "35b8774e17a387403736e30af9deaf52"},
    {"xor5Maj", "7824ab00aa93f73fac6075ad772ad7ac"},
    {"cm82a_5", "dff53bbda91ca00020f6ac1a67d9194d"},
    {"parity", "d70ae8cc411ece5d968607df5324d2eb"},
};

constexpr golden_hash golden_hexagonal[] = {
    {"2:1 MUX", "5004a664733f6b1eb7993cdef509e5d2"},
    {"XOR", "2e8df92fedaf5314d3ddb3a3a6dc9d58"},
    {"XNOR", "0fad3bb66cf254f5cef4ebbaad4a1da4"},
    {"Half Adder", "242f7145d96d046db7fcb0ab0b4a2141"},
    {"Full Adder", "6b45b9ba911c837202d3c0829bf85173"},
    {"Parity Gen.", "05bc7d68ab02f26d62efa3e9bd49c8e0"},
    {"Parity Check.", "1933e28c8da7ce4f4a393793633d34f0"},
    {"t", "d79e6cf668a9957d77cdf519abbe3a5e"},
    {"b1_r2", "b2d6e32025aa200d9cdb0b13e1974862"},
    {"majority", "2c40b425b50b4b931bf776e184218574"},
    {"newtag", "b0882e9eb0798224245aba9c99818674"},
    {"clpl", "16bdae011842be6b5f65c1feff5208db"},
    {"1bitAdderAOIG", "64283980417163e3e71e355cdece06b1"},
    {"1bitAdderMaj", "d6ddc1f310877b6497dd8c47bc9f5671"},
    {"2bitAdderMaj", "e4084d6a2acd0cd952ca61c67a0302b9"},
    {"xor5Maj", "d52168ee90a91e97bc5c4e9ddb749ab4"},
    {"cm82a_5", "7f416f134ddcf84b0c4bc24a095a7780"},
    {"parity", "8afd121ac7e16f4e4b828a4dca7a26b7"},
};

const char* lookup(const golden_hash (&table)[18], const std::string& name)
{
    for (const auto& row : table)
    {
        if (name == row.name)
        {
            return row.hash;
        }
    }
    return nullptr;
}

}  // namespace

TEST(StorageDifferentialTest, FglOutputByteIdenticalToMapBackedBaseline)
{
    auto entries = bm::trindade16();
    for (const auto& f : bm::fontes18())
    {
        entries.push_back(f);
    }
    ASSERT_EQ(entries.size(), 18u);

    for (const auto& entry : entries)
    {
        const auto* cart_hash = lookup(golden_cartesian, entry.name);
        const auto* hex_hash = lookup(golden_hexagonal, entry.name);
        ASSERT_NE(cart_hash, nullptr) << "no golden hash for " << entry.name;
        ASSERT_NE(hex_hash, nullptr) << "no golden hash for " << entry.name;

        const auto network = entry.build();
        const auto cart = pd::ortho(network);
        EXPECT_EQ(svc::content_hash(io::write_fgl_string(cart)), cart_hash)
            << ".fgl bytes changed for " << entry.name << " (Cartesian)";
        EXPECT_EQ(svc::content_hash(io::write_fgl_string(pd::hexagonalization(cart))), hex_hash)
            << ".fgl bytes changed for " << entry.name << " (hexagonal)";
    }
}
