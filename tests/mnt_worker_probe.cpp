//
// Worker probe: a tiny helper binary the supervisor and crash-recovery
// tests launch as a supervised child. Each mode exercises one termination
// path — clean exit, crash, hang, OOM, CPU burn — plus a real `job` mode
// that runs one regeneration job through run_regen_job, so the supervised
// populate path can be tested end to end without shelling out to the CLIs.
//
// usage: mnt_worker_probe <mode> [args...]
//   exit <code>                 exit with the given code
//   segv                        die on SIGSEGV immediately
//   stderr-then-segv            write a marker line to stderr, then SIGSEGV
//   spin                        sleep forever without heartbeating
//   spin-ignore-term            same, but with SIGTERM ignored (forces SIGKILL)
//   heartbeat <n> <interval_ms> emit n heartbeats at the given interval, exit 0
//   alloc <mb>                  allocate and touch <mb> MiB; bad_alloc -> exit 42
//   cpu-burn                    burn CPU forever (for RLIMIT_CPU tests)
//   job <store> [--deadline <s>] ... --worker-job <id>
//                               run one regeneration job (deterministic) over
//                               the Trindade16 entries against <store>
//

#include "benchmarks/suites.hpp"
#include "common/supervisor.hpp"
#include "service/populate.hpp"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <thread>
#include <vector>

namespace
{

[[noreturn]] void die_segv()
{
    std::raise(SIGSEGV);
    std::abort();  // unreachable; raise of a default-fatal signal does not return
}

int run_job_mode(const int argc, char** argv)
{
    // argv: job <store> [flags...] --worker-job <id>
    if (argc < 3)
    {
        std::fprintf(stderr, "probe: job mode needs a store path\n");
        return 2;
    }
    const std::string store_root{argv[2]};
    std::string job_id{};
    for (int i = 3; i < argc; ++i)
    {
        if (std::strcmp(argv[i], "--worker-job") == 0 && i + 1 < argc)
        {
            job_id = argv[++i];
        }
    }
    if (job_id.empty())
    {
        std::fprintf(stderr, "probe: job mode needs --worker-job <id>\n");
        return 2;
    }
    mnt::svc::populate_options options{};
    options.deterministic = true;
    options.journal = false;
    const auto entries = mnt::bm::trindade16();
    try
    {
        const auto report = mnt::svc::run_regen_job(store_root, entries, job_id, options);
        return report.jobs_run == 1 ? 0 : 3;
    }
    catch (const std::exception& e)
    {
        std::fprintf(stderr, "probe: job failed: %s\n", e.what());
        return 1;
    }
}

}  // namespace

int main(int argc, char** argv)
{
    if (argc < 2)
    {
        std::fprintf(stderr, "probe: missing mode\n");
        return 2;
    }
    const std::string mode{argv[1]};

    if (mode == "exit")
    {
        return argc > 2 ? std::atoi(argv[2]) : 0;
    }
    if (mode == "segv")
    {
        die_segv();
    }
    if (mode == "stderr-then-segv")
    {
        std::fprintf(stderr, "probe: about to crash on purpose\n");
        std::fflush(stderr);
        die_segv();
    }
    if (mode == "spin" || mode == "spin-ignore-term")
    {
        if (mode == "spin-ignore-term")
        {
            std::signal(SIGTERM, SIG_IGN);
        }
        for (;;)
        {
            std::this_thread::sleep_for(std::chrono::milliseconds{10});
        }
    }
    if (mode == "heartbeat")
    {
        const int n = argc > 2 ? std::atoi(argv[2]) : 10;
        const int interval_ms = argc > 3 ? std::atoi(argv[3]) : 50;
        for (int i = 0; i < n; ++i)
        {
            mnt::sup::heartbeat();
            std::this_thread::sleep_for(std::chrono::milliseconds{interval_ms});
        }
        return 0;
    }
    if (mode == "alloc")
    {
        const std::size_t mb = argc > 2 ? static_cast<std::size_t>(std::atoll(argv[2])) : 512;
        try
        {
            auto* block = new char[mb * 1024 * 1024];
            for (std::size_t i = 0; i < mb * 1024 * 1024; i += 4096)
            {
                block[i] = static_cast<char>(i);
            }
            std::printf("%c", block[0]);  // defeat dead-store elimination
            delete[] block;
            return 0;
        }
        catch (const std::bad_alloc&)
        {
            std::_Exit(42);
        }
    }
    if (mode == "cpu-burn")
    {
        volatile std::uint64_t x = 0;
        for (;;)
        {
            x = x + 1;
        }
    }
    if (mode == "job")
    {
        return run_job_mode(argc, argv);
    }

    std::fprintf(stderr, "probe: unknown mode '%s'\n", mode.c_str());
    return 2;
}
