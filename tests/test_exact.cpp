#include "physical_design/exact.hpp"

#include "common/types.hpp"
#include "test_networks.hpp"
#include "verification/drc.hpp"
#include "verification/equivalence.hpp"

#include <gtest/gtest.h>

using namespace mnt;
using namespace mnt::pd;
using namespace mnt::test;

namespace
{

ntk::logic_network single_and()
{
    ntk::logic_network network{"and"};
    network.create_po(network.create_and(network.create_pi("a"), network.create_pi("b")), "y");
    return network;
}

}  // namespace

TEST(ExactTest, SingleAndOn2DDWave)
{
    const auto network = single_and();
    exact_stats stats{};
    const auto layout = exact(network, {}, &stats);
    ASSERT_TRUE(layout.has_value());
    EXPECT_FALSE(stats.timed_out);
    // 4 placeable nodes; a 2x2 grid cannot host the PO (no outgoing tile
    // for the AND in bounds), so the true optimum is 6 tiles (e.g. 3x2)
    EXPECT_EQ(layout->area(), 6u);
    EXPECT_TRUE(ver::gate_level_drc(*layout).passed());
    EXPECT_TRUE(ver::check_layout_equivalence(network, *layout));
}

TEST(ExactTest, AreaIsMinimalComparedToWideBound)
{
    // xor + inverter: exact must beat the trivial diagonal bound
    ntk::logic_network network{"xn"};
    const auto a = network.create_pi("a");
    const auto b = network.create_pi("b");
    network.create_po(network.create_not(network.create_xor(a, b)), "y");

    exact_params params{};
    params.timeout_s = 5.0;
    const auto layout = exact(network, params);
    ASSERT_TRUE(layout.has_value());
    EXPECT_LE(layout->area(), 8u);  // 5 placeable nodes + routing
    EXPECT_TRUE(ver::check_layout_equivalence(network, *layout));
}

TEST(ExactTest, Mux21OnUseScheme)
{
    const auto network = mux21();
    exact_params params{};
    params.scheme = lyt::clocking_kind::use;
    // generous budget: Release finds the solution in well under a second, but
    // Debug + sanitizer builds legitimately need several seconds
    params.timeout_s = 60.0;
    params.max_area = 40;
    const auto layout = exact(network, params);
    ASSERT_TRUE(layout.has_value());
    EXPECT_EQ(layout->clocking().kind(), lyt::clocking_kind::use);
    EXPECT_TRUE(ver::gate_level_drc(*layout).passed());
    EXPECT_TRUE(ver::check_layout_equivalence(network, *layout));
}

TEST(ExactTest, MajStaysNativeOnRes)
{
    // RES offers 3-incoming tiles: MAJ must not be decomposed
    ntk::logic_network network{"maj"};
    const auto a = network.create_pi("a");
    const auto b = network.create_pi("b");
    const auto c = network.create_pi("c");
    network.create_po(network.create_maj(a, b, c), "y");

    exact_params params{};
    params.scheme = lyt::clocking_kind::res;
    params.timeout_s = 10.0;
    params.max_area = 30;
    const auto layout = exact(network, params);
    ASSERT_TRUE(layout.has_value());
    bool has_maj = false;
    layout->foreach_tile([&](const lyt::coordinate&, const lyt::gate_level_layout::tile_data& d)
                         { has_maj |= d.type == ntk::gate_type::maj3; });
    EXPECT_TRUE(has_maj);
    EXPECT_TRUE(ver::check_layout_equivalence(network, *layout));
}

TEST(ExactTest, HexagonalRowLayout)
{
    const auto network = single_and();
    exact_params params{};
    params.topology = lyt::layout_topology::hexagonal_even_row;
    params.scheme = lyt::clocking_kind::row;
    params.timeout_s = 5.0;
    const auto layout = exact(network, params);
    ASSERT_TRUE(layout.has_value());
    EXPECT_EQ(layout->topology(), lyt::layout_topology::hexagonal_even_row);
    EXPECT_TRUE(ver::gate_level_drc(*layout).passed());
    EXPECT_TRUE(ver::check_layout_equivalence(network, *layout));
}

TEST(ExactTest, TimeoutReported)
{
    // a function too large for a 1 ms budget
    const auto network = random_network(4, 10, 2, 5);
    exact_params params{};
    params.timeout_s = 0.001;
    params.max_area = 80;
    exact_stats stats{};
    const auto layout = exact(network, params, &stats);
    EXPECT_FALSE(layout.has_value());
    EXPECT_TRUE(stats.timed_out);
}

TEST(ExactTest, InfeasibleAreaBoundReturnsNothing)
{
    const auto network = mux21();
    exact_params params{};
    params.max_area = 3;  // fewer tiles than nodes
    exact_stats stats{};
    const auto layout = exact(network, params, &stats);
    EXPECT_FALSE(layout.has_value());
    EXPECT_FALSE(stats.timed_out);
}

TEST(ExactTest, RejectsOpenScheme)
{
    exact_params params{};
    params.scheme = lyt::clocking_kind::open;
    EXPECT_THROW(static_cast<void>(exact(single_and(), params)), precondition_error);
}

TEST(ExactTest, RejectsHexWithNonRow)
{
    exact_params params{};
    params.topology = lyt::layout_topology::hexagonal_even_row;
    params.scheme = lyt::clocking_kind::use;
    EXPECT_THROW(static_cast<void>(exact(single_and(), params)), precondition_error);
}

TEST(ExactTest, MaxIncomingDegreeTable)
{
    EXPECT_EQ(max_incoming_degree(lyt::clocking_kind::twoddwave, lyt::layout_topology::cartesian), 2);
    EXPECT_EQ(max_incoming_degree(lyt::clocking_kind::row, lyt::layout_topology::hexagonal_even_row), 2);
    EXPECT_EQ(max_incoming_degree(lyt::clocking_kind::row, lyt::layout_topology::cartesian), 1);
    EXPECT_GE(max_incoming_degree(lyt::clocking_kind::res, lyt::layout_topology::cartesian), 3);
    EXPECT_LE(max_incoming_degree(lyt::clocking_kind::use, lyt::layout_topology::cartesian), 2);
}
