#include "benchmarks/functions.hpp"
#include "benchmarks/suites.hpp"
#include "benchmarks/synthetic.hpp"

#include "common/types.hpp"
#include "network/network_utils.hpp"
#include "network/simulation.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <set>
#include <string>

using namespace mnt;
using namespace mnt::bm;

TEST(FunctionsTest, Mux21TruthTable)
{
    const auto tts = ntk::simulate_truth_tables(mux21());
    // variables: s, a, b -> y = s ? b : a
    for (std::uint64_t i = 0; i < 8; ++i)
    {
        const bool s = (i & 1) != 0;
        const bool a = (i & 2) != 0;
        const bool b = (i & 4) != 0;
        EXPECT_EQ(tts[0].get_bit(i), s ? b : a) << i;
    }
}

TEST(FunctionsTest, XorXnorAreComplements)
{
    const auto x = ntk::simulate_truth_tables(xor2());
    const auto xn = ntk::simulate_truth_tables(xnor2());
    EXPECT_EQ(x[0].to_hex(), "6");
    EXPECT_EQ(xn[0].to_hex(), "9");
}

TEST(FunctionsTest, AddersComputeCorrectSums)
{
    for (const auto& network : {full_adder(), one_bit_adder_aoig(), one_bit_adder_maj()})
    {
        const auto tts = ntk::simulate_truth_tables(network);
        ASSERT_EQ(tts.size(), 2u);
        for (std::uint64_t i = 0; i < 8; ++i)
        {
            const int total = static_cast<int>(i & 1) + static_cast<int>((i >> 1) & 1) +
                              static_cast<int>((i >> 2) & 1);
            EXPECT_EQ(tts[0].get_bit(i), (total & 1) != 0) << network.network_name() << " sum " << i;
            EXPECT_EQ(tts[1].get_bit(i), total >= 2) << network.network_name() << " carry " << i;
        }
    }
}

TEST(FunctionsTest, TwoBitAdderMajIsCorrect)
{
    const auto tts = ntk::simulate_truth_tables(two_bit_adder_maj());
    ASSERT_EQ(tts.size(), 3u);
    // variables: a0, b0, a1, b1, cin
    for (std::uint64_t i = 0; i < 32; ++i)
    {
        const int a = static_cast<int>(i & 1) + 2 * static_cast<int>((i >> 2) & 1);
        const int b = static_cast<int>((i >> 1) & 1) + 2 * static_cast<int>((i >> 3) & 1);
        const int cin = static_cast<int>((i >> 4) & 1);
        const int total = a + b + cin;
        EXPECT_EQ(tts[0].get_bit(i), (total & 1) != 0) << i;        // s0
        EXPECT_EQ(tts[1].get_bit(i), ((total >> 1) & 1) != 0) << i;  // s1
        EXPECT_EQ(tts[2].get_bit(i), total >= 4) << i;               // cout
    }
}

TEST(FunctionsTest, Majority5CountsVotes)
{
    const auto tts = ntk::simulate_truth_tables(majority5());
    for (std::uint64_t i = 0; i < 32; ++i)
    {
        EXPECT_EQ(tts[0].get_bit(i), std::popcount(i) >= 3) << i;
    }
}

TEST(FunctionsTest, ParityFunctions)
{
    const auto gen = ntk::simulate_truth_tables(parity_generator());
    for (std::uint64_t i = 0; i < 8; ++i)
    {
        EXPECT_EQ(gen[0].get_bit(i), (std::popcount(i) & 1) != 0);
    }

    const auto xor5 = ntk::simulate_truth_tables(xor5_maj());
    for (std::uint64_t i = 0; i < 32; ++i)
    {
        EXPECT_EQ(xor5[0].get_bit(i), (std::popcount(i) & 1) != 0);
    }

    const auto p16 = ntk::simulate_truth_tables(parity16());
    EXPECT_EQ(p16[0].count_ones(), 1ull << 15);  // half the assignments odd
}

TEST(FunctionsTest, ParityCheckerAcceptsCorrectParity)
{
    const auto tts = ntk::simulate_truth_tables(parity_checker());
    // ok = xnor(parity(a,b,c), p): variables a,b,c,p
    for (std::uint64_t i = 0; i < 16; ++i)
    {
        const bool parity = (std::popcount(i & 7u) & 1) != 0;
        const bool p = (i & 8) != 0;
        EXPECT_EQ(tts[0].get_bit(i), parity == p) << i;
    }
}

TEST(FunctionsTest, NewtagMatchesPattern)
{
    const auto tts = ntk::simulate_truth_tables(newtag());
    for (std::uint64_t i = 0; i < 256; ++i)
    {
        const auto lo = i & 0xf;
        const auto hi = (i >> 4) & 0xf;
        EXPECT_EQ(tts[0].get_bit(i), lo == hi) << i;
    }
}

TEST(FunctionsTest, C17MatchesPublishedNetlist)
{
    const auto network = c17();
    EXPECT_EQ(network.num_pis(), 5u);
    EXPECT_EQ(network.num_pos(), 2u);
    EXPECT_EQ(network.num_gates(), 6u);
    const auto stats = ntk::collect_statistics(network);
    EXPECT_EQ(stats.per_type[static_cast<std::size_t>(ntk::gate_type::nand2)], 6u);

    // spot-check: all inputs high -> 22 = nand(nand(1,3), nand(2, nand(3,6)))
    const auto tts = ntk::simulate_truth_tables(network);
    const std::uint64_t all_ones = 31;
    // n10 = 0, n11 = 0, n16 = 1, n19 = 1 -> out22 = 1, out23 = 0
    EXPECT_TRUE(tts[0].get_bit(all_ones));
    EXPECT_FALSE(tts[1].get_bit(all_ones));
}

TEST(SyntheticTest, ExactCounts)
{
    synthetic_spec spec{};
    spec.name = "syn";
    spec.num_pis = 12;
    spec.num_pos = 5;
    spec.num_gates = 200;
    const auto network = synthetic_network(spec);
    EXPECT_EQ(network.num_pis(), 12u);
    EXPECT_EQ(network.num_pos(), 5u);
    EXPECT_EQ(network.num_gates(), 200u);
    EXPECT_TRUE(ntk::sanity_check(network).empty());
}

TEST(SyntheticTest, DeterministicPerSeed)
{
    synthetic_spec spec{};
    spec.num_gates = 50;
    const auto a = synthetic_network(spec);
    const auto b = synthetic_network(spec);
    EXPECT_TRUE(a.structurally_equal(b));

    spec.seed += 1;
    const auto c = synthetic_network(spec);
    EXPECT_FALSE(a.structurally_equal(c));
}

TEST(SyntheticTest, AllPisAreUsed)
{
    synthetic_spec spec{};
    spec.num_pis = 16;
    spec.num_gates = 100;
    const auto network = synthetic_network(spec);
    network.foreach_pi([&](const ntk::logic_network::node pi)
                       { EXPECT_GT(network.fanout_size(pi), 0u) << network.name_of(pi); });
}

TEST(SyntheticTest, RejectsEmptyInterfaces)
{
    synthetic_spec spec{};
    spec.num_pis = 0;
    EXPECT_THROW(static_cast<void>(synthetic_network(spec)), precondition_error);
}

TEST(SuitesTest, SetSizesMatchTableOne)
{
    EXPECT_EQ(trindade16().size(), 7u);
    EXPECT_EQ(fontes18().size(), 11u);
    EXPECT_EQ(iscas85().size(), 11u);
    EXPECT_EQ(epfl().size(), 11u);
    EXPECT_EQ(all_suites().size(), 40u);
}

TEST(SuitesTest, NamesAreUniquePerSet)
{
    std::set<std::string> seen;
    for (const auto& e : all_suites())
    {
        EXPECT_TRUE(seen.insert(e.set + "/" + e.name).second) << e.set << "/" << e.name;
    }
}

TEST(SuitesTest, AllBuildersProduceSaneNetworks)
{
    for (const auto& e : all_suites())
    {
        const auto network = e.build();
        EXPECT_TRUE(ntk::sanity_check(network).empty()) << e.set << "/" << e.name;
        EXPECT_GT(network.num_pis(), 0u) << e.name;
        EXPECT_GT(network.num_pos(), 0u) << e.name;
    }
}

TEST(SuitesTest, SyntheticStandInsMatchPublishedCounts)
{
    for (const auto& e : iscas85())
    {
        if (e.name == "c432")
        {
            const auto network = e.build();
            EXPECT_EQ(network.num_pis(), 36u);
            EXPECT_EQ(network.num_pos(), 7u);
            EXPECT_EQ(network.num_gates(), 414u);
        }
        if (e.name == "c6288")
        {
            const auto network = e.build();
            EXPECT_EQ(network.num_gates(), 6467u);
        }
    }
    for (const auto& e : epfl())
    {
        if (e.name == "sin")
        {
            EXPECT_EQ(e.build().num_gates(), 11437u);
            EXPECT_EQ(e.size, size_class::large);
        }
    }
}
