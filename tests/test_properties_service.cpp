/// \file test_properties_service.cpp
/// \brief Property suites over the benchmark service layer: the indexed
///        query engine must match the linear scan record-for-record, result
///        pages must be consistent with a from-scratch re-derivation, the
///        persistent store must round-trip byte-identically, and the HTTP
///        stack (parser + router) must classify arbitrary byte-streams
///        without crashing or answering 5xx.

#include "proptest_gtest.hpp"

#include "common/resilience.hpp"
#include "core/catalog.hpp"
#include "core/filters.hpp"
#include "physical_design/ortho.hpp"
#include "service/query.hpp"
#include "service/server.hpp"
#include "testing/generators.hpp"
#include "testing/oracles.hpp"
#include "testing/shrink.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unistd.h>
#include <utility>
#include <vector>

namespace
{

using namespace mnt;

// --------------------------------------------------------- catalog fixture

/// A catalog of 30 distinct small layouts with metadata spread over every
/// facet dimension, plus the engine indexing it. Built once per process.
struct service_fixture
{
    cat::catalog catalog;
    std::unique_ptr<svc::query_engine> engine;
};

const service_fixture& fixture()
{
    static const service_fixture instance = []
    {
        service_fixture f{};
        const std::vector<std::string> sets{"Trindade16", "Fontes18"};
        const std::vector<std::string> clockings{"2DDWave", "USE", "RES"};
        const std::vector<std::string> algorithms{"ortho", "NPR", "exact"};
        const std::vector<std::vector<std::string>> optimization_sets{
            {}, {"PLO"}, {"InOrd (SDN)"}, {"InOrd (SDN)", "PLO"}, {"45°", "PLO"}};

        pbt::rng random{0x5eedf00dULL};
        for (std::size_t i = 0; i < 30; ++i)
        {
            pbt::network_spec spec{};
            spec.name = "fixture" + std::to_string(i);
            // distinct networks => distinct .fgl blobs => distinct engine ids
            const auto network = pbt::random_network(random, spec);

            cat::layout_record record{};
            record.benchmark_set = sets[i % sets.size()];
            record.benchmark_name = "f" + std::to_string(i % 6);
            record.library = (i % 3 == 0) ? cat::gate_library_kind::bestagon : cat::gate_library_kind::qca_one;
            record.clocking = clockings[i % clockings.size()];
            record.algorithm = algorithms[(i / 2) % algorithms.size()];
            record.optimizations = optimization_sets[i % optimization_sets.size()];
            record.runtime = 0.01 * static_cast<double>(i + 1);
            record.layout = pd::ortho(network);
            f.catalog.add_layout(std::move(record));
        }
        f.engine = std::make_unique<svc::query_engine>(f.catalog);
        return f;
    }();
    return instance;
}

// ----------------------------------------------------------- query inputs

cat::filter_query random_filter(pbt::rng& random)
{
    // vocabulary deliberately includes values absent from the fixture, so
    // empty selections and dead posting lists get exercised too
    const std::vector<std::string> sets{"Trindade16", "Fontes18", "ISCAS85"};
    const std::vector<std::string> names{"f0", "f1", "f2", "f3", "f4", "f5", "mux21"};
    const std::vector<std::string> clockings{"2DDWave", "USE", "RES", "ESR"};
    const std::vector<std::string> algorithms{"ortho", "NPR", "exact", "gold"};
    const std::vector<std::string> optimizations{"PLO", "InOrd (SDN)", "45°", "SDN"};

    cat::filter_query query{};
    if (random.chance(1, 2))
    {
        query.benchmark_set = random.pick(sets);
    }
    if (random.chance(1, 3))
    {
        query.benchmark_name = random.pick(names);
    }
    if (random.chance(1, 2))
    {
        query.libraries.push_back(random.chance(1, 2) ? cat::gate_library_kind::qca_one :
                                                        cat::gate_library_kind::bestagon);
    }
    for (std::size_t i = random.below(3); i > 0; --i)
    {
        query.clockings.push_back(random.pick(clockings));
    }
    for (std::size_t i = random.below(3); i > 0; --i)
    {
        query.algorithms.push_back(random.pick(algorithms));
    }
    for (std::size_t i = random.below(2); i > 0; --i)
    {
        query.required_optimizations.push_back(random.pick(optimizations));
    }
    query.best_only = random.chance(1, 4);
    return query;
}

std::string show_filter(const cat::filter_query& query)
{
    std::string out{"filter{"};
    if (query.benchmark_set)
    {
        out += " set=" + *query.benchmark_set;
    }
    if (query.benchmark_name)
    {
        out += " name=" + *query.benchmark_name;
    }
    for (const auto lib : query.libraries)
    {
        out += " lib=" + cat::gate_library_name(lib);
    }
    for (const auto& c : query.clockings)
    {
        out += " clk=" + c;
    }
    for (const auto& a : query.algorithms)
    {
        out += " alg=" + a;
    }
    for (const auto& o : query.required_optimizations)
    {
        out += " opt=" + o;
    }
    if (query.best_only)
    {
        out += " best";
    }
    return out + " }";
}

TEST(QueryEngine, FilterMatchesLinearScan)
{
    const auto config = pbt::current_test_config("svc.query.parity", 200);
    const auto& f = fixture();

    pbt::property<cat::filter_query> prop{};
    prop.generate = random_filter;
    prop.check = [&f](const cat::filter_query& query, const res::deadline_clock&)
    { return pbt::check_query_parity(*f.engine, f.catalog, query); };
    prop.show = show_filter;
    MNT_RUN_PROPERTY(config, prop);
}

TEST(QueryEngine, PagesAreConsistentWithRederivation)
{
    const auto config = pbt::current_test_config("svc.query.pages", 200);
    const auto& f = fixture();

    pbt::property<svc::page_query> prop{};
    prop.generate = [](pbt::rng& random)
    {
        svc::page_query query{};
        query.filter = random_filter(random);
        const std::vector<svc::sort_key> keys{svc::sort_key::area, svc::sort_key::benchmark,
                                              svc::sort_key::algorithm, svc::sort_key::runtime};
        query.sort = random.pick(keys);
        query.order = random.chance(1, 2) ? svc::sort_order::ascending : svc::sort_order::descending;
        query.offset = static_cast<std::size_t>(random.below(40));
        // 0 (metadata only), tiny, typical and above-cap limits
        query.limit = static_cast<std::size_t>(random.chance(1, 8) ? 0 : random.below(600));
        query.include_facets = random.chance(1, 2);
        return query;
    };
    prop.check = [&f](const svc::page_query& query, const res::deadline_clock&)
    { return pbt::check_page_consistency(*f.engine, f.catalog, query); };
    prop.show = [](const svc::page_query& query)
    {
        return show_filter(query.filter) + " sort=" + svc::sort_key_name(query.sort) +
               (query.order == svc::sort_order::descending ? " desc" : " asc") +
               " offset=" + std::to_string(query.offset) + " limit=" + std::to_string(query.limit) +
               (query.include_facets ? " facets" : "");
    };
    MNT_RUN_PROPERTY(config, prop);
}

TEST(Store, RoundTripsArbitraryNetworksByteIdentically)
{
    const auto config = pbt::current_test_config("svc.store.roundtrip", 200);

    static std::atomic<std::uint64_t> dir_counter{0};
    pbt::property<ntk::logic_network> prop{};
    prop.generate = [](pbt::rng& random)
    {
        pbt::network_spec spec{};
        spec.max_gates = 10;
        return pbt::random_network(random, spec);
    };
    prop.check = [](const ntk::logic_network& network, const res::deadline_clock&)
    {
        const auto root = std::filesystem::temp_directory_path() /
                          ("mnt_prop_store_" + std::to_string(::getpid()) + "_" +
                           std::to_string(dir_counter.fetch_add(1)));
        std::filesystem::remove_all(root);
        const auto result = pbt::check_store_roundtrip(network, root);
        std::filesystem::remove_all(root);
        return result;
    };
    prop.shrink = [](ntk::logic_network network, const std::function<bool(const ntk::logic_network&)>& still_fails)
    { return pbt::shrink_network(std::move(network), still_fails); };
    MNT_RUN_PROPERTY(config, prop);
}

// ------------------------------------------------------------- HTTP stack

std::string show_bytes(const std::string& bytes)
{
    // render CR/LF and non-printables so reproducers paste safely
    std::string out{};
    for (const auto c : bytes)
    {
        const auto u = static_cast<unsigned char>(c);
        if (c == '\r')
        {
            out += "\\r";
        }
        else if (c == '\n')
        {
            out += "\\n\n";
        }
        else if (u < 0x20 || u > 0x7e)
        {
            constexpr const char* hex = "0123456789abcdef";
            out += std::string{"\\x"} + hex[u >> 4U] + std::string{hex[u & 0x0fU]};
        }
        else
        {
            out += c;
        }
    }
    return out;
}

TEST(HttpStack, ArbitraryByteStreamsNeverCrashOrAnswer5xx)
{
    const auto config = pbt::current_test_config("svc.http.bytes", 200);
    const auto& f = fixture();
    svc::catalog_server server{*f.engine};  // handle() only; never start()ed

    pbt::property<std::string> prop{};
    prop.generate = [](pbt::rng& random) { return pbt::random_http_request(random); };
    prop.check = [&server](const std::string& bytes, const res::deadline_clock&)
    { return pbt::check_http_byte_stream(server, bytes); };
    prop.shrink = [](std::string bytes, const std::function<bool(const std::string&)>& still_fails)
    { return pbt::shrink_bytes(std::move(bytes), still_fails); };
    prop.show = show_bytes;
    MNT_RUN_PROPERTY(config, prop);
}

TEST(HttpStack, ConcurrentHandleIsRaceFree)
{
    // the nightly TSan run leans on this: many threads through the shared
    // read path (indexes + response cache) with generated requests
    const auto& f = fixture();
    svc::catalog_server server{*f.engine};

    constexpr std::size_t threads = 4;
    constexpr std::size_t requests_per_thread = 50;
    std::atomic<std::size_t> failures{0};

    std::vector<std::thread> pool{};
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t)
    {
        pool.emplace_back(
            [&server, &failures, t]
            {
                pbt::rng random{0xc0ffee00ULL + t};
                for (std::size_t i = 0; i < requests_per_thread; ++i)
                {
                    const auto bytes = pbt::random_http_request(random);
                    if (!pbt::check_http_byte_stream(server, bytes))
                    {
                        failures.fetch_add(1);
                    }
                }
            });
    }
    for (auto& worker : pool)
    {
        worker.join();
    }
    EXPECT_EQ(failures.load(), 0U);
}

}  // namespace
