/// \file test_families.cpp
/// \brief Known-answer and determinism tests for the synthetic benchmark
///        families: pinned family ids and first-network fingerprints for the
///        three reference families, manifest byte-determinism at the
///        1000-function acceptance scale, and the family metadata round-trip
///        through the layout store, catalog and query facets.
///
/// The KAT constants below freeze generator version 1. If a change to the
/// generator or the seed-derivation scheme breaks them, that change must bump
/// \ref mnt::bm::family_generator_version — the ids are the reproducibility
/// contract served to clients, not an implementation detail.

#include "benchmarks/families.hpp"
#include "core/catalog.hpp"
#include "core/filters.hpp"
#include "io/verilog_writer.hpp"
#include "physical_design/ortho.hpp"
#include "service/hash.hpp"
#include "service/store.hpp"
#include "testing/generators.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

namespace
{

using namespace mnt;

/// Fingerprint of one generated network: interface counts plus the content
/// hash of its canonical (primitives-style) Verilog serialization.
struct network_kat
{
    std::size_t pis;
    std::size_t pos;
    std::size_t gates;
    const char* hash;
};

std::string network_fingerprint(const ntk::logic_network& network)
{
    return svc::content_hash(io::write_verilog_string(network, io::verilog_style::primitives));
}

// ------------------------------------------------------------ family ids

TEST(FamilyId, ReferenceFamilyIdsArePinned)
{
    const auto families = bm::reference_families();
    ASSERT_EQ(families.size(), 3u);
    EXPECT_EQ(families[0].name, "aoi");
    EXPECT_EQ(families[1].name, "xor");
    EXPECT_EQ(families[2].name, "maj");
    for (const auto& spec : families)
    {
        EXPECT_EQ(spec.count, 1000u);
    }
    EXPECT_EQ(bm::family_id(families[0]), "6682375c4d18b48833afe8ba6ddaa50e");
    EXPECT_EQ(bm::family_id(families[1]), "fba889ee86fab4df752fac1155c4e9b4");
    EXPECT_EQ(bm::family_id(families[2]), "caddf413397a79a9c571ccb97fb54ef4");
}

TEST(FamilyId, EveryParameterIsIdentityRelevant)
{
    const auto base = bm::find_reference_family("aoi");
    ASSERT_TRUE(base.has_value());
    const auto base_id = bm::family_id(*base);

    auto renamed = *base;
    renamed.name = "aoi2";
    EXPECT_NE(bm::family_id(renamed), base_id);

    auto reseeded = *base;
    reseeded.seed ^= 1;
    EXPECT_NE(bm::family_id(reseeded), base_id);

    auto recounted = *base;
    recounted.count = 999;
    EXPECT_NE(bm::family_id(recounted), base_id);

    auto reshaped = *base;
    reshaped.shape.max_gates += 1;
    EXPECT_NE(bm::family_id(reshaped), base_id);

    // the id is a pure function of the spec
    EXPECT_EQ(bm::family_id(*base), base_id);
}

TEST(FamilyId, SetNameAndFunctionNames)
{
    const auto spec = bm::find_reference_family("xor");
    ASSERT_TRUE(spec.has_value());
    EXPECT_EQ(bm::family_set_name(*spec), "Family-xor");
    EXPECT_EQ(bm::family_function_name(0), "f00000");
    EXPECT_EQ(bm::family_function_name(42), "f00042");
    EXPECT_EQ(bm::family_function_name(99999), "f99999");
}

// -------------------------------------------------------- first networks

TEST(FamilyKat, FirstNetworkOfEachReferenceFamilyIsPinned)
{
    const network_kat expected[3] = {
        {6, 1, 18, "633a96098ff1dc36fac8cabd5bb5673e"},  // aoi f00000
        {7, 1, 15, "7520c77772cdc827313c13c5d33f236b"},  // xor f00000
        {5, 2, 15, "3ee90f4effb022586e591660ff4afe41"},  // maj f00000
    };
    const auto families = bm::reference_families();
    ASSERT_EQ(families.size(), 3u);
    for (std::size_t f = 0; f < families.size(); ++f)
    {
        const auto network = bm::family_network(families[f], 0);
        EXPECT_EQ(network.num_pis(), expected[f].pis) << families[f].name;
        EXPECT_EQ(network.num_pos(), expected[f].pos) << families[f].name;
        EXPECT_EQ(network.num_gates(), expected[f].gates) << families[f].name;
        EXPECT_EQ(network_fingerprint(network), expected[f].hash) << families[f].name;
    }
}

TEST(FamilyKat, FunctionSeedsAreIndexLocal)
{
    // function i's seed must not depend on the family size — that is what
    // makes generation embarrassingly parallel and prefixes stable
    auto small = *bm::find_reference_family("aoi");
    small.count = 8;
    auto large = *bm::find_reference_family("aoi");
    large.count = 1000;
    for (std::size_t i = 0; i < small.count; ++i)
    {
        EXPECT_EQ(bm::family_function_seed(small, i), bm::family_function_seed(large, i));
        EXPECT_EQ(network_fingerprint(bm::family_network(small, i)),
                  network_fingerprint(bm::family_network(large, i)));
    }
    // distinct indexes get distinct seeds
    EXPECT_NE(bm::family_function_seed(large, 0), bm::family_function_seed(large, 1));
}

TEST(FamilyKat, OutOfRangeIndexThrows)
{
    auto spec = *bm::find_reference_family("aoi");
    spec.count = 4;
    EXPECT_THROW((void)bm::family_network(spec, 4), precondition_error);
}

// ------------------------------------------------------------- manifests

TEST(FamilyManifest, SmallManifestIsPinned)
{
    auto spec = *bm::find_reference_family("aoi");
    spec.count = 8;
    EXPECT_EQ(bm::family_id(spec), "8b3ada6c6be7f1613b396177ab9c2b32");
    EXPECT_EQ(bm::family_manifest_hash(spec), "9d38661de0eb78b9468aae4c40b48329");

    const auto manifest = bm::family_manifest(spec);
    const auto* functions = manifest.find("functions");
    ASSERT_NE(functions, nullptr);
    ASSERT_EQ(functions->as_array().size(), 8u);
    const auto* version = manifest.find("generator_version");
    ASSERT_NE(version, nullptr);
    EXPECT_EQ(static_cast<std::uint32_t>(version->as_number()), bm::family_generator_version);
}

TEST(FamilyManifest, ThousandFunctionManifestIsDeterministic)
{
    // the acceptance-scale check: >= 1000 functions, byte-identical bytes
    // (and therefore hash) across two independent generation runs
    const auto spec = *bm::find_reference_family("aoi");
    ASSERT_GE(spec.count, 1000u);
    const auto first = bm::family_manifest_bytes(spec);
    const auto second = bm::family_manifest_bytes(spec);
    EXPECT_EQ(first, second);
    EXPECT_EQ(svc::content_hash(first), bm::family_manifest_hash(spec));
    EXPECT_EQ(bm::family_manifest_hash(spec), "fdf58ef14547461ffdfc172c9dc5de7d");
}

// --------------------------------------------------------------- entries

TEST(FamilyEntries, EntriesCarryFamilyMetadataAndBuildDeterministically)
{
    auto spec = *bm::find_reference_family("maj");
    spec.count = 6;
    const auto id = bm::family_id(spec);
    const auto entries = bm::family_entries(spec);
    ASSERT_EQ(entries.size(), 6u);
    for (std::size_t i = 0; i < entries.size(); ++i)
    {
        EXPECT_EQ(entries[i].set, "Family-maj");
        EXPECT_EQ(entries[i].name, bm::family_function_name(i));
        EXPECT_EQ(entries[i].family, id);
        EXPECT_EQ(entries[i].family_seed, bm::family_function_seed(spec, i));
        EXPECT_EQ(entries[i].size, spec.size);
        const auto network = entries[i].build();
        EXPECT_EQ(network_fingerprint(network), network_fingerprint(bm::family_network(spec, i)));
    }
}

// ------------------------------------------------- store/catalog round-trip

struct family_store_dir
{
    std::filesystem::path path;
    family_store_dir() : path{std::filesystem::temp_directory_path() / "mnt_test_family_store"}
    {
        std::filesystem::remove_all(path);
    }
    ~family_store_dir()
    {
        std::error_code ec;
        std::filesystem::remove_all(path, ec);
    }
};

TEST(FamilyStore, FamilyMetadataSurvivesTheManifestRoundTrip)
{
    auto spec = *bm::find_reference_family("xor");
    spec.count = 3;
    const auto id = bm::family_id(spec);

    const family_store_dir dir{};
    {
        svc::layout_store store{dir.path};
        for (std::size_t i = 0; i < spec.count; ++i)
        {
            store.put_network(bm::family_set_name(spec), bm::family_function_name(i),
                              bm::family_network(spec, i), id);
        }
        cat::layout_record record{};
        record.benchmark_set = bm::family_set_name(spec);
        record.benchmark_name = bm::family_function_name(0);
        record.library = cat::gate_library_kind::qca_one;
        record.algorithm = "ortho";
        record.family = id;
        record.family_seed = bm::family_function_seed(spec, 0);
        record.layout = pd::ortho(bm::family_network(spec, 0));
        record.clocking = record.layout.clocking().name();
        store.put_layout(record);
        store.save();
    }

    svc::layout_store reopened{dir.path};
    const auto snapshot = reopened.load();
    EXPECT_TRUE(snapshot.issues.empty());

    const auto& networks = snapshot.catalog.networks();
    ASSERT_EQ(networks.size(), spec.count);
    for (const auto& n : networks)
    {
        EXPECT_EQ(n.family, id);
    }

    const auto& layouts = snapshot.catalog.layouts();
    ASSERT_EQ(layouts.size(), 1u);
    EXPECT_EQ(layouts.front().family, id);
    EXPECT_EQ(layouts.front().family_seed, bm::family_function_seed(spec, 0));

    // the family facet and filter see the restored records
    const auto facets = cat::compute_facets(snapshot.catalog);
    ASSERT_EQ(facets.per_family.count(id), 1u);
    EXPECT_EQ(facets.per_family.at(id), 1u);

    cat::filter_query query{};
    query.families = {id};
    EXPECT_EQ(cat::apply_filter(snapshot.catalog, query).size(), 1u);
    query.families = {"0000000000000000000000000000dead"};
    EXPECT_TRUE(cat::apply_filter(snapshot.catalog, query).empty());
}

TEST(FamilyStore, CuratedStoresStayByteIdentical)
{
    // a store without family metadata must serialize exactly as it did
    // before families existed — the family fields are additive
    const family_store_dir dir{};
    std::string without_family;
    {
        svc::layout_store store{dir.path};
        pbt::rng random{0x666d2d636f6d7061ull};
        store.put_network("Trindade16", "mux21", pbt::random_network(random));
        store.save();
        std::ifstream in{dir.path / "manifest.json", std::ios::binary};
        without_family.assign(std::istreambuf_iterator<char>{in}, std::istreambuf_iterator<char>{});
    }
    EXPECT_EQ(without_family.find("family"), std::string::npos);
}

}  // namespace
