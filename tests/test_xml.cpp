#include "io/xml.hpp"

#include "common/types.hpp"

#include <gtest/gtest.h>

#include <string>

using namespace mnt;
using namespace mnt::io::xml;

TEST(XmlTest, ParseSimpleDocument)
{
    const auto root = parse("<a><b>text</b><c/></a>");
    EXPECT_EQ(root->tag, "a");
    ASSERT_EQ(root->children.size(), 2u);
    EXPECT_EQ(root->children[0]->tag, "b");
    EXPECT_EQ(root->children[0]->text, "text");
    EXPECT_EQ(root->children[1]->tag, "c");
}

TEST(XmlTest, ParseDeclarationAndComments)
{
    const auto root = parse("<?xml version=\"1.0\"?>\n<!-- hi -->\n<root><!-- inner --><x>1</x></root>");
    EXPECT_EQ(root->tag, "root");
    EXPECT_EQ(root->child_text("x"), "1");
}

TEST(XmlTest, ParseAttributes)
{
    const auto root = parse("<g type='and' name=\"n&amp;1\"/>");
    EXPECT_EQ(root->attributes.at("type"), "and");
    EXPECT_EQ(root->attributes.at("name"), "n&1");
}

TEST(XmlTest, TextIsTrimmedAndUnescaped)
{
    const auto root = parse("<a>  x &lt;&gt; y  </a>");
    EXPECT_EQ(root->text, "x <> y");
}

TEST(XmlTest, MismatchedTagThrows)
{
    EXPECT_THROW(static_cast<void>(parse("<a><b></a></b>")), parse_error);
}

TEST(XmlTest, UnterminatedElementThrows)
{
    EXPECT_THROW(static_cast<void>(parse("<a><b>")), parse_error);
}

TEST(XmlTest, TrailingContentThrows)
{
    EXPECT_THROW(static_cast<void>(parse("<a/><b/>")), parse_error);
}

TEST(XmlTest, ChildAccessors)
{
    const auto root = parse("<a><b>1</b><b>2</b><c>3</c></a>");
    EXPECT_EQ(root->children_of("b").size(), 2u);
    EXPECT_EQ(root->child("c")->text, "3");
    EXPECT_EQ(root->child("zzz"), nullptr);
    EXPECT_THROW(static_cast<void>(root->child_text("zzz")), parse_error);
}

TEST(XmlTest, SerializeParseRoundTrip)
{
    element root;
    root.tag = "fgl";
    auto& layout = root.add("layout");
    layout.add("name", "test<&>");
    auto& gates = layout.add("gates");
    auto& g = gates.add("gate");
    g.attributes["kind"] = "and";
    g.add("x", "3");

    const auto doc = serialize(root);
    const auto parsed = parse(doc);
    EXPECT_EQ(parsed->tag, "fgl");
    EXPECT_EQ(parsed->child("layout")->child_text("name"), "test<&>");
    EXPECT_EQ(parsed->child("layout")->child("gates")->children_of("gate")[0]->attributes.at("kind"), "and");
}

TEST(XmlTest, EscapeCoversAllSpecials)
{
    EXPECT_EQ(escape("a&b<c>d\"e'f"), "a&amp;b&lt;c&gt;d&quot;e&apos;f");
}
