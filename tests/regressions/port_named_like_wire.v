// found by fuzz_verilog_reader: the input is named like the generated
// wire of the only gate (node id 4), so the writer emitted "wire n4;"
// next to "input n4" and the document silently rewired y to the input
// on re-read. Generated wire names must avoid port names.
module m(n4, b, y);
input n4, b;
output y;
and g(y, n4, b);
endmodule
