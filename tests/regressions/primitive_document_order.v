// shrunk by io.verilog.roundtrip: demand-driven elaboration from the
// outputs created 'maj' before 'and' (cone-DFS order), so a written
// file did not read back structurally identical. The reader must create
// gates in document order.
module prop( x0, x1, x2, x3, y0 );
  input x0, x1, x2, x3;
  output y0;
  wire n6, n7, n8;
  and g0(n6, x3, x0);
  maj g1(n7, x1, x1, x2);
  lt g2(n8, n7, n6);
  assign y0 = n8;
endmodule
