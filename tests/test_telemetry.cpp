#include "telemetry/report.hpp"
#include "telemetry/telemetry.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace mnt;

namespace
{

/// Every test starts from an enabled, empty registry and leaves telemetry
/// disabled again (the registry is process-global).
class TelemetryTest : public ::testing::Test
{
protected:
    void SetUp() override
    {
        tel::set_enabled(true);
        tel::registry::instance().reset();
    }

    void TearDown() override
    {
        tel::registry::instance().reset();
        tel::set_enabled(false);
    }
};

std::uint64_t counter_value_of(const tel::run_report& report, const std::string& name)
{
    for (const auto& c : report.counters)
    {
        if (c.name == name)
        {
            return c.value;
        }
    }
    return 0;
}

const tel::span_node* child_named(const tel::span_node& parent, const std::string& name)
{
    for (const auto& child : parent.children)
    {
        if (child->name == name)
        {
            return child.get();
        }
    }
    return nullptr;
}

}  // namespace

TEST_F(TelemetryTest, StopwatchIsMonotonic)
{
    const tel::stopwatch watch;
    const auto first = watch.seconds();
    const auto second = watch.seconds();
    EXPECT_GE(first, 0.0);
    EXPECT_GE(second, first);
}

TEST_F(TelemetryTest, CounterMath)
{
    tel::counter c;
    EXPECT_EQ(c.value(), 0U);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42U);
    c.reset();
    EXPECT_EQ(c.value(), 0U);
}

TEST_F(TelemetryTest, GaugeKeepsLastValue)
{
    tel::gauge g;
    g.set(1.5);
    g.set(-3.25);
    EXPECT_DOUBLE_EQ(g.value(), -3.25);
    g.reset();
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST_F(TelemetryTest, HistogramBucketIndexBoundaries)
{
    using h = tel::histogram;
    // the [1, 2) bucket sits at zero_bucket; powers of two mark boundaries
    EXPECT_EQ(h::bucket_index(1.0), static_cast<std::size_t>(h::zero_bucket));
    EXPECT_EQ(h::bucket_index(1.999), static_cast<std::size_t>(h::zero_bucket));
    EXPECT_EQ(h::bucket_index(2.0), static_cast<std::size_t>(h::zero_bucket) + 1);
    EXPECT_EQ(h::bucket_index(0.5), static_cast<std::size_t>(h::zero_bucket) - 1);
    // non-positive and NaN land in the first bucket
    EXPECT_EQ(h::bucket_index(0.0), 0U);
    EXPECT_EQ(h::bucket_index(-1.0), 0U);
    EXPECT_EQ(h::bucket_index(std::numeric_limits<double>::quiet_NaN()), 0U);
    // out-of-grid magnitudes clamp to the first / last bucket
    EXPECT_EQ(h::bucket_index(1e-300), 0U);
    EXPECT_EQ(h::bucket_index(1e300), h::num_buckets - 1);
    EXPECT_EQ(h::bucket_index(std::numeric_limits<double>::infinity()), h::num_buckets - 1);
}

TEST_F(TelemetryTest, HistogramBucketBoundsBracketTheirValues)
{
    using h = tel::histogram;
    EXPECT_DOUBLE_EQ(h::bucket_lower(0), 0.0);
    EXPECT_DOUBLE_EQ(h::bucket_lower(static_cast<std::size_t>(h::zero_bucket)), 1.0);
    EXPECT_DOUBLE_EQ(h::bucket_upper(static_cast<std::size_t>(h::zero_bucket)), 2.0);
    EXPECT_TRUE(std::isinf(h::bucket_upper(h::num_buckets - 1)));

    for (const double value : {7.5e-10, 1e-6, 0.75, 1.0, 3.14, 1234.5})
    {
        const auto index = h::bucket_index(value);
        EXPECT_LE(h::bucket_lower(index), value) << "value " << value;
        EXPECT_LT(value, h::bucket_upper(index)) << "value " << value;
    }
}

TEST_F(TelemetryTest, HistogramRecordTracksStats)
{
    tel::histogram h;
    EXPECT_EQ(h.count(), 0U);
    EXPECT_DOUBLE_EQ(h.min(), 0.0);  // empty histogram reports 0
    EXPECT_DOUBLE_EQ(h.max(), 0.0);

    h.record(1.5);
    h.record(0.25);
    h.record(6.0);
    EXPECT_EQ(h.count(), 3U);
    EXPECT_DOUBLE_EQ(h.sum(), 7.75);
    EXPECT_DOUBLE_EQ(h.min(), 0.25);
    EXPECT_DOUBLE_EQ(h.max(), 6.0);
    EXPECT_EQ(h.bucket_count(tel::histogram::bucket_index(1.5)), 1U);
    EXPECT_EQ(h.bucket_count(tel::histogram::bucket_index(0.25)), 1U);
    EXPECT_EQ(h.bucket_count(tel::histogram::bucket_index(6.0)), 1U);

    h.reset();
    EXPECT_EQ(h.count(), 0U);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST_F(TelemetryTest, HistogramMerge)
{
    tel::histogram a;
    tel::histogram b;
    a.record(1.0);
    a.record(4.0);
    b.record(0.125);
    b.record(16.0);
    b.record(16.5);

    a.merge(b);
    EXPECT_EQ(a.count(), 5U);
    EXPECT_DOUBLE_EQ(a.sum(), 37.625);
    EXPECT_DOUBLE_EQ(a.min(), 0.125);
    EXPECT_DOUBLE_EQ(a.max(), 16.5);
    EXPECT_EQ(a.bucket_count(tel::histogram::bucket_index(16.0)), 2U);

    // merging an empty histogram must not disturb min/max
    const tel::histogram empty;
    a.merge(empty);
    EXPECT_EQ(a.count(), 5U);
    EXPECT_DOUBLE_EQ(a.min(), 0.125);
    EXPECT_DOUBLE_EQ(a.max(), 16.5);
}

TEST_F(TelemetryTest, DisabledPathRecordsNothing)
{
    tel::set_enabled(false);
    tel::count("disabled.counter", 5);
    tel::observe("disabled.histogram", 1.0);
    tel::set_gauge("disabled.gauge", 2.0);
    {
        MNT_SPAN("disabled/span");
    }
    tel::set_enabled(true);

    const auto report = tel::capture_report();
    EXPECT_EQ(counter_value_of(report, "disabled.counter"), 0U);
    ASSERT_NE(report.trace, nullptr);
    EXPECT_EQ(child_named(*report.trace, "disabled/span"), nullptr);
}

TEST_F(TelemetryTest, SpansNestAndAggregate)
{
    for (int i = 0; i < 3; ++i)
    {
        MNT_SPAN("outer");
        for (int j = 0; j < 2; ++j)
        {
            MNT_SPAN("inner");
        }
    }
    {
        MNT_SPAN("other");
    }

    const auto report = tel::capture_report();
    ASSERT_NE(report.trace, nullptr);
    const auto* outer = child_named(*report.trace, "outer");
    ASSERT_NE(outer, nullptr);
    EXPECT_EQ(outer->calls, 3U);
    EXPECT_GE(outer->seconds, 0.0);

    // same-named spans under the same parent fold into one node
    ASSERT_EQ(outer->children.size(), 1U);
    EXPECT_EQ(outer->children.front()->name, "inner");
    EXPECT_EQ(outer->children.front()->calls, 6U);

    const auto* other = child_named(*report.trace, "other");
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(other->calls, 1U);
    EXPECT_EQ(other->children.size(), 0U);
}

TEST_F(TelemetryTest, ResetKeepsInstrumentReferencesValid)
{
    auto& c = tel::registry::instance().get_counter("sticky.counter");
    c.add(7);
    tel::registry::instance().reset();
    EXPECT_EQ(c.value(), 0U);
    c.add(3);  // the cached reference still feeds the registry
    EXPECT_EQ(counter_value_of(tel::capture_report(), "sticky.counter"), 3U);
}

TEST_F(TelemetryTest, SpanOpenAcrossResetRetiresSilently)
{
    const auto open_and_reset = []
    {
        MNT_SPAN("doomed");
        tel::registry::instance().reset();
    };  // span closes after the reset: it must not resurrect itself
    open_and_reset();

    const auto report = tel::capture_report();
    ASSERT_NE(report.trace, nullptr);
    EXPECT_EQ(child_named(*report.trace, "doomed"), nullptr);
}

TEST_F(TelemetryTest, JsonReportContainsAllSections)
{
    tel::count("json.counter", 11);
    tel::set_gauge("json.gauge", 2.5);
    tel::observe("json.histogram", 1.5);
    {
        MNT_SPAN("json/outer");
        MNT_SPAN("json/inner");
    }

    const auto json = tel::report_json_string(tel::capture_report());
    EXPECT_NE(json.find("\"schema\": \"mnt-telemetry-report/2\""), std::string::npos);
    EXPECT_NE(json.find("{\"name\": \"json.counter\", \"value\": 11}"), std::string::npos);
    EXPECT_NE(json.find("{\"name\": \"json.gauge\", \"value\": 2.5}"), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"json.histogram\", \"count\": 1"), std::string::npos);
    // sparse bucket export: exactly the [1, 2) bucket is present
    EXPECT_NE(json.find("{\"lo\": 1, \"hi\": 2, \"count\": 1}"), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"json/outer\""), std::string::npos);
    EXPECT_NE(json.find("\"name\": \"json/inner\""), std::string::npos);
    // nesting: the inner span is listed inside a children array
    EXPECT_LT(json.find("\"children\": ["), json.find("\"name\": \"json/inner\""));
}

TEST_F(TelemetryTest, JsonFileRoundTrip)
{
    tel::count("file.counter", 4);
    const auto report = tel::capture_report();
    const auto path = std::filesystem::temp_directory_path() / "mnt_telemetry_test_report.json";

    tel::write_report_json_file(report, path);
    std::ifstream file{path};
    ASSERT_TRUE(file.good());
    std::ostringstream buffer;
    buffer << file.rdbuf();
    EXPECT_EQ(buffer.str(), tel::report_json_string(report));
    std::filesystem::remove(path);
}

TEST_F(TelemetryTest, TextReportListsInstruments)
{
    tel::count("text.counter", 9);
    {
        MNT_SPAN("text/span");
    }
    std::ostringstream out;
    tel::write_report_text(tel::capture_report(), out);
    const auto text = out.str();
    EXPECT_NE(text.find("text.counter"), std::string::npos);
    EXPECT_NE(text.find("text/span"), std::string::npos);
    EXPECT_NE(text.find("calls=1"), std::string::npos);
}

TEST_F(TelemetryTest, ConcurrentRecordingIsLossless)
{
    constexpr int num_threads = 4;
    constexpr int per_thread = 2500;
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    for (int t = 0; t < num_threads; ++t)
    {
        threads.emplace_back(
            []
            {
                auto& c = tel::registry::instance().get_counter("threads.counter");
                auto& h = tel::registry::instance().get_histogram("threads.histogram");
                for (int i = 0; i < per_thread; ++i)
                {
                    c.add();
                    h.record(1.0);
                    MNT_SPAN("threads/span");
                }
            });
    }
    for (auto& t : threads)
    {
        t.join();
    }

    const auto report = tel::capture_report();
    EXPECT_EQ(counter_value_of(report, "threads.counter"),
              static_cast<std::uint64_t>(num_threads) * per_thread);
    const auto* span = child_named(*report.trace, "threads/span");
    ASSERT_NE(span, nullptr);
    EXPECT_EQ(span->calls, static_cast<std::uint64_t>(num_threads) * per_thread);
}
