#include "layout/layout_utils.hpp"

#include "common/types.hpp"
#include "layout/routing.hpp"
#include "network/simulation.hpp"

#include <gtest/gtest.h>

using namespace mnt;
using namespace mnt::lyt;
using mnt::ntk::gate_type;

namespace
{

/// 2DDWave layout computing y = a AND b with an explicit wire.
gate_level_layout make_and_layout()
{
    gate_level_layout layout{"and", layout_topology::cartesian, clocking_scheme::twoddwave(), 4, 3};
    layout.place({1, 0}, gate_type::pi, "a");
    layout.place({0, 1}, gate_type::pi, "b");
    layout.place({1, 1}, gate_type::and2);
    layout.place({2, 1}, gate_type::buf);
    layout.place({3, 1}, gate_type::po, "y");
    layout.connect({1, 0}, {1, 1});
    layout.connect({0, 1}, {1, 1});
    layout.connect({1, 1}, {2, 1});
    layout.connect({2, 1}, {3, 1});
    return layout;
}

}  // namespace

TEST(LayoutUtilsTest, TopologicalTileOrder)
{
    const auto layout = make_and_layout();
    const auto order = topological_tile_order(layout);
    ASSERT_EQ(order.size(), 5u);
    // PIs first (sorted), then and, wire, po
    EXPECT_EQ(order[2], coordinate(1, 1));
    EXPECT_EQ(order[3], coordinate(2, 1));
    EXPECT_EQ(order[4], coordinate(3, 1));
}

TEST(LayoutUtilsTest, CycleDetection)
{
    // craft a bogus cyclic connection (clock-invalid, but the cycle check is
    // independent of clocking)
    gate_level_layout layout{"cycle", layout_topology::cartesian, clocking_scheme::open(), 3, 3};
    layout.place({0, 0}, gate_type::buf);
    layout.place({1, 0}, gate_type::buf);
    layout.connect({0, 0}, {1, 0});
    layout.connect({1, 0}, {0, 0});
    EXPECT_THROW(static_cast<void>(topological_tile_order(layout)), design_rule_error);
}

TEST(LayoutUtilsTest, ExtractNetworkComputesAnd)
{
    const auto layout = make_and_layout();
    const auto network = extract_network(layout);
    EXPECT_EQ(network.num_pis(), 2u);
    EXPECT_EQ(network.num_pos(), 1u);
    const auto tts = ntk::simulate_truth_tables(network);
    ASSERT_EQ(tts.size(), 1u);
    EXPECT_EQ(tts[0].count_ones(), 1u);  // AND has a single satisfying row
}

TEST(LayoutUtilsTest, ExtractNetworkPreservesNames)
{
    const auto network = extract_network(make_and_layout());
    EXPECT_TRUE(network.find_pi("a").has_value());
    EXPECT_TRUE(network.find_pi("b").has_value());
    EXPECT_EQ(network.name_of(network.po_at(0)), "y");
}

TEST(LayoutUtilsTest, ExtractNetworkRejectsIncompleteFanins)
{
    gate_level_layout layout{"bad", layout_topology::cartesian, clocking_scheme::twoddwave(), 3, 3};
    layout.place({1, 0}, gate_type::pi, "a");
    layout.place({1, 1}, gate_type::and2);  // only one fanin connected
    layout.place({2, 1}, gate_type::po, "y");
    layout.connect({1, 0}, {1, 1});
    layout.connect({1, 1}, {2, 1});
    EXPECT_THROW(static_cast<void>(extract_network(layout)), design_rule_error);
}

TEST(LayoutUtilsTest, StatisticsOfAndLayout)
{
    const auto stats = collect_layout_statistics(make_and_layout());
    EXPECT_EQ(stats.width, 4u);
    EXPECT_EQ(stats.height, 3u);
    EXPECT_EQ(stats.area, 12u);
    EXPECT_EQ(stats.num_gates, 1u);
    EXPECT_EQ(stats.num_wires, 1u);
    EXPECT_EQ(stats.num_crossings, 0u);
    EXPECT_EQ(stats.num_pis, 2u);
    EXPECT_EQ(stats.num_pos, 1u);
    EXPECT_EQ(stats.critical_path, 3u);  // pi -> and -> buf -> po
}

TEST(LayoutUtilsTest, CrossingLayoutExtractsBothNets)
{
    gate_level_layout layout{"cross", layout_topology::cartesian, clocking_scheme::twoddwave(), 5, 5};
    layout.place({2, 0}, gate_type::pi, "v");
    layout.place({2, 4}, gate_type::po, "vy");
    ASSERT_TRUE(route(layout, {2, 0}, {2, 4}));
    layout.place({0, 2}, gate_type::pi, "h");
    layout.place({4, 2}, gate_type::po, "hy");
    ASSERT_TRUE(route(layout, {0, 2}, {4, 2}));
    ASSERT_EQ(layout.num_crossings(), 1u);

    const auto network = extract_network(layout);
    const auto tts = ntk::simulate_truth_tables(network);
    ASSERT_EQ(tts.size(), 2u);
    // vy = v (variable 0, pattern "a"), hy = h (variable 1, pattern "c");
    // PO creation order depends on traversal, so match by name
    for (std::size_t i = 0; i < 2; ++i)
    {
        const auto& name = network.name_of(network.po_at(i));
        EXPECT_EQ(tts[i].to_hex(), name == "vy" ? "a" : "c") << name;
    }
}
