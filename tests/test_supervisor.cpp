#include "common/supervisor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <string>
#include <thread>
#include <vector>

using namespace mnt;
using namespace mnt::sup;

namespace
{

/// Path of the probe helper binary, injected by the build.
std::string probe()
{
    return MNT_WORKER_PROBE;
}

}  // namespace

// ----------------------------------------------------------- exit and crash

TEST(SupervisorTest, CleanExitIsOk)
{
    const auto result = run_worker({probe(), "exit", "0"});
    EXPECT_EQ(result.status, worker_status::exited);
    EXPECT_EQ(result.exit_code, 0);
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(result.reason, kill_reason::none);
    EXPECT_FALSE(result.killed_by_watchdog);
    EXPECT_EQ(classify(result), res::outcome_kind::ok);
}

TEST(SupervisorTest, NonzeroExitCodeReported)
{
    const auto result = run_worker({probe(), "exit", "3"});
    EXPECT_EQ(result.status, worker_status::exited);
    EXPECT_EQ(result.exit_code, 3);
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(classify(result), res::outcome_kind::internal_error);
}

TEST(SupervisorTest, CrashCapturedAsSignalNotException)
{
    const auto result = run_worker({probe(), "segv"});
    EXPECT_EQ(result.status, worker_status::crashed);
    EXPECT_EQ(result.signal, SIGSEGV);
    EXPECT_FALSE(result.killed_by_watchdog);
    EXPECT_EQ(classify(result), res::outcome_kind::crashed);
    EXPECT_NE(describe(result).find("signal"), std::string::npos);
}

TEST(SupervisorTest, StderrTailSurvivesTheCrash)
{
    const auto result = run_worker({probe(), "stderr-then-segv"});
    EXPECT_EQ(result.status, worker_status::crashed);
    EXPECT_NE(result.stderr_tail.find("about to crash on purpose"), std::string::npos);
}

TEST(SupervisorTest, StderrTailIsBounded)
{
    worker_limits limits{};
    limits.stderr_tail_bytes = 8;
    const auto result = run_worker({probe(), "stderr-then-segv"}, limits);
    EXPECT_LE(result.stderr_tail.size(), 8u);
}

// ------------------------------------------------------------ watchdog kills

TEST(SupervisorTest, HangEscalatesToTermination)
{
    worker_limits limits{};
    limits.hang_timeout_s = 0.2;
    limits.term_grace_s = 0.2;
    const auto result = run_worker({probe(), "spin"}, limits);
    EXPECT_EQ(result.status, worker_status::hung);
    EXPECT_EQ(result.reason, kill_reason::hang);
    EXPECT_TRUE(result.killed_by_watchdog);
    EXPECT_EQ(classify(result), res::outcome_kind::hung);
}

TEST(SupervisorTest, TermIgnoringChildGetsSigkilled)
{
    worker_limits limits{};
    limits.hang_timeout_s = 0.2;
    limits.term_grace_s = 0.2;
    const auto result = run_worker({probe(), "spin-ignore-term"}, limits);
    EXPECT_EQ(result.status, worker_status::hung);
    EXPECT_EQ(result.signal, SIGKILL);
    EXPECT_TRUE(result.killed_by_watchdog);
}

TEST(SupervisorTest, HeartbeatsKeepASlowChildAlive)
{
    worker_limits limits{};
    limits.hang_timeout_s = 0.25;
    // the child runs ~0.4 s total, well past the hang timeout, but heartbeats
    // every 50 ms — the watchdog must not fire
    const auto result = run_worker({probe(), "heartbeat", "8", "50"}, limits);
    EXPECT_TRUE(result.ok()) << describe(result);
    EXPECT_GE(result.heartbeats, 1u);
}

TEST(SupervisorTest, WallTimeoutKillsEvenAHeartbeatingChild)
{
    worker_limits limits{};
    limits.wall_timeout_s = 0.3;
    limits.term_grace_s = 0.2;
    const auto result = run_worker({probe(), "heartbeat", "200", "50"}, limits);
    EXPECT_EQ(result.reason, kill_reason::wall_timeout);
    EXPECT_TRUE(result.killed_by_watchdog);
    EXPECT_EQ(classify(result), res::outcome_kind::timeout);
}

TEST(SupervisorTest, CancelFlagTerminatesTheChild)
{
    std::atomic<bool> cancel{false};
    worker_limits limits{};
    limits.term_grace_s = 0.2;
    limits.cancel = &cancel;
    std::thread trigger{[&cancel] {
        std::this_thread::sleep_for(std::chrono::milliseconds{100});
        cancel.store(true);
    }};
    const auto result = run_worker({probe(), "spin"}, limits);
    trigger.join();
    EXPECT_EQ(result.reason, kill_reason::cancel);
    EXPECT_TRUE(result.killed_by_watchdog);
}

// ------------------------------------------------------------------ rlimits

TEST(SupervisorTest, CpuLimitContainsABusyLoop)
{
    worker_limits limits{};
    limits.cpu_limit_s = 1.0;
    const auto result = run_worker({probe(), "cpu-burn"}, limits);
    EXPECT_EQ(result.status, worker_status::crashed);
    EXPECT_TRUE(result.signal == SIGXCPU || result.signal == SIGKILL) << describe(result);
    EXPECT_FALSE(result.killed_by_watchdog);
    // SIGXCPU maps onto the timeout outcome: the job exceeded its budget
    if (result.signal == SIGXCPU)
    {
        EXPECT_EQ(classify(result), res::outcome_kind::timeout);
    }
}

// sanitizers reserve enormous shadow address space; RLIMIT_AS would kill the
// probe at startup rather than at the oversized allocation, so the OOM
// containment test only runs in plain builds
#if defined(__has_feature)
#if !__has_feature(address_sanitizer) && !__has_feature(thread_sanitizer) && !__has_feature(memory_sanitizer)
#define MNT_PROBE_SANITIZER_FREE 1
#endif
#else
#define MNT_PROBE_SANITIZER_FREE 1
#endif
#if defined(MNT_PROBE_SANITIZER_FREE) && !defined(__SANITIZE_ADDRESS__) && !defined(__SANITIZE_THREAD__)
#define MNT_PLAIN_BUILD 1
#endif

#ifdef MNT_PLAIN_BUILD
TEST(SupervisorTest, AddressSpaceLimitContainsOom)
{
    worker_limits limits{};
    limits.address_space_bytes = 256ull * 1024 * 1024;
    const auto result = run_worker({probe(), "alloc", "512"}, limits);
    // the allocation must fail inside the child (bad_alloc -> exit 42); on
    // some kernels the child instead dies on a signal — either way the parent
    // survives and the failure is contained
    if (result.status == worker_status::exited)
    {
        EXPECT_EQ(result.exit_code, 42) << describe(result);
    }
    else
    {
        EXPECT_EQ(result.status, worker_status::crashed) << describe(result);
    }
}
#endif

// ------------------------------------------------------------ spawn failure

TEST(SupervisorTest, SpawnFailureIsReportedNotThrown)
{
    const auto result = run_worker({"/nonexistent/binary/definitely-missing"});
    EXPECT_EQ(result.status, worker_status::spawn_failed);
    EXPECT_FALSE(result.error.empty());
    EXPECT_EQ(classify(result), res::outcome_kind::internal_error);
}

// -------------------------------------------------------------- child-side

TEST(SupervisorTest, HeartbeatIsANoopWithoutASupervisor)
{
    EXPECT_FALSE(supervised());
    heartbeat();  // must not crash or block
    heartbeat();
}

TEST(SupervisorTest, StatusAndReasonNamesAreStable)
{
    EXPECT_STREQ(worker_status_name(worker_status::exited), "exited");
    EXPECT_STREQ(worker_status_name(worker_status::crashed), "crashed");
    EXPECT_STREQ(worker_status_name(worker_status::hung), "hung");
    EXPECT_STREQ(worker_status_name(worker_status::spawn_failed), "spawn_failed");
    EXPECT_STREQ(kill_reason_name(kill_reason::none), "none");
    EXPECT_STREQ(kill_reason_name(kill_reason::wall_timeout), "wall_timeout");
    EXPECT_STREQ(kill_reason_name(kill_reason::hang), "hang");
    EXPECT_STREQ(kill_reason_name(kill_reason::cancel), "cancel");
}

TEST(SupervisorTest, SelfExecutableResolves)
{
    const auto self = self_executable();
    EXPECT_FALSE(self.empty());
    EXPECT_EQ(self.front(), '/');
}
