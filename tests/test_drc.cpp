#include "verification/drc.hpp"

#include "layout/gate_level_layout.hpp"
#include "layout/routing.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

using namespace mnt;
using namespace mnt::lyt;
using namespace mnt::ver;
using mnt::ntk::gate_type;

namespace
{

gate_level_layout make_valid_layout()
{
    gate_level_layout layout{"ok", layout_topology::cartesian, clocking_scheme::twoddwave(), 4, 3};
    layout.place({1, 0}, gate_type::pi, "a");
    layout.place({0, 1}, gate_type::pi, "b");
    layout.place({1, 1}, gate_type::and2);
    layout.place({2, 1}, gate_type::buf);
    layout.place({3, 1}, gate_type::po, "y");
    layout.connect({1, 0}, {1, 1});
    layout.connect({0, 1}, {1, 1});
    layout.connect({1, 1}, {2, 1});
    layout.connect({2, 1}, {3, 1});
    return layout;
}

bool mentions(const std::vector<std::string>& messages, const std::string& needle)
{
    return std::any_of(messages.cbegin(), messages.cend(),
                       [&](const std::string& m) { return m.find(needle) != std::string::npos; });
}

}  // namespace

TEST(DrcTest, ValidLayoutPasses)
{
    const auto report = gate_level_drc(make_valid_layout());
    EXPECT_TRUE(report.passed());
    EXPECT_TRUE(report.errors.empty());
}

TEST(DrcTest, MissingFaninIsAnError)
{
    auto layout = make_valid_layout();
    layout.disconnect({0, 1}, {1, 1});
    const auto report = gate_level_drc(layout);
    EXPECT_FALSE(report.passed());
    EXPECT_TRUE(mentions(report.errors, "fanins"));
}

TEST(DrcTest, ClockViolationIsAnError)
{
    gate_level_layout layout{"clk", layout_topology::cartesian, clocking_scheme::twoddwave(), 4, 4};
    layout.place({1, 1}, gate_type::pi, "a");
    layout.place({0, 1}, gate_type::po, "y");
    layout.connect({1, 1}, {0, 1});  // westward against 2DDWave
    const auto report = gate_level_drc(layout);
    EXPECT_FALSE(report.passed());
    EXPECT_TRUE(mentions(report.errors, "clocking"));
}

TEST(DrcTest, NonAdjacentConnectionIsAnError)
{
    gate_level_layout layout{"adj", layout_topology::cartesian, clocking_scheme::twoddwave(), 5, 5};
    layout.place({0, 0}, gate_type::pi, "a");
    layout.place({2, 2}, gate_type::po, "y");
    layout.connect({0, 0}, {2, 2});
    const auto report = gate_level_drc(layout);
    EXPECT_FALSE(report.passed());
    EXPECT_TRUE(mentions(report.errors, "non-adjacent"));
}

TEST(DrcTest, FanoutCapacityEnforced)
{
    gate_level_layout layout{"cap", layout_topology::cartesian, clocking_scheme::twoddwave(), 4, 4};
    layout.place({1, 0}, gate_type::pi, "a");
    layout.place({2, 0}, gate_type::buf);
    layout.place({1, 1}, gate_type::buf);
    layout.connect({1, 0}, {2, 0});
    layout.connect({1, 0}, {1, 1});  // PI drives two successors without fanout
    const auto report = gate_level_drc(layout);
    EXPECT_FALSE(report.passed());
    EXPECT_TRUE(mentions(report.errors, "successors"));
}

TEST(DrcTest, FanoutGateMayDriveTwo)
{
    gate_level_layout layout{"fo", layout_topology::cartesian, clocking_scheme::twoddwave(), 5, 5};
    layout.place({1, 0}, gate_type::pi, "a");
    layout.place({1, 1}, gate_type::fanout);
    layout.place({2, 1}, gate_type::po, "y1");
    layout.place({1, 2}, gate_type::po, "y2");
    layout.connect({1, 0}, {1, 1});
    layout.connect({1, 1}, {2, 1});
    layout.connect({1, 1}, {1, 2});
    const auto report = gate_level_drc(layout);
    EXPECT_TRUE(report.passed()) << (report.errors.empty() ? "" : report.errors.front());
}

TEST(DrcTest, CrossingAboveEmptyGroundIsAnError)
{
    gate_level_layout layout{"x", layout_topology::cartesian, clocking_scheme::twoddwave(), 4, 4};
    layout.place({1, 1, 1}, gate_type::buf);
    const auto report = gate_level_drc(layout);
    EXPECT_FALSE(report.passed());
    EXPECT_TRUE(mentions(report.errors, "ground-layer"));
}

TEST(DrcTest, UnnamedPiIsAnError)
{
    gate_level_layout layout{"pi", layout_topology::cartesian, clocking_scheme::twoddwave(), 3, 3};
    layout.place({0, 0}, gate_type::pi, "");
    const auto report = gate_level_drc(layout);
    EXPECT_FALSE(report.passed());
    EXPECT_TRUE(mentions(report.errors, "no name"));
}

TEST(DrcTest, DuplicatePoNamesAreAnError)
{
    gate_level_layout layout{"po", layout_topology::cartesian, clocking_scheme::twoddwave(), 4, 4};
    layout.place({0, 0}, gate_type::pi, "a");
    layout.place({1, 0}, gate_type::fanout);
    layout.place({2, 0}, gate_type::po, "y");
    layout.place({1, 1}, gate_type::po, "y");
    layout.connect({0, 0}, {1, 0});
    layout.connect({1, 0}, {2, 0});
    layout.connect({1, 0}, {1, 1});
    const auto report = gate_level_drc(layout);
    EXPECT_FALSE(report.passed());
    EXPECT_TRUE(mentions(report.errors, "duplicate PO"));
}

TEST(DrcTest, InteriorIoIsAWarning)
{
    gate_level_layout layout{"warn", layout_topology::cartesian, clocking_scheme::twoddwave(), 5, 5};
    layout.place({1, 1}, gate_type::pi, "a");
    layout.place({2, 1}, gate_type::po, "y");
    layout.connect({1, 1}, {2, 1});
    const auto report = gate_level_drc(layout);
    EXPECT_TRUE(report.passed());
    EXPECT_TRUE(mentions(report.warnings, "border"));
}

TEST(DrcTest, DeadOutputIsAWarning)
{
    gate_level_layout layout{"dead", layout_topology::cartesian, clocking_scheme::twoddwave(), 3, 3};
    layout.place({0, 0}, gate_type::pi, "a");
    layout.place({1, 0}, gate_type::buf);
    layout.connect({0, 0}, {1, 0});  // the wire drives nothing
    const auto report = gate_level_drc(layout);
    EXPECT_TRUE(report.passed());
    EXPECT_TRUE(mentions(report.warnings, "dead output"));
}
