#include "network/logic_network.hpp"

#include "common/types.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

using namespace mnt;
using namespace mnt::ntk;

TEST(LogicNetworkTest, EmptyNetworkHasOnlyConstants)
{
    const logic_network network{"empty"};
    EXPECT_EQ(network.size(), 2u);
    EXPECT_EQ(network.num_pis(), 0u);
    EXPECT_EQ(network.num_pos(), 0u);
    EXPECT_EQ(network.num_gates(), 0u);
    EXPECT_TRUE(network.is_constant(network.get_constant(false)));
    EXPECT_TRUE(network.is_constant(network.get_constant(true)));
    EXPECT_EQ(network.type(network.get_constant(false)), gate_type::const0);
    EXPECT_EQ(network.type(network.get_constant(true)), gate_type::const1);
    EXPECT_EQ(network.network_name(), "empty");
}

TEST(LogicNetworkTest, CreatePiAssignsNames)
{
    logic_network network;
    const auto a = network.create_pi("a");
    const auto b = network.create_pi();  // auto-name
    EXPECT_TRUE(network.is_pi(a));
    EXPECT_TRUE(network.is_pi(b));
    EXPECT_EQ(network.name_of(a), "a");
    EXPECT_EQ(network.name_of(b), "pi1");
    EXPECT_EQ(network.find_pi("a"), a);
    EXPECT_FALSE(network.find_pi("zzz").has_value());
}

TEST(LogicNetworkTest, DuplicatePiNameThrows)
{
    logic_network network;
    network.create_pi("a");
    EXPECT_THROW(network.create_pi("a"), precondition_error);
}

TEST(LogicNetworkTest, BuildSmallNetwork)
{
    logic_network network{"f"};
    const auto a = network.create_pi("a");
    const auto b = network.create_pi("b");
    const auto g = network.create_and(a, b);
    const auto n = network.create_not(g);
    const auto po = network.create_po(n, "y");

    EXPECT_EQ(network.num_gates(), 2u);  // and + inv
    EXPECT_EQ(network.num_pos(), 1u);
    EXPECT_TRUE(network.is_po(po));
    EXPECT_EQ(network.fanins(n).size(), 1u);
    EXPECT_EQ(network.fanins(n)[0], g);
    EXPECT_EQ(network.fanout_size(a), 1u);
    EXPECT_EQ(network.fanout_size(g), 1u);
}

TEST(LogicNetworkTest, FanoutCountTracksAllUsers)
{
    logic_network network;
    const auto a = network.create_pi("a");
    const auto b = network.create_pi("b");
    network.create_and(a, b);
    network.create_or(a, b);
    network.create_xor(a, a);
    EXPECT_EQ(network.fanout_size(a), 4u);  // and, or, xor (twice)
    EXPECT_EQ(network.fanout_size(b), 2u);
}

TEST(LogicNetworkTest, CreateGateGenericInterface)
{
    logic_network network;
    const auto a = network.create_pi("a");
    const auto b = network.create_pi("b");
    const auto c = network.create_pi("c");
    const std::array<logic_network::node, 3> fis{a, b, c};
    const auto m = network.create_gate(gate_type::maj3, fis);
    EXPECT_EQ(network.type(m), gate_type::maj3);
    EXPECT_EQ(network.fanins(m).size(), 3u);
}

TEST(LogicNetworkTest, CreateGateRejectsArityMismatch)
{
    logic_network network;
    const auto a = network.create_pi("a");
    const std::array<logic_network::node, 1> one{a};
    EXPECT_THROW(network.create_gate(gate_type::and2, one), precondition_error);
}

TEST(LogicNetworkTest, CreateGateRejectsSpecialTypes)
{
    logic_network network;
    EXPECT_THROW(network.create_gate(gate_type::pi, {}), precondition_error);
    EXPECT_THROW(network.create_gate(gate_type::const0, {}), precondition_error);
}

TEST(LogicNetworkTest, PoCannotDriveGates)
{
    logic_network network;
    const auto a = network.create_pi("a");
    const auto po = network.create_po(a, "y");
    EXPECT_THROW(network.create_buf(po), precondition_error);
}

TEST(LogicNetworkTest, OutOfRangeNodeThrows)
{
    logic_network network;
    EXPECT_THROW(static_cast<void>(network.type(12345)), precondition_error);
    EXPECT_THROW(static_cast<void>(network.fanins(9999)), precondition_error);
    EXPECT_THROW(static_cast<void>(network.pi_at(0)), precondition_error);
    EXPECT_THROW(static_cast<void>(network.po_at(0)), precondition_error);
}

TEST(LogicNetworkTest, TopologicalOrderCoversAllNodes)
{
    logic_network network;
    const auto a = network.create_pi("a");
    const auto b = network.create_pi("b");
    const auto g = network.create_or(a, b);
    network.create_po(g, "y");

    const auto order = network.topological_order();
    EXPECT_EQ(order.size(), network.size());
    // fanins precede users
    std::vector<bool> seen(network.size(), false);
    for (const auto n : order)
    {
        for (const auto fi : network.fanins(n))
        {
            EXPECT_TRUE(seen[fi]);
        }
        seen[n] = true;
    }
}

TEST(LogicNetworkTest, StructuralEquality)
{
    logic_network x{"x"};
    const auto a1 = x.create_pi("a");
    const auto b1 = x.create_pi("b");
    x.create_po(x.create_and(a1, b1), "y");

    logic_network y{"y"};
    const auto a2 = y.create_pi("a");
    const auto b2 = y.create_pi("b");
    y.create_po(y.create_and(a2, b2), "y");

    EXPECT_TRUE(x.structurally_equal(y));

    logic_network z{"z"};
    const auto a3 = z.create_pi("a");
    const auto b3 = z.create_pi("b");
    z.create_po(z.create_or(a3, b3), "y");
    EXPECT_FALSE(x.structurally_equal(z));
}

TEST(LogicNetworkTest, WireCountsAreSeparate)
{
    logic_network network;
    const auto a = network.create_pi("a");
    const auto f = network.create_fanout(a);
    const auto w = network.create_buf(f);
    network.create_po(w, "y1");
    network.create_po(f, "y2");
    EXPECT_EQ(network.num_wires(), 2u);
    EXPECT_EQ(network.num_gates(), 0u);
}
