#include "core/best_selection.hpp"
#include "core/catalog.hpp"
#include "core/export.hpp"
#include "core/filters.hpp"

#include "common/types.hpp"
#include "benchmarks/functions.hpp"
#include "physical_design/hexagonalization.hpp"
#include "physical_design/ortho.hpp"
#include "physical_design/portfolio.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

using namespace mnt;
using namespace mnt::cat;

namespace
{

/// Builds a small catalog: mux21 with a handful of layouts per library.
catalog make_catalog()
{
    catalog c;
    const auto network = bm::mux21();
    c.add_network("Trindade16", "2:1 MUX", network);

    // QCA ONE side: ortho baseline + portfolio results
    pd::portfolio_params params{};
    params.try_nanoplacer = false;  // keep the test fast
    params.exact_timeout_s = 1.0;
    params.input_orderings = 2;
    for (const auto& r : pd::run_cartesian_portfolio(network, params))
    {
        layout_record record{};
        record.benchmark_set = "Trindade16";
        record.benchmark_name = "2:1 MUX";
        record.library = gate_library_kind::qca_one;
        record.clocking = r.clocking;
        record.algorithm = r.algorithm;
        record.optimizations = r.optimizations;
        record.runtime = r.runtime;
        record.layout = r.layout;
        c.add_layout(std::move(record));
    }
    for (const auto& r : pd::run_hexagonal_portfolio(network, params))
    {
        layout_record record{};
        record.benchmark_set = "Trindade16";
        record.benchmark_name = "2:1 MUX";
        record.library = gate_library_kind::bestagon;
        record.clocking = r.clocking;
        record.algorithm = r.algorithm;
        record.optimizations = r.optimizations;
        record.runtime = r.runtime;
        record.layout = r.layout;
        c.add_layout(std::move(record));
    }
    return c;
}

}  // namespace

TEST(CatalogTest, NetworkRegistration)
{
    catalog c;
    c.add_network("S", "f", bm::mux21());
    EXPECT_EQ(c.num_networks(), 1u);
    const auto* n = c.find_network("S", "f");
    ASSERT_NE(n, nullptr);
    EXPECT_EQ(n->num_pis, 3u);
    EXPECT_EQ(n->num_pos, 1u);
    EXPECT_EQ(n->num_gates, 4u);
    EXPECT_EQ(c.find_network("S", "zzz"), nullptr);
    EXPECT_THROW(c.add_network("S", "f", bm::mux21()), precondition_error);
}

TEST(CatalogTest, LayoutMetricsDerivedAutomatically)
{
    catalog c;
    layout_record record{};
    record.benchmark_set = "S";
    record.benchmark_name = "f";
    record.layout = pd::ortho(bm::mux21());
    c.add_layout(std::move(record));

    const auto& r = c.layouts().front();
    EXPECT_EQ(r.area, r.layout.area());
    EXPECT_EQ(r.width, r.layout.width());
    EXPECT_GT(r.num_gates, 0u);
}

TEST(CatalogTest, GateLibraryNames)
{
    EXPECT_EQ(gate_library_name(gate_library_kind::qca_one), "QCA ONE");
    EXPECT_EQ(gate_library_from_name("bestagon"), gate_library_kind::bestagon);
    EXPECT_EQ(gate_library_from_name("QCA ONE"), gate_library_kind::qca_one);
    EXPECT_THROW(static_cast<void>(gate_library_from_name("cmos")), mnt_error);
}

TEST(FilterTest, LibraryFacet)
{
    const auto c = make_catalog();
    filter_query query{};
    query.libraries = {gate_library_kind::bestagon};
    const auto selection = apply_filter(c, query);
    EXPECT_FALSE(selection.empty());
    for (const auto* r : selection)
    {
        EXPECT_EQ(r->library, gate_library_kind::bestagon);
        EXPECT_EQ(r->clocking, "ROW");
    }
}

TEST(FilterTest, AlgorithmAndOptimizationFacets)
{
    const auto c = make_catalog();

    filter_query exact_only{};
    exact_only.algorithms = {"exact"};
    for (const auto* r : apply_filter(c, exact_only))
    {
        EXPECT_EQ(r->algorithm, "exact");
    }

    filter_query with_45{};
    with_45.required_optimizations = {"45°"};
    const auto hex_selection = apply_filter(c, with_45);
    EXPECT_FALSE(hex_selection.empty());
    for (const auto* r : hex_selection)
    {
        EXPECT_EQ(r->library, gate_library_kind::bestagon);
    }
}

TEST(FilterTest, BestOnlyKeepsOnePerLibrary)
{
    const auto c = make_catalog();
    filter_query query{};
    query.best_only = true;
    const auto selection = apply_filter(c, query);
    EXPECT_EQ(selection.size(), 2u);  // one per library
}

TEST(FilterTest, FacetCountsAreConsistent)
{
    const auto c = make_catalog();
    const auto facets = compute_facets(c);
    EXPECT_EQ(facets.per_set.at("Trindade16"), c.num_layouts());
    std::size_t by_library = 0;
    for (const auto& [name, count] : facets.per_library)
    {
        by_library += count;
    }
    EXPECT_EQ(by_library, c.num_layouts());
    EXPECT_GT(facets.per_algorithm.at("ortho"), 0u);
}

TEST(BestSelectionTest, BestBeatsOrEqualsBaseline)
{
    const auto c = make_catalog();
    for (const auto library : {gate_library_kind::qca_one, gate_library_kind::bestagon})
    {
        const auto entry = select_best(c, "Trindade16", "2:1 MUX", library);
        ASSERT_NE(entry.best, nullptr) << gate_library_name(library);
        ASSERT_NE(entry.baseline, nullptr) << gate_library_name(library);
        EXPECT_LE(entry.best->area, entry.baseline->area);
        ASSERT_TRUE(entry.delta_area_percent.has_value());
        EXPECT_LE(*entry.delta_area_percent, 0.0);
    }
}

TEST(BestSelectionTest, BaselineLabels)
{
    EXPECT_EQ(baseline_label(gate_library_kind::qca_one), "ortho");
    EXPECT_EQ(baseline_label(gate_library_kind::bestagon), "ortho, 45°");
}

TEST(BestSelectionTest, MissingFunctionYieldsNull)
{
    const auto c = make_catalog();
    const auto entry = select_best(c, "Trindade16", "nonexistent", gate_library_kind::qca_one);
    EXPECT_EQ(entry.best, nullptr);
}

TEST(ExportTest, SanitizeFilename)
{
    EXPECT_EQ(sanitize_filename("Trindade16_2:1 MUX"), "Trindade16_2_1_MUX");
    EXPECT_EQ(sanitize_filename("ortho, InOrd (SDN), 45°"), "ortho_InOrd_SDN_45");
    EXPECT_EQ(sanitize_filename("***"), "unnamed");
}

TEST(ExportTest, WritesNetworksAndLayouts)
{
    const auto c = make_catalog();
    filter_query query{};
    query.best_only = true;
    const auto selection = apply_filter(c, query);

    const auto dir = std::filesystem::temp_directory_path() / "mnt_export_test";
    std::filesystem::remove_all(dir);
    const auto report = export_selection(c, selection, dir);

    // 1 network + 2 layouts
    EXPECT_EQ(report.written.size(), 3u);
    std::size_t fgl = 0;
    std::size_t verilog = 0;
    for (const auto& p : report.written)
    {
        EXPECT_TRUE(std::filesystem::exists(p)) << p;
        fgl += p.extension() == ".fgl" ? 1 : 0;
        verilog += p.extension() == ".v" ? 1 : 0;
    }
    EXPECT_EQ(fgl, 2u);
    EXPECT_EQ(verilog, 1u);
    std::filesystem::remove_all(dir);
}

TEST(ExportTest, CellLevelExportHandlesIncompatibleLayouts)
{
    const auto c = make_catalog();
    filter_query query{};
    query.best_only = true;
    const auto selection = apply_filter(c, query);

    const auto dir = std::filesystem::temp_directory_path() / "mnt_export_cells_test";
    std::filesystem::remove_all(dir);
    export_options options{};
    options.write_networks = false;
    options.write_cell_level = true;
    const auto report = export_selection(c, selection, dir, options);

    // every selected layout either produced a cell-level file (beyond its
    // .fgl) or was skipped with a reason — nothing may fall through
    ASSERT_GE(report.written.size(), selection.size());  // the .fgl files
    const auto cell_files = report.written.size() - selection.size();
    EXPECT_EQ(cell_files + report.skipped.size(), selection.size());
    std::filesystem::remove_all(dir);
}
