#include "physical_design/input_ordering.hpp"

#include "common/types.hpp"
#include "physical_design/ortho.hpp"
#include "test_networks.hpp"
#include "verification/equivalence.hpp"

#include <gtest/gtest.h>

#include <vector>

using namespace mnt;
using namespace mnt::pd;
using namespace mnt::test;

TEST(ReorderPisTest, PermutationPreservesFunction)
{
    const auto network = mux21();
    const auto permuted = reorder_pis(network, {2, 0, 1});
    EXPECT_TRUE(ver::check_equivalence(network, permuted));
    // creation order changed
    EXPECT_EQ(permuted.name_of(permuted.pi_at(0)), "b");
    EXPECT_EQ(permuted.name_of(permuted.pi_at(1)), "s");
    EXPECT_EQ(permuted.name_of(permuted.pi_at(2)), "a");
}

TEST(ReorderPisTest, RejectsNonPermutations)
{
    const auto network = mux21();
    EXPECT_THROW(static_cast<void>(reorder_pis(network, {0, 1})), precondition_error);
    EXPECT_THROW(static_cast<void>(reorder_pis(network, {0, 0, 1})), precondition_error);
    EXPECT_THROW(static_cast<void>(reorder_pis(network, {0, 1, 5})), precondition_error);
}

TEST(InputOrderingTest, NeverWorseThanPlainOrtho)
{
    const auto network = random_network(6, 30, 3, 51);
    const auto plain = ortho(network);

    input_ordering_params params{};
    params.max_orderings = 6;
    input_ordering_stats stats{};
    const auto best = input_ordering_ortho(network, params, &stats);

    EXPECT_LE(best.area(), plain.area());  // identity ordering is included
    EXPECT_EQ(stats.orderings_tried, 6u);
    EXPECT_EQ(stats.best_area, best.area());
    EXPECT_GE(stats.worst_area, stats.best_area);
    EXPECT_TRUE(ver::check_layout_equivalence(network, best));
}

TEST(InputOrderingTest, SingleInputNetworkHandled)
{
    ntk::logic_network network{"one"};
    network.create_po(network.create_not(network.create_pi("a")), "y");
    const auto layout = input_ordering_ortho(network);
    EXPECT_TRUE(ver::check_layout_equivalence(network, layout));
}

TEST(InputOrderingTest, DeterministicPerSeed)
{
    const auto network = random_network(5, 20, 2, 53);
    input_ordering_params params{};
    params.seed = 7;
    const auto a = input_ordering_ortho(network, params);
    const auto b = input_ordering_ortho(network, params);
    EXPECT_EQ(a.area(), b.area());
    EXPECT_EQ(a.num_wires(), b.num_wires());
}
