/// \file test_regressions.cpp
/// \brief Shrunk reproducers of bugs found by the property suites and
///        fuzzers, pinned forever. The suite is data-driven: every file
///        dropped into tests/regressions/ is replayed through the oracle
///        matching its extension —
///
///            *.fgl   → check_fgl_document      (reader + write fixpoint)
///            *.v     → check_verilog_document  (reader + round-trip)
///            *.http  → check_http_byte_stream  (parser + router)
///
///        so adding a regression is: shrink, save the reproducer, done.
///        Bug-specific invariants that need more than a document get their
///        own named TESTs below.

#include "core/catalog.hpp"
#include "io/verilog_reader.hpp"
#include "network/transforms.hpp"
#include "physical_design/ortho.hpp"
#include "service/query.hpp"
#include "service/server.hpp"
#include "testing/generators.hpp"
#include "testing/oracles.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace
{

using namespace mnt;

std::filesystem::path regressions_dir()
{
#ifdef MNT_REGRESSIONS_DIR
    return std::filesystem::path{MNT_REGRESSIONS_DIR};
#else
    return std::filesystem::path{"regressions"};
#endif
}

std::string slurp(const std::filesystem::path& file)
{
    std::ifstream in{file, std::ios::binary};
    std::ostringstream out{};
    out << in.rdbuf();
    return out.str();
}

std::vector<std::filesystem::path> reproducers(const std::string& extension)
{
    std::vector<std::filesystem::path> files{};
    if (std::filesystem::exists(regressions_dir()))
    {
        for (const auto& entry : std::filesystem::directory_iterator{regressions_dir()})
        {
            if (entry.is_regular_file() && entry.path().extension() == extension)
            {
                files.push_back(entry.path());
            }
        }
    }
    std::sort(files.begin(), files.end());
    return files;
}

TEST(Regressions, FglReproducers)
{
    for (const auto& file : reproducers(".fgl"))
    {
        const auto result = pbt::check_fgl_document(slurp(file));
        EXPECT_TRUE(result.passed) << file.filename().string() << ": " << result.reason;
    }
}

TEST(Regressions, VerilogReproducers)
{
    for (const auto& file : reproducers(".v"))
    {
        const auto result = pbt::check_verilog_document(slurp(file));
        EXPECT_TRUE(result.passed) << file.filename().string() << ": " << result.reason;
    }
}

TEST(Regressions, HttpReproducers)
{
    // a one-record catalog is enough: these reproducers target the parser
    // and router, not the query semantics
    cat::catalog catalog{};
    pbt::rng random{1};
    cat::layout_record record{};
    record.benchmark_set = "Regress";
    record.benchmark_name = "f0";
    record.clocking = "2DDWave";
    record.algorithm = "ortho";
    record.layout = pd::ortho(pbt::random_network(random));
    catalog.add_layout(std::move(record));
    const svc::query_engine engine{catalog};
    svc::catalog_server server{engine};

    for (const auto& file : reproducers(".http"))
    {
        const auto result = pbt::check_http_byte_stream(server, slurp(file));
        EXPECT_TRUE(result.passed) << file.filename().string() << ": " << result.reason;
    }
}

// Shrunk from pd.ortho.slot_order: constant propagation rewrote a gate
// with two constant fanins into not(const)/buf(const) instead of folding
// it, and ortho later crashed placing a gate fed by a bare constant.
TEST(Regressions, ConstantFoldingCoversBothConstantFanins)
{
    using N = ntk::logic_network::node;
    ntk::logic_network net{"both_const"};
    const auto x0 = net.create_pi("x0");
    const auto k =
        net.create_gate(ntk::gate_type::xnor2, std::vector<N>{net.get_constant(false), net.get_constant(false)});
    net.create_po(net.create_and(x0, k), "y");

    // xnor(0,0) = 1 and and(x0, 1) = x0: everything must fold away
    EXPECT_EQ(ntk::propagate_constants(net).num_gates(), 0U);

    pd::ortho_params params{};
    params.greedy_orientation = false;
    const auto contract = pbt::check_layout_contract(net, pd::ortho(net, params));
    EXPECT_TRUE(contract.passed) << contract.reason;
}

// Shrunk from pd.npr.contract (scheme=RES): the nanoplacer computed its
// candidate-tile list once per node, but rip-up-and-reroute during fanin
// routing can move another net across a listed tile; placing a later
// candidate then threw "tile already occupied".
TEST(Regressions, NanoplacerRevalidatesStaleCandidateTiles)
{
    using N = ntk::logic_network::node;
    ntk::logic_network net{"npr_res"};
    const auto x0 = net.create_pi("x0");
    const auto x1 = net.create_pi("x1");
    const auto x2 = net.create_pi("x2");
    const auto n5 = net.create_gate(ntk::gate_type::nor2, std::vector<N>{x0, x2});
    const auto n6 = net.create_gate(ntk::gate_type::xor2, std::vector<N>{n5, x2});
    const auto n7 = net.create_gate(ntk::gate_type::nor2, std::vector<N>{x1, n6});
    const auto n8 = net.create_gate(ntk::gate_type::nor2, std::vector<N>{n5, n7});
    const auto n9 = net.create_gate(ntk::gate_type::or2, std::vector<N>{n8, n5});
    const auto n10 = net.create_gate(ntk::gate_type::and2, std::vector<N>{n5, n9});
    net.create_po(n5, "y0");
    net.create_po(n10, "y1");
    net.create_po(n9, "y2");

    pd::nanoplacer_params params{};
    params.scheme = lyt::clocking_kind::res;
    params.seed = 1349393628427396533ULL;
    params.iterations = 150;
    const auto result = pbt::check_npr_pipeline(net, params);
    EXPECT_TRUE(result.passed) << result.reason;
}

// The document-order half of primitive_document_order.v: a round-trip
// fixpoint alone cannot catch it (cone order is itself a fixpoint), so
// pin the gate creation order of the reader explicitly.
TEST(Regressions, VerilogReaderPreservesDocumentOrder)
{
    const auto network = io::read_verilog_file(regressions_dir() / "primitive_document_order.v");
    ASSERT_EQ(network.num_gates(), 3U);
    // nodes: const0, const1, x0..x3, then gates in document order
    EXPECT_EQ(network.type(6), ntk::gate_type::and2);
    EXPECT_EQ(network.type(7), ntk::gate_type::maj3);
    EXPECT_EQ(network.type(8), ntk::gate_type::lt2);

    const auto roundtrip = pbt::check_verilog_roundtrip(network);
    EXPECT_TRUE(roundtrip.passed) << roundtrip.reason;
}

// huge_content_length.http carries Content-Length: 2^64-1. The byte-stream
// oracle only proves "classified without a crash", so pin the class: the
// size check must not wrap around and report a request that can never
// complete as merely incomplete.
TEST(Regressions, HugeContentLengthIsTooLargeNotIncomplete)
{
    const auto bytes = slurp(regressions_dir() / "huge_content_length.http");
    const auto parsed = svc::parse_http_request(bytes, 1U << 20U);
    EXPECT_EQ(parsed.status, svc::http_parse_status::too_large);
}

}  // namespace
