#include "physical_design/portfolio.hpp"

#include "telemetry/report.hpp"
#include "telemetry/telemetry.hpp"
#include "test_networks.hpp"
#include "verification/equivalence.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>

using namespace mnt;
using namespace mnt::pd;
using namespace mnt::test;

namespace
{

portfolio_params fast_params()
{
    portfolio_params params{};
    params.exact_timeout_s = 2.0;
    params.nanoplacer_iterations = 200;
    params.input_orderings = 3;
    params.verify = true;  // every layout is checked against the network
    return params;
}

bool has_algorithm(const std::vector<layout_result>& results, const std::string& algo)
{
    return std::any_of(results.cbegin(), results.cend(),
                       [&](const layout_result& r) { return r.algorithm == algo; });
}

}  // namespace

TEST(PortfolioTest, CartesianPortfolioOnMux)
{
    const auto network = mux21();
    const auto results = run_cartesian_portfolio(network, fast_params());

    ASSERT_FALSE(results.empty());
    EXPECT_TRUE(has_algorithm(results, "ortho"));
    EXPECT_TRUE(has_algorithm(results, "exact"));
    EXPECT_TRUE(has_algorithm(results, "NPR"));

    // verify=true already checked equivalence; check provenance metadata
    for (const auto& r : results)
    {
        EXPECT_FALSE(r.clocking.empty());
        EXPECT_GE(r.runtime, 0.0);
        EXPECT_EQ(r.layout.layout_name(), "mux21");
    }
}

TEST(PortfolioTest, BestByAreaIsMinimal)
{
    const auto network = mux21();
    const auto results = run_cartesian_portfolio(network, fast_params());
    const auto* best = best_by_area(results);
    ASSERT_NE(best, nullptr);
    for (const auto& r : results)
    {
        EXPECT_LE(best->layout.area(), r.layout.area());
    }
}

TEST(PortfolioTest, ExactSkippedOnLargeFunctions)
{
    const auto network = random_network(5, 60, 3, 61);
    auto params = fast_params();
    params.nanoplacer_max_nodes = 10;  // also skip NPR to keep it fast
    const auto results = run_cartesian_portfolio(network, params);
    EXPECT_FALSE(has_algorithm(results, "exact"));
    EXPECT_FALSE(has_algorithm(results, "NPR"));
    EXPECT_TRUE(has_algorithm(results, "ortho"));
}

TEST(PortfolioTest, HexagonalPortfolioProducesRowLayouts)
{
    const auto network = half_adder();
    const auto results = run_hexagonal_portfolio(network, fast_params());
    ASSERT_FALSE(results.empty());
    for (const auto& r : results)
    {
        EXPECT_EQ(r.layout.topology(), lyt::layout_topology::hexagonal_even_row);
        EXPECT_EQ(r.clocking, "ROW");
    }
    // the 45° pipeline must be present
    EXPECT_TRUE(std::any_of(results.cbegin(), results.cend(),
                            [](const layout_result& r)
                            {
                                return std::find(r.optimizations.cbegin(), r.optimizations.cend(), "45°") !=
                                       r.optimizations.cend();
                            }));
}

TEST(PortfolioTest, LabelsMatchPaperNotation)
{
    layout_result r{lyt::gate_level_layout{"x", lyt::layout_topology::cartesian,
                                           lyt::clocking_scheme::twoddwave(), 2, 2},
                    "ortho",
                    {"InOrd (SDN)", "45°", "PLO"},
                    "ROW",
                    0.1};
    EXPECT_EQ(r.label(), "ortho, InOrd (SDN), 45°, PLO");
}

TEST(PortfolioTest, BestOfEmptyIsNull)
{
    EXPECT_EQ(best_by_area({}), nullptr);
}

TEST(PortfolioTest, NetworkOptimizationOption)
{
    // a redundant network: the optimizing portfolio must produce a smaller
    // (or equal) best layout, still equivalent to the ORIGINAL network
    ntk::logic_network network{"redundant"};
    const auto a = network.create_pi("a");
    const auto b = network.create_pi("b");
    const auto c = network.create_pi("c");
    const auto g1 = network.create_and(a, b);
    const auto g2 = network.create_and(a, b);  // clone
    network.create_po(network.create_or(g1, c), "y0");
    network.create_po(network.create_or(g2, c), "y1");

    auto params = fast_params();
    params.try_exact = false;
    params.try_nanoplacer = false;
    params.try_input_ordering = false;
    params.try_plo = false;

    const auto plain = run_cartesian_portfolio(network, params);
    params.optimize_network = true;
    const auto optimized = run_cartesian_portfolio(network, params);  // verify=true checks vs original

    const auto* best_plain = best_by_area(plain);
    const auto* best_optimized = best_by_area(optimized);
    ASSERT_NE(best_plain, nullptr);
    ASSERT_NE(best_optimized, nullptr);
    EXPECT_LE(best_optimized->layout.area(), best_plain->layout.area());
}

TEST(PortfolioTest, HexagonalPortfolioIncludesNpr)
{
    const auto network = half_adder();
    auto params = fast_params();
    params.try_exact = false;
    const auto results = run_hexagonal_portfolio(network, params);
    EXPECT_TRUE(has_algorithm(results, "NPR"));
    for (const auto& r : results)
    {
        EXPECT_EQ(r.layout.topology(), lyt::layout_topology::hexagonal_even_row);
    }
}

TEST(PortfolioTest, WorkerPoolIsDeterministic)
{
    // any --jobs value must produce the same layouts in the same order
    const auto network = half_adder();
    auto params = fast_params();
    params.exact_timeout_s = 1.0;

    const auto combo_of = [](const layout_result& r)
    {
        std::string combo = r.algorithm + "@" + r.clocking;
        for (const auto& opt : r.optimizations)
        {
            combo += "+" + opt;
        }
        return combo + "#" + std::to_string(r.layout.area());
    };
    const auto signature = [&](const std::vector<layout_result>& results)
    {
        std::vector<std::string> sig;
        sig.reserve(results.size());
        for (const auto& r : results)
        {
            sig.push_back(combo_of(r));
        }
        return sig;
    };

    const auto serial = run_cartesian_portfolio(network, params);
    params.jobs = 3;
    const auto parallel = run_cartesian_portfolio(network, params);
    params.jobs = 16;
    const auto oversubscribed = run_cartesian_portfolio(network, params);

    EXPECT_EQ(signature(serial), signature(parallel));
    EXPECT_EQ(signature(serial), signature(oversubscribed));
}

TEST(PortfolioTest, CachedCombinationsAreSkipped)
{
    tel::set_enabled(true);
    tel::registry::instance().reset();

    const auto network = mux21();
    auto params = fast_params();
    params.try_exact = false;
    params.try_nanoplacer = false;

    const auto full = run_cartesian_portfolio(network, params);
    ASSERT_FALSE(full.empty());

    // a cache that already holds every ortho combination: nothing to do
    params.is_cached = [](const std::string& combo) { return combo.rfind("ortho@", 0) == 0; };
    const auto cached = run_cartesian_portfolio(network, params);
    EXPECT_TRUE(cached.empty());

    const auto report = tel::capture_report();
    tel::registry::instance().reset();
    tel::set_enabled(false);

    // one hit per cached base combination (a cached base also skips its
    // PLO follow-up without a separate hit)
    std::uint64_t hits = 0;
    for (const auto& c : report.counters)
    {
        if (c.name == "portfolio.cache_hits")
        {
            hits = c.value;
        }
    }
    EXPECT_GE(hits, 1u);
}

TEST(PortfolioTest, CacheConsultedUnderWorkerPool)
{
    const auto network = mux21();
    auto params = fast_params();
    params.try_exact = false;
    params.jobs = 4;
    params.is_cached = [](const std::string&) { return true; };
    EXPECT_TRUE(run_cartesian_portfolio(network, params).empty());
    EXPECT_TRUE(run_hexagonal_portfolio(network, params).empty());
}

TEST(PortfolioTest, EmitsSpanPerAttemptedCombination)
{
    tel::set_enabled(true);
    tel::registry::instance().reset();

    const auto network = mux21();
    const auto results = run_cartesian_portfolio(network, fast_params());
    const auto report = tel::capture_report();

    tel::registry::instance().reset();
    tel::set_enabled(false);

    ASSERT_NE(report.trace, nullptr);
    const tel::span_node* portfolio_span = nullptr;
    for (const auto& child : report.trace->children)
    {
        if (child->name == "portfolio/cartesian")
        {
            portfolio_span = child.get();
        }
    }
    ASSERT_NE(portfolio_span, nullptr);
    EXPECT_EQ(portfolio_span->calls, 1U);

    // every produced layout corresponds to one "algo@clocking+opts" span
    for (const auto& r : results)
    {
        std::string combo = r.algorithm + "@" + r.clocking;
        for (const auto& opt : r.optimizations)
        {
            combo += "+" + opt;
        }
        const auto emitted =
            std::any_of(portfolio_span->children.cbegin(), portfolio_span->children.cend(),
                        [&](const auto& child) { return child->name == combo; });
        EXPECT_TRUE(emitted) << "no span for combination '" << combo << "'";
    }
}
