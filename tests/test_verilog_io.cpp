#include "io/verilog_reader.hpp"
#include "io/verilog_writer.hpp"

#include "common/types.hpp"
#include "network/network_utils.hpp"
#include "network/simulation.hpp"
#include "verification/equivalence.hpp"

#include <gtest/gtest.h>

#include <string>

using namespace mnt;
using namespace mnt::io;
using namespace mnt::ntk;

TEST(VerilogReaderTest, SimpleAssignModule)
{
    const auto network = read_verilog_string(R"(
        module top( a, b, y );
          input a, b;
          output y;
          assign y = a & b;
        endmodule
    )");
    EXPECT_EQ(network.network_name(), "top");
    EXPECT_EQ(network.num_pis(), 2u);
    EXPECT_EQ(network.num_pos(), 1u);
    const auto tts = simulate_truth_tables(network);
    EXPECT_EQ(tts[0].to_hex(), "8");
}

TEST(VerilogReaderTest, OperatorPrecedence)
{
    // ~ binds tighter than &, & tighter than ^, ^ tighter than |
    const auto network = read_verilog_string(R"(
        module f(a, b, c, y);
          input a, b, c;
          output y;
          assign y = ~a & b ^ c | a & b;
        endmodule
    )");
    const auto tts = simulate_truth_tables(network);
    // reference: for each assignment check against C++ evaluation
    for (std::uint64_t i = 0; i < 8; ++i)
    {
        const bool a = (i & 1) != 0;
        const bool b = (i & 2) != 0;
        const bool c = (i & 4) != 0;
        const bool expected = ((!a && b) != c) || (a && b);
        EXPECT_EQ(tts[0].get_bit(i), expected) << i;
    }
}

TEST(VerilogReaderTest, ParenthesesOverridePrecedence)
{
    const auto network = read_verilog_string(R"(
        module f(a, b, c, y);
          input a, b, c;
          output y;
          assign y = a & (b | c);
        endmodule
    )");
    const auto tts = simulate_truth_tables(network);
    for (std::uint64_t i = 0; i < 8; ++i)
    {
        const bool a = (i & 1) != 0;
        const bool b = (i & 2) != 0;
        const bool c = (i & 4) != 0;
        EXPECT_EQ(tts[0].get_bit(i), a && (b || c)) << i;
    }
}

TEST(VerilogReaderTest, WiresAndOutOfOrderAssignments)
{
    const auto network = read_verilog_string(R"(
        module f(a, b, y);
          input a, b;
          output y;
          wire w1, w2;
          assign y = w2;        // uses w2 before its definition
          assign w2 = ~w1;
          assign w1 = a & b;
        endmodule
    )");
    const auto tts = simulate_truth_tables(network);
    EXPECT_EQ(tts[0].to_hex(), "7");  // nand
}

TEST(VerilogReaderTest, GatePrimitives)
{
    const auto network = read_verilog_string(R"(
        module f(a, b, c, y, z);
          input a, b, c;
          output y, z;
          wire w;
          and g0(w, a, b);
          maj g1(y, a, b, c);
          not (z, w);
        endmodule
    )");
    const auto stats = collect_statistics(network);
    EXPECT_EQ(stats.per_type[static_cast<std::size_t>(gate_type::maj3)], 1u);
    const auto tts = simulate_truth_tables(network);
    EXPECT_EQ(tts[0].to_hex(), "e8");  // maj
    EXPECT_EQ(tts[1].to_hex(), "77");  // nand(a,b) over 3 vars
}

TEST(VerilogReaderTest, ConstantsInExpressions)
{
    const auto network = read_verilog_string(R"(
        module f(a, y0, y1);
          input a;
          output y0, y1;
          assign y0 = a & 1'b0;
          assign y1 = a ^ 1'b1;
        endmodule
    )");
    const auto tts = simulate_truth_tables(network);
    EXPECT_EQ(tts[0].to_hex(), "0");
    EXPECT_EQ(tts[1].to_hex(), "1");  // ~a
}

TEST(VerilogReaderTest, CommentsAreIgnored)
{
    const auto network = read_verilog_string(R"(
        // header comment
        module f(a, y); /* block
        spanning lines */ input a;
          output y;
          assign y = ~a; // trailing
        endmodule
    )");
    EXPECT_EQ(network.num_gates(), 1u);
}

TEST(VerilogReaderTest, CombinationalCycleRejected)
{
    EXPECT_THROW(static_cast<void>(read_verilog_string(R"(
        module f(a, y);
          input a;
          output y;
          wire w1, w2;
          assign w1 = w2 & a;
          assign w2 = w1 | a;
          assign y = w1;
        endmodule
    )")),
                 parse_error);
}

TEST(VerilogReaderTest, MultiplyDrivenNetRejected)
{
    EXPECT_THROW(static_cast<void>(read_verilog_string(R"(
        module f(a, y);
          input a;
          output y;
          assign y = a;
          assign y = ~a;
        endmodule
    )")),
                 parse_error);
}

TEST(VerilogReaderTest, UndrivenNetRejected)
{
    EXPECT_THROW(static_cast<void>(read_verilog_string(R"(
        module f(a, y);
          input a;
          output y;
          assign y = ghost;
        endmodule
    )")),
                 parse_error);
}

TEST(VerilogReaderTest, VectorNetsRejected)
{
    EXPECT_THROW(static_cast<void>(read_verilog_string(R"(
        module f(a, y);
          input [3:0] a;
          output y;
          assign y = a;
        endmodule
    )")),
                 parse_error);
}

TEST(VerilogReaderTest, SyntaxErrorsCarryLineNumbers)
{
    try
    {
        static_cast<void>(read_verilog_string("module f(a, y);\n  input a;\n  output y;\n  assign y = ;\nendmodule"));
        FAIL() << "expected parse_error";
    }
    catch (const parse_error& e)
    {
        EXPECT_EQ(e.line_number, 4u);
    }
}

TEST(VerilogWriterTest, AssignmentRoundTripIsEquivalent)
{
    const auto original = read_verilog_string(R"(
        module top(a, b, c, s, co);
          input a, b, c;
          output s, co;
          wire w;
          assign w = a ^ b;
          assign s = w ^ c;
          assign co = (a & b) | (a & c) | (b & c);
        endmodule
    )");
    const auto text = write_verilog_string(original);
    const auto reread = read_verilog_string(text);
    EXPECT_TRUE(ver::check_equivalence(original, reread));
}

TEST(VerilogWriterTest, PrimitiveRoundTripPreservesMaj)
{
    logic_network network{"m"};
    const auto a = network.create_pi("a");
    const auto b = network.create_pi("b");
    const auto c = network.create_pi("c");
    network.create_po(network.create_maj(a, b, c), "y");

    const auto text = write_verilog_string(network, verilog_style::primitives);
    EXPECT_NE(text.find("maj"), std::string::npos);
    const auto reread = read_verilog_string(text);
    const auto stats = collect_statistics(reread);
    EXPECT_EQ(stats.per_type[static_cast<std::size_t>(gate_type::maj3)], 1u);
    EXPECT_TRUE(ver::check_equivalence(network, reread));
}

TEST(VerilogWriterTest, AllGateTypesSurviveRoundTrip)
{
    logic_network network{"all"};
    const auto a = network.create_pi("a");
    const auto b = network.create_pi("b");
    int i = 0;
    for (const auto t : {gate_type::and2, gate_type::nand2, gate_type::or2, gate_type::nor2, gate_type::xor2,
                         gate_type::xnor2, gate_type::lt2, gate_type::gt2, gate_type::le2, gate_type::ge2})
    {
        const std::vector<logic_network::node> fis{a, b};
        network.create_po(network.create_gate(t, fis), "y" + std::to_string(i++));
    }

    for (const auto style : {verilog_style::assignments, verilog_style::primitives})
    {
        const auto reread = read_verilog_string(write_verilog_string(network, style));
        EXPECT_TRUE(ver::check_equivalence(network, reread));
    }
}

TEST(VerilogWriterTest, ConstantDriverSerialized)
{
    logic_network network{"const"};
    static_cast<void>(network.create_pi("a"));
    network.create_po(network.get_constant(true), "one");
    const auto reread = read_verilog_string(write_verilog_string(network));
    EXPECT_TRUE(ver::check_equivalence(network, reread));
}

TEST(VerilogIoTest, FileRoundTrip)
{
    logic_network network{"file_test"};
    const auto a = network.create_pi("a");
    const auto b = network.create_pi("b");
    network.create_po(network.create_xor(a, b), "y");

    const auto path = std::filesystem::temp_directory_path() / "mnt_test_file_roundtrip.v";
    write_verilog_file(network, path);
    const auto reread = read_verilog_file(path);
    EXPECT_EQ(reread.network_name(), "file_test");
    EXPECT_TRUE(ver::check_equivalence(network, reread));
    std::filesystem::remove(path);
}

TEST(VerilogIoTest, MissingFileThrows)
{
    EXPECT_THROW(static_cast<void>(read_verilog_file("/nonexistent/file.v")), mnt_error);
}

TEST(VerilogWriterTest, NumericNamesUseEscapedIdentifiers)
{
    // c17-style numeric pin names and digit-leading module names must
    // round-trip through escaped identifiers
    logic_network network{"1bitThing"};
    const auto a = network.create_pi("1");
    const auto b = network.create_pi("22b");
    network.create_po(network.create_and(a, b), "3out");

    for (const auto style : {verilog_style::assignments, verilog_style::primitives})
    {
        const auto text = write_verilog_string(network, style);
        EXPECT_NE(text.find("\\1 "), std::string::npos);
        const auto reread = read_verilog_string(text);
        EXPECT_EQ(reread.network_name(), "1bitThing");
        EXPECT_TRUE(reread.find_pi("1").has_value());
        EXPECT_TRUE(ver::check_equivalence(network, reread));
    }
}

TEST(VerilogIoTest, ConstantPrimitiveTerminals)
{
    // constants are legal primitive terminals (the writer emits them for
    // networks with constant fanins)
    const auto network = read_verilog_string(R"(
        module f(a, y);
          input a;
          output y;
          and g0(y, a, 1'b1);
        endmodule
    )");
    const auto tts = simulate_truth_tables(network);
    EXPECT_EQ(tts[0].to_hex(), "2");  // identity
}
