#include "common/taskrt/taskrt.hpp"

#include "common/resilience.hpp"
#include "common/taskrt/arena.hpp"
#include "common/taskrt/deque.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <numeric>
#include <optional>
#include <random>
#include <stdexcept>
#include <thread>
#include <vector>

using namespace mnt;

namespace
{

/// The runtime is process-global: every test starts from a clean, automatic
/// configuration (no pool, no override, no MNT_THREADS leakage).
class TaskRuntimeTest : public ::testing::Test
{
protected:
    void SetUp() override
    {
        unsetenv("MNT_THREADS");
        trt::set_thread_count(0);
        trt::shutdown();
        trt::reset_stats();
    }

    void TearDown() override
    {
        unsetenv("MNT_THREADS");
        trt::set_thread_count(0);
        trt::shutdown();
    }
};

}  // namespace

// --------------------------------------------------------------- deque units

TEST(ChaseLevDequeTest, OwnerPopsLifoThievesStealFifo)
{
    trt::chase_lev_deque<int> dq{};
    int items[4] = {0, 1, 2, 3};
    for (auto& item : items)
    {
        dq.push(&item);
    }
    EXPECT_EQ(dq.size_estimate(), 4u);

    EXPECT_EQ(dq.steal(), &items[0]);  // top = oldest
    EXPECT_EQ(dq.pop(), &items[3]);    // bottom = newest
    EXPECT_EQ(dq.steal(), &items[1]);
    EXPECT_EQ(dq.pop(), &items[2]);
    EXPECT_EQ(dq.pop(), nullptr);
    EXPECT_EQ(dq.steal(), nullptr);
}

TEST(ChaseLevDequeTest, GrowthPreservesAllElements)
{
    // initial ring capacity is 256: pushing 1000 forces two growths
    trt::chase_lev_deque<int> dq{};
    std::vector<int> items(1000);
    std::iota(items.begin(), items.end(), 0);
    for (auto& item : items)
    {
        dq.push(&item);
    }
    // steal everything: FIFO order must survive the ring swaps
    for (int expected = 0; expected < 1000; ++expected)
    {
        const auto* got = dq.steal();
        ASSERT_NE(got, nullptr);
        EXPECT_EQ(*got, expected);
    }
    EXPECT_EQ(dq.steal(), nullptr);
}

TEST(ChaseLevDequeTest, ConcurrentStealsLoseNothingDuplicateNothing)
{
    constexpr int n = 20000;
    constexpr int thieves = 3;

    trt::chase_lev_deque<int> dq{};
    std::vector<int> items(n);
    std::iota(items.begin(), items.end(), 0);
    std::vector<std::atomic<int>> taken(n);
    for (auto& t : taken)
    {
        t.store(0);
    }

    std::atomic<bool> done{false};
    std::vector<std::thread> pool;
    pool.reserve(thieves);
    for (int t = 0; t < thieves; ++t)
    {
        pool.emplace_back(
            [&]
            {
                while (!done.load(std::memory_order_acquire))
                {
                    if (auto* item = dq.steal(); item != nullptr)
                    {
                        taken[static_cast<std::size_t>(*item)].fetch_add(1);
                    }
                }
                while (auto* item = dq.steal())  // drain the leftovers
                {
                    taken[static_cast<std::size_t>(*item)].fetch_add(1);
                }
            });
    }

    // the owner interleaves pushes with occasional pops, racing the thieves
    // for the bottom element
    for (int i = 0; i < n; ++i)
    {
        dq.push(&items[static_cast<std::size_t>(i)]);
        if (i % 7 == 0)
        {
            if (auto* item = dq.pop(); item != nullptr)
            {
                taken[static_cast<std::size_t>(*item)].fetch_add(1);
            }
        }
    }
    done.store(true, std::memory_order_release);
    for (auto& t : pool)
    {
        t.join();
    }

    for (int i = 0; i < n; ++i)
    {
        EXPECT_EQ(taken[static_cast<std::size_t>(i)].load(), 1) << "item " << i;
    }
}

// --------------------------------------------------------- thread resolution

TEST_F(TaskRuntimeTest, ThreadCountPrecedence)
{
    // auto: hardware concurrency (>= 1 always)
    EXPECT_GE(trt::thread_count(), 1u);

    // MNT_THREADS beats hardware
    setenv("MNT_THREADS", "5", 1);
    trt::set_thread_count(0);  // invalidate the cached resolution
    EXPECT_EQ(trt::thread_count(), 5u);
    EXPECT_EQ(trt::resolve_auto_threads(), 5u);

    // --threads beats MNT_THREADS
    trt::set_thread_count(3);
    EXPECT_EQ(trt::thread_count(), 3u);
    EXPECT_EQ(trt::resolve_auto_threads(), 5u);  // env fallback unaffected

    // releasing the override falls back to the environment
    trt::set_thread_count(0);
    EXPECT_EQ(trt::thread_count(), 5u);

    // garbage in the environment is ignored
    setenv("MNT_THREADS", "zero", 1);
    trt::set_thread_count(0);
    EXPECT_GE(trt::thread_count(), 1u);
}

TEST_F(TaskRuntimeTest, SerialRuntimeIsNotParallel)
{
    trt::set_thread_count(1);
    EXPECT_FALSE(trt::parallel());
    trt::set_thread_count(4);
    EXPECT_TRUE(trt::parallel());
}

// ------------------------------------------------------------- parallel_for

TEST_F(TaskRuntimeTest, ParallelForCoversEveryIndexExactlyOnce)
{
    trt::set_thread_count(4);
    constexpr std::size_t n = 1000;
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits)
    {
        h.store(0);
    }
    trt::parallel_for(0, n, 1,
                      [&](const std::size_t b, const std::size_t e)
                      {
                          for (std::size_t i = b; i < e; ++i)
                          {
                              hits[i].fetch_add(1);
                          }
                      });
    for (std::size_t i = 0; i < n; ++i)
    {
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST_F(TaskRuntimeTest, SerialParallelForRunsInlineAsOneChunk)
{
    trt::set_thread_count(1);
    std::size_t calls = 0;
    std::thread::id body_thread{};
    trt::parallel_for(10, 50, 1,
                      [&](const std::size_t b, const std::size_t e)
                      {
                          ++calls;
                          body_thread = std::this_thread::get_id();
                          EXPECT_EQ(b, 10u);
                          EXPECT_EQ(e, 50u);
                      });
    EXPECT_EQ(calls, 1u);
    EXPECT_EQ(body_thread, std::this_thread::get_id());
}

TEST_F(TaskRuntimeTest, GrainBoundsChunkSize)
{
    trt::set_thread_count(4);
    std::atomic<std::size_t> min_chunk{SIZE_MAX};
    trt::parallel_for(0, 1024, 64,
                      [&](const std::size_t b, const std::size_t e)
                      {
                          auto prev = min_chunk.load();
                          while (e - b < prev && !min_chunk.compare_exchange_weak(prev, e - b))
                          {
                          }
                      });
    // every chunk (the last included) spans at least the requested grain
    EXPECT_GE(min_chunk.load(), 32u);  // 1024/64 = 16 chunks <= 4*8 cap
}

TEST_F(TaskRuntimeTest, ParallelForRethrowsFirstException)
{
    trt::set_thread_count(4);
    const auto boom = [](const std::size_t b, const std::size_t)
    {
        if (b >= 500)
        {
            throw std::runtime_error{"chunk failed"};
        }
    };
    EXPECT_THROW(trt::parallel_for(0, 1000, 1, boom), std::runtime_error);
    // the runtime survives a throwing region and stays usable
    std::atomic<int> sum{0};
    trt::parallel_for(0, 100, 1,
                      [&](const std::size_t b, const std::size_t e)
                      { sum.fetch_add(static_cast<int>(e - b)); });
    EXPECT_EQ(sum.load(), 100);
}

// ------------------------------------------------------- parallel_map_reduce

TEST_F(TaskRuntimeTest, MapReduceFoldsInSubmissionOrder)
{
    const auto run = [](const std::size_t threads)
    {
        trt::set_thread_count(threads);
        return trt::parallel_map_reduce<std::vector<std::size_t>>(
            200, {},
            [](const std::size_t i) { return std::vector<std::size_t>{i}; },
            [](std::vector<std::size_t>& acc, std::vector<std::size_t>&& v)
            { acc.insert(acc.end(), v.begin(), v.end()); });
    };

    const auto serial = run(1);
    ASSERT_EQ(serial.size(), 200u);
    for (std::size_t i = 0; i < serial.size(); ++i)
    {
        EXPECT_EQ(serial[i], i);
    }
    // the ordered fold makes the outcome thread-count invariant
    EXPECT_EQ(run(2), serial);
    EXPECT_EQ(run(8), serial);
}

TEST_F(TaskRuntimeTest, MapReduceEmptyAndSingleton)
{
    trt::set_thread_count(4);
    const auto add = [](int& acc, int&& v) { acc += v; };
    const auto none = trt::parallel_map_reduce<int>(0, 42, [](const std::size_t) { return 0; }, add);
    EXPECT_EQ(none, 42);
    const auto one =
        trt::parallel_map_reduce<int>(1, 0, [](const std::size_t i) { return static_cast<int>(i) + 7; }, add);
    EXPECT_EQ(one, 7);
}

// ------------------------------------------------------------- first_winner

TEST_F(TaskRuntimeTest, FirstWinnerPicksLowestEngagedIndex)
{
    trt::set_thread_count(4);
    // index 2 answers instantly, index 0 after a delay: 0 must still win
    const auto winner = trt::first_winner<std::size_t>(
        4,
        [](const std::size_t i, const trt::cancel_token&) -> std::optional<std::size_t>
        {
            if (i == 0)
            {
                std::this_thread::sleep_for(std::chrono::milliseconds{20});
                return i;
            }
            if (i == 2)
            {
                return i;
            }
            return std::nullopt;
        });
    ASSERT_TRUE(winner.has_value());
    EXPECT_EQ(*winner, 0u);
}

TEST_F(TaskRuntimeTest, SerialFirstWinnerShortCircuits)
{
    trt::set_thread_count(1);
    std::size_t attempts = 0;
    const auto winner = trt::first_winner<std::size_t>(
        8,
        [&](const std::size_t i, const trt::cancel_token&) -> std::optional<std::size_t>
        {
            ++attempts;
            return i == 1 ? std::optional<std::size_t>{i} : std::nullopt;
        });
    ASSERT_TRUE(winner.has_value());
    EXPECT_EQ(*winner, 1u);
    EXPECT_EQ(attempts, 2u);  // indices 0 and 1 only, like a sequential loop
}

TEST_F(TaskRuntimeTest, FirstWinnerCancelsHigherIndexedLosers)
{
    trt::set_thread_count(4);
    std::atomic<int> cancelled_observed{0};
    const auto winner = trt::first_winner<std::size_t>(
        4,
        [&](const std::size_t i, const trt::cancel_token& token) -> std::optional<std::size_t>
        {
            if (i == 0)
            {
                return i;  // wins immediately; everything above gets cancelled
            }
            // losers poll their token through the deadline_clock integration,
            // exactly like exact's per-ratio solvers do
            const auto clock = res::deadline_clock::after(5.0).with_stop(token.handle());
            while (!clock.expired())
            {
                std::this_thread::sleep_for(std::chrono::microseconds{200});
            }
            if (token.cancelled())
            {
                cancelled_observed.fetch_add(1);
            }
            return std::nullopt;
        });
    ASSERT_TRUE(winner.has_value());
    EXPECT_EQ(*winner, 0u);
    // every loser that got to run must have unwound via its token, not the
    // 5 s budget (the test would blow past its timeout otherwise)
    EXPECT_GE(cancelled_observed.load(), 0);
}

TEST_F(TaskRuntimeTest, FirstWinnerAllFailReturnsNothing)
{
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}})
    {
        trt::set_thread_count(threads);
        const auto winner = trt::first_winner<int>(
            6, [](const std::size_t, const trt::cancel_token&) -> std::optional<int>
            { return std::nullopt; });
        EXPECT_FALSE(winner.has_value());
    }
}

TEST_F(TaskRuntimeTest, CancelTokenComposesWithDeadlineClock)
{
    const trt::cancel_token token{};
    const auto clock = res::deadline_clock::after(1000.0).with_stop(token.handle());
    EXPECT_TRUE(clock.bounded());
    EXPECT_FALSE(clock.expired());
    token.cancel();
    EXPECT_TRUE(token.cancelled());
    EXPECT_TRUE(clock.expired());

    // stacking on a clock that already carries a stop flag uses the second
    // slot (portfolio stop + first_winner cancel is the deepest real chain)
    const trt::cancel_token outer{};
    const trt::cancel_token inner{};
    auto chained = res::deadline_clock::unbounded().with_stop(outer.handle()).with_stop(inner.handle());
    EXPECT_FALSE(chained.expired());
    inner.cancel();
    EXPECT_TRUE(chained.expired());
}

// ----------------------------------------------------- randomized DAG stress

TEST_F(TaskRuntimeTest, RandomizedDagStressWithCancellationRaces)
{
    trt::set_thread_count(4);
    std::mt19937_64 rng{20260808};

    for (int round = 0; round < 30; ++round)
    {
        const auto n = static_cast<std::size_t>(rng() % 24 + 2);
        // random subset of winners; the race must resolve to the minimum
        std::vector<std::size_t> succeeds;
        for (std::size_t i = 0; i < n; ++i)
        {
            if (rng() % 3 == 0)
            {
                succeeds.push_back(i);
            }
        }

        const auto winner = trt::first_winner<std::size_t>(
            n,
            [&](const std::size_t i, const trt::cancel_token& token) -> std::optional<std::size_t>
            {
                // nested parallel region inside a racing task: the help-first
                // scheduler must make progress without deadlocking
                std::atomic<int> nested{0};
                trt::parallel_for(0, 64, 8,
                                  [&](const std::size_t b, const std::size_t e)
                                  { nested.fetch_add(static_cast<int>(e - b)); });
                EXPECT_EQ(nested.load(), 64);
                if (token.cancelled())
                {
                    return std::nullopt;  // lost the race: unwind cooperatively
                }
                const auto hit = std::find(succeeds.begin(), succeeds.end(), i) != succeeds.end();
                return hit ? std::optional<std::size_t>{i} : std::nullopt;
            });

        if (succeeds.empty())
        {
            EXPECT_FALSE(winner.has_value()) << "round " << round;
        }
        else
        {
            ASSERT_TRUE(winner.has_value()) << "round " << round;
            // cancellation can only suppress indices *above* a success, so
            // the minimum success always survives and always wins
            EXPECT_EQ(*winner, succeeds.front()) << "round " << round;
        }
    }
}

TEST_F(TaskRuntimeTest, TaskGroupPropagatesFirstErrorAndAborts)
{
    trt::set_thread_count(4);
    trt::detail::task_group group{};
    for (int i = 0; i < 16; ++i)
    {
        group.run(
            [i]
            {
                if (i == 3)
                {
                    throw std::logic_error{"task 3 failed"};
                }
            });
    }
    EXPECT_THROW(group.wait(), std::logic_error);
    EXPECT_TRUE(group.aborted());
}

// -------------------------------------------------------------------- stats

TEST_F(TaskRuntimeTest, StatsCountTasksAndSurvivePoolRestarts)
{
    trt::set_thread_count(4);
    trt::reset_stats();
    std::atomic<int> sum{0};
    trt::parallel_for(0, 256, 1,
                      [&](const std::size_t b, const std::size_t e)
                      { sum.fetch_add(static_cast<int>(e - b)); });
    EXPECT_EQ(sum.load(), 256);

    auto s = trt::stats();
    EXPECT_EQ(s.workers, 3u);  // 4 compute threads = 3 pool workers + caller
    EXPECT_GT(s.tasks_executed, 0u);

    // shutting the pool down retires its totals instead of losing them
    const auto executed_before = s.tasks_executed;
    trt::shutdown();
    s = trt::stats();
    EXPECT_GE(s.tasks_executed, executed_before);

    trt::publish_telemetry();  // must not crash with or without a live pool
}

TEST_F(TaskRuntimeTest, InlineTasksAreCountedWhenSerial)
{
    trt::set_thread_count(1);
    trt::reset_stats();
    trt::detail::task_group group{};
    for (int i = 0; i < 5; ++i)
    {
        group.run([] {});
    }
    group.wait();
    EXPECT_EQ(trt::stats().tasks_inline, 5u);
}

// ------------------------------------------------------------ scratch arena

TEST(ScratchArenaTest, BumpRewindReusesMemory)
{
    trt::scratch_arena arena{1024};
    const auto m = arena.mark();
    auto* first = arena.allocate(100, 8);
    ASSERT_NE(first, nullptr);
    EXPECT_GE(arena.total_in_use(), 100u);

    arena.rewind(m);
    EXPECT_EQ(arena.total_in_use(), 0u);
    auto* again = arena.allocate(100, 8);
    EXPECT_EQ(again, first);  // same block, same offset: no new heap traffic
    EXPECT_GE(arena.high_water_bytes(), 100u);
}

TEST(ScratchArenaTest, OversizedRequestGetsDedicatedBlock)
{
    trt::scratch_arena arena{256};
    auto* big = arena.allocate(10000, 16);
    ASSERT_NE(big, nullptr);
    EXPECT_GE(arena.reserved_bytes(), 10000u);
    // the arena stays usable for normal requests afterwards
    auto* small = arena.allocate(16, 8);
    EXPECT_NE(small, nullptr);
}

TEST(ScratchArenaTest, RegionsNestLifo)
{
    trt::scratch_arena arena{1024};
    {
        trt::scratch_region outer{arena};
        static_cast<void>(arena.allocate(64, 8));
        const auto outer_use = arena.total_in_use();
        {
            trt::scratch_region inner{arena};
            static_cast<void>(arena.allocate(128, 8));
            EXPECT_GT(arena.total_in_use(), outer_use);
        }
        EXPECT_EQ(arena.total_in_use(), outer_use);
    }
    EXPECT_EQ(arena.total_in_use(), 0u);
}

TEST(ScratchArenaTest, ScratchBufferGrowsAndKeepsContents)
{
    trt::scratch_arena arena{512};  // small blocks force several growths
    trt::scratch_region region{arena};
    trt::scratch_buffer<int> buf{arena, 4};
    for (int i = 0; i < 1000; ++i)
    {
        buf.push_back(i);
    }
    ASSERT_EQ(buf.size(), 1000u);
    for (int i = 0; i < 1000; ++i)
    {
        EXPECT_EQ(buf[static_cast<std::size_t>(i)], i);
    }
    int expected = 0;
    for (const auto v : buf)  // iterator interface
    {
        EXPECT_EQ(v, expected++);
    }
}

TEST(ScratchArenaTest, ThreadLocalArenasAreIndependent)
{
    auto& mine = trt::scratch();
    const auto base = mine.total_in_use();
    std::thread other(
        [base]
        {
            auto& theirs = trt::scratch();
            trt::scratch_region region{theirs};
            static_cast<void>(theirs.allocate(4096, 16));
            EXPECT_GE(theirs.total_in_use(), 4096u);
            static_cast<void>(base);
        });
    other.join();
    EXPECT_EQ(mine.total_in_use(), base);  // untouched by the other thread
}
