/// \file test_properties_physical_design.cpp
/// \brief Property suites over the physical design stack: every layout an
///        algorithm emits must satisfy the full layout contract (DRC +
///        graph equivalence + wave agreement + synchronization), PLO must
///        never grow areas, the dense tile grid must keep its container
///        invariants under arbitrary mutation programs, and the portfolio
///        must be deterministic regardless of worker-thread count.
///
/// Failing cases shrink to minimal networks / op sequences and print a
/// one-command replay line (see src/testing/proptest.hpp).

#include "proptest_gtest.hpp"

#include "common/resilience.hpp"
#include "io/fgl_writer.hpp"
#include "io/verilog_writer.hpp"
#include "layout/clocking_scheme.hpp"
#include "physical_design/nanoplacer.hpp"
#include "physical_design/ortho.hpp"
#include "physical_design/portfolio.hpp"
#include "testing/generators.hpp"
#include "testing/oracles.hpp"
#include "testing/shrink.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace
{

using namespace mnt;

/// Reproducer rendering: structural Verilog of the specification network.
std::string show_network(const ntk::logic_network& network)
{
    return io::write_verilog_string(network, io::verilog_style::primitives);
}

pbt::property<ntk::logic_network> network_property(
    pbt::network_spec spec,
    std::function<pbt::oracle_result(const ntk::logic_network&, const res::deadline_clock&)> check)
{
    pbt::property<ntk::logic_network> prop{};
    prop.generate = [spec](pbt::rng& random) { return pbt::random_network(random, spec); };
    prop.check = std::move(check);
    prop.shrink = [](ntk::logic_network network, const std::function<bool(const ntk::logic_network&)>& still_fails)
    { return pbt::shrink_network(std::move(network), still_fails); };
    prop.show = show_network;
    return prop;
}

TEST(OrthoPipeline, LayoutContractHolds)
{
    const auto config = pbt::current_test_config("pd.ortho.contract", 200);
    MNT_RUN_PROPERTY(config, network_property({},
                                              [](const ntk::logic_network& network,
                                                 const res::deadline_clock& deadline)
                                              { return pbt::check_ortho_pipeline(network, deadline); }));
}

TEST(OrthoPipeline, ContractHoldsWithoutGreedyOrientation)
{
    // the alternative orientation policy must uphold the same contract
    const auto config = pbt::current_test_config("pd.ortho.slot_order", 200);
    pbt::network_spec spec{};
    spec.max_gates = 12;
    MNT_RUN_PROPERTY(config,
                     network_property(spec,
                                      [](const ntk::logic_network& network, const res::deadline_clock& deadline)
                                      {
                                          if (pbt::has_constant_po(network))
                                          {
                                              return pbt::oracle_result::pass();  // shrink probes may fold
                                          }
                                          pd::ortho_params params{};
                                          params.greedy_orientation = false;
                                          params.deadline = deadline;
                                          try
                                          {
                                              const auto layout = pd::ortho(network, params);
                                              return pbt::check_layout_contract(network, layout);
                                          }
                                          catch (const mnt_error& e)
                                          {
                                              return pbt::oracle_result::fail(std::string{"ortho threw: "} +
                                                                              e.what());
                                          }
                                      }));
}

TEST(NprPipeline, LayoutContractHoldsAcrossSchemes)
{
    const auto config = pbt::current_test_config("pd.npr.contract", 200);

    struct npr_case
    {
        ntk::logic_network network;
        lyt::clocking_kind scheme{lyt::clocking_kind::twoddwave};
        std::uint64_t seed{1};
    };

    pbt::property<npr_case> prop{};
    prop.generate = [](pbt::rng& random)
    {
        pbt::network_spec spec{};
        spec.max_gates = 6;  // annealing placement: keep cases small
        npr_case value{pbt::random_network(random, spec), lyt::clocking_kind::twoddwave, random.next()};
        const std::vector<lyt::clocking_kind> schemes{lyt::clocking_kind::twoddwave, lyt::clocking_kind::use,
                                                      lyt::clocking_kind::res};
        value.scheme = random.pick(schemes);
        return value;
    };
    prop.check = [](const npr_case& value, const res::deadline_clock& deadline)
    {
        pd::nanoplacer_params params{};
        params.scheme = value.scheme;
        params.seed = value.seed;
        params.iterations = 150;
        params.deadline = deadline;
        return pbt::check_npr_pipeline(value.network, params);
    };
    prop.shrink = [](npr_case value, const std::function<bool(const npr_case&)>& still_fails)
    {
        value.network = pbt::shrink_network(std::move(value.network),
                                            [&](const ntk::logic_network& candidate)
                                            {
                                                npr_case probe{candidate, value.scheme, value.seed};
                                                return still_fails(probe);
                                            });
        return value;
    };
    prop.show = [](const npr_case& value)
    {
        return "scheme=" + lyt::clocking_name(value.scheme) + " npr_seed=" + std::to_string(value.seed) + "\n" +
               show_network(value.network);
    };
    MNT_RUN_PROPERTY(config, prop);
}

TEST(PloPipeline, PreservesContractAndNeverGrowsArea)
{
    const auto config = pbt::current_test_config("pd.plo.contract", 200);
    pbt::network_spec spec{};
    spec.max_gates = 10;
    MNT_RUN_PROPERTY(config, network_property(spec,
                                              [](const ntk::logic_network& network,
                                                 const res::deadline_clock& deadline)
                                              { return pbt::check_plo_pipeline(network, deadline); }));
}

TEST(LayoutOps, ContainerInvariantsSurviveMutationPrograms)
{
    const auto config = pbt::current_test_config("pd.layout_ops", 200);
    constexpr std::uint32_t side = 6;

    pbt::property<std::vector<pbt::layout_op>> prop{};
    prop.generate = [](pbt::rng& random)
    { return pbt::random_layout_ops(random, static_cast<std::size_t>(random.range(1, 60)), side); };
    prop.check = [](const std::vector<pbt::layout_op>& ops, const res::deadline_clock&)
    { return pbt::check_layout_ops(ops, side); };
    prop.shrink =
        [](std::vector<pbt::layout_op> ops, const std::function<bool(const std::vector<pbt::layout_op>&)>& still_fails)
    { return pbt::shrink_sequence<pbt::layout_op>(std::move(ops), still_fails, 500); };
    prop.show = [](const std::vector<pbt::layout_op>& ops) { return pbt::layout_ops_to_string(ops); };
    MNT_RUN_PROPERTY(config, prop);
}

TEST(Portfolio, ResultsAreIndependentOfJobCount)
{
    // same params, jobs=1 vs jobs=4: identical layout multiset (label →
    // .fgl bytes). This is the property the nightly TSan job leans on.
    const auto config = pbt::current_test_config("pd.portfolio.jobs", 40);

    pbt::network_spec spec{};
    spec.max_gates = 5;
    spec.max_pis = 4;

    pbt::property<ntk::logic_network> prop = network_property(spec, nullptr);
    prop.check = [](const ntk::logic_network& network, const res::deadline_clock&)
    {
        pd::portfolio_params params{};
        params.try_exact = false;  // SAT search dominates runtime; not needed for parity
        params.nanoplacer_iterations = 120;
        params.input_orderings = 2;
        params.verify = false;
        params.seed = 11;

        const auto digest = [&](const std::size_t jobs)
        {
            auto p = params;
            p.jobs = jobs;
            const auto run = pd::generate_portfolio(network, pd::portfolio_flavor::cartesian, p);
            std::map<std::string, std::vector<std::string>> by_label{};
            for (const auto& result : run.results)
            {
                by_label[result.label() + "@" + result.clocking].push_back(io::write_fgl_string(result.layout));
            }
            for (auto& [label, blobs] : by_label)
            {
                std::sort(blobs.begin(), blobs.end());
            }
            return by_label;
        };

        const auto serial = digest(1);
        const auto parallel = digest(4);
        if (serial != parallel)
        {
            return pbt::oracle_result::fail("portfolio results differ between jobs=1 (" +
                                            std::to_string(serial.size()) + " labels) and jobs=4 (" +
                                            std::to_string(parallel.size()) + " labels)");
        }
        return pbt::oracle_result::pass();
    };
    MNT_RUN_PROPERTY(config, prop);
}

}  // namespace
