#include "layout/coordinates.hpp"

#include "common/types.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

using namespace mnt;
using namespace mnt::lyt;

TEST(CoordinateTest, ConstructionAndEquality)
{
    const coordinate a{1, 2};
    const coordinate b{1, 2, 0};
    const coordinate c{1, 2, 1};
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    EXPECT_EQ(c.ground(), a);
    EXPECT_EQ(a.elevated(), c);
}

TEST(CoordinateTest, OrderingIsRowMajor)
{
    EXPECT_LT(coordinate(5, 0), coordinate(0, 1));
    EXPECT_LT(coordinate(0, 1), coordinate(1, 1));
    EXPECT_LT(coordinate(1, 1, 0), coordinate(1, 1, 1));
}

TEST(CoordinateTest, ToString)
{
    EXPECT_EQ(coordinate(3, 4, 1).to_string(), "(3, 4, 1)");
}

TEST(CoordinateTest, HashDistinguishesLayers)
{
    std::unordered_set<coordinate, coordinate_hash> set;
    set.insert({1, 1, 0});
    set.insert({1, 1, 1});
    EXPECT_EQ(set.size(), 2u);
}

TEST(CoordinateTest, CartesianNeighbors)
{
    const auto ns = planar_neighbors({2, 2}, layout_topology::cartesian);
    EXPECT_EQ(ns.size(), 4u);
    EXPECT_NE(std::find(ns.cbegin(), ns.cend(), coordinate(3, 2)), ns.cend());
    EXPECT_NE(std::find(ns.cbegin(), ns.cend(), coordinate(2, 3)), ns.cend());
    EXPECT_NE(std::find(ns.cbegin(), ns.cend(), coordinate(1, 2)), ns.cend());
    EXPECT_NE(std::find(ns.cbegin(), ns.cend(), coordinate(2, 1)), ns.cend());
}

TEST(CoordinateTest, HexagonalNeighborsEvenRow)
{
    const auto ns = planar_neighbors({3, 2}, layout_topology::hexagonal_even_row);
    EXPECT_EQ(ns.size(), 6u);
    // even row: down-neighbors are (x-1, y+1) and (x, y+1)
    EXPECT_NE(std::find(ns.cbegin(), ns.cend(), coordinate(2, 3)), ns.cend());
    EXPECT_NE(std::find(ns.cbegin(), ns.cend(), coordinate(3, 3)), ns.cend());
    EXPECT_EQ(std::find(ns.cbegin(), ns.cend(), coordinate(4, 3)), ns.cend());
}

TEST(CoordinateTest, HexagonalNeighborsOddRow)
{
    const auto ns = planar_neighbors({3, 3}, layout_topology::hexagonal_even_row);
    EXPECT_EQ(ns.size(), 6u);
    // odd row: down-neighbors are (x, y+1) and (x+1, y+1)
    EXPECT_NE(std::find(ns.cbegin(), ns.cend(), coordinate(3, 4)), ns.cend());
    EXPECT_NE(std::find(ns.cbegin(), ns.cend(), coordinate(4, 4)), ns.cend());
    EXPECT_EQ(std::find(ns.cbegin(), ns.cend(), coordinate(2, 4)), ns.cend());
}

TEST(CoordinateTest, HexNeighborhoodIsSymmetric)
{
    // if b is a neighbor of a, then a must be a neighbor of b
    for (int y = 0; y < 4; ++y)
    {
        for (int x = 0; x < 4; ++x)
        {
            const coordinate a{x, y};
            for (const auto& b : planar_neighbors(a, layout_topology::hexagonal_even_row))
            {
                EXPECT_TRUE(are_adjacent(b, a, layout_topology::hexagonal_even_row))
                    << a.to_string() << " vs " << b.to_string();
            }
        }
    }
}

TEST(CoordinateTest, AdjacencyIgnoresLayer)
{
    EXPECT_TRUE(are_adjacent({1, 1, 1}, {2, 1, 0}, layout_topology::cartesian));
    EXPECT_FALSE(are_adjacent({1, 1}, {3, 1}, layout_topology::cartesian));
    EXPECT_FALSE(are_adjacent({1, 1}, {2, 2}, layout_topology::cartesian));
}

TEST(CoordinateTest, GridDistance)
{
    EXPECT_EQ(grid_distance({0, 0}, {3, 4}, layout_topology::cartesian), 7u);
    // hexagonal: diagonal movement absorbs column difference
    EXPECT_EQ(grid_distance({0, 0}, {3, 4}, layout_topology::hexagonal_even_row), 4u);
    EXPECT_EQ(grid_distance({0, 0}, {5, 2}, layout_topology::hexagonal_even_row), 5u);
}

TEST(CoordinateTest, TopologyNames)
{
    EXPECT_EQ(topology_name(layout_topology::cartesian), "cartesian");
    EXPECT_EQ(topology_from_name("hexagonal"), layout_topology::hexagonal_even_row);
    EXPECT_THROW(static_cast<void>(topology_from_name("triangular")), mnt_error);
}
