#include "service/store.hpp"

#include "benchmarks/functions.hpp"
#include "core/filters.hpp"
#include "core/json_export.hpp"
#include "io/fgl_writer.hpp"
#include "physical_design/hexagonalization.hpp"
#include "physical_design/ortho.hpp"
#include "service/hash.hpp"
#include "service/json.hpp"
#include "telemetry/eventlog.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

using namespace mnt;
using namespace mnt::svc;

namespace
{

/// A throwaway store root under the system temp directory.
class store_dir
{
public:
    explicit store_dir(const char* name) : path{std::filesystem::temp_directory_path() / name}
    {
        std::filesystem::remove_all(path);
    }

    ~store_dir()
    {
        std::error_code ec;
        std::filesystem::remove_all(path, ec);
    }

    std::filesystem::path path;
};

cat::layout_record make_record(const std::string& set, const std::string& name,
                               const cat::gate_library_kind library, const std::string& algorithm,
                               lyt::gate_level_layout layout)
{
    cat::layout_record record{};
    record.benchmark_set = set;
    record.benchmark_name = name;
    record.library = library;
    record.clocking = layout.clocking().name();
    record.algorithm = algorithm;
    record.runtime = 0.125;
    record.layout = std::move(layout);
    return record;
}

/// Facet/provenance signature of a filter result, for cross-process
/// comparison (pointers differ between catalogs, content must not).
std::vector<std::string> signature(const std::vector<const cat::layout_record*>& selection)
{
    std::vector<std::string> sig;
    sig.reserve(selection.size());
    for (const auto* r : selection)
    {
        sig.push_back(r->benchmark_set + "|" + r->benchmark_name + "|" + cat::gate_library_name(r->library) + "|" +
                      r->clocking + "|" + r->label() + "|" + std::to_string(r->area) + "|" +
                      std::to_string(r->num_wires));
    }
    return sig;
}

}  // namespace

// ----------------------------------------------------------------- json model

TEST(ServiceJsonTest, ParsesScalarsArraysObjects)
{
    const auto v = json_value::parse(R"({"a": 1, "b": [true, null, "x"], "c": {"d": -2.5}})");
    EXPECT_EQ(v.at("a").as_u64(), 1u);
    EXPECT_TRUE(v.at("b").as_array()[0].as_boolean());
    EXPECT_TRUE(v.at("b").as_array()[1].is_null());
    EXPECT_EQ(v.at("b").as_array()[2].as_string(), "x");
    EXPECT_DOUBLE_EQ(v.at("c").at("d").as_number(), -2.5);
    EXPECT_EQ(v.find("zzz"), nullptr);
}

TEST(ServiceJsonTest, RoundTripsThroughDump)
{
    const char* text = R"({"s":"q\"\\\n\u00e9","n":1.5,"i":42,"a":[1,2],"o":{"k":false}})";
    const auto v = json_value::parse(text);
    const auto again = json_value::parse(v.dump());
    EXPECT_EQ(again.at("s").as_string(), v.at("s").as_string());
    EXPECT_DOUBLE_EQ(again.at("n").as_number(), 1.5);
    EXPECT_EQ(again.at("i").as_u64(), 42u);
    EXPECT_EQ(again.dump(), v.dump());  // dump is deterministic
}

TEST(ServiceJsonTest, DecodesSurrogatePairs)
{
    const auto v = json_value::parse(R"("\ud83d\ude00")");  // 😀 U+1F600
    EXPECT_EQ(v.as_string(), "\xF0\x9F\x98\x80");
}

TEST(ServiceJsonTest, RejectsMalformedDocuments)
{
    EXPECT_THROW(static_cast<void>(json_value::parse("{")), parse_error);
    EXPECT_THROW(static_cast<void>(json_value::parse("[1,]")), parse_error);
    EXPECT_THROW(static_cast<void>(json_value::parse("{\"a\":1} trailing")), parse_error);
    EXPECT_THROW(static_cast<void>(json_value::parse("\"\\u12\"")), parse_error);
    EXPECT_THROW(static_cast<void>(json_value::parse("01")), parse_error);
}

TEST(ServiceJsonTest, CheckedAccessorsThrowOnKindMismatch)
{
    const auto v = json_value::parse(R"({"s": "x", "neg": -1, "frac": 0.5})");
    EXPECT_THROW(static_cast<void>(v.at("s").as_u64()), mnt_error);
    EXPECT_THROW(static_cast<void>(v.at("neg").as_u64()), mnt_error);
    EXPECT_THROW(static_cast<void>(v.at("frac").as_u64()), mnt_error);
    EXPECT_THROW(static_cast<void>(v.at("s").as_array()), mnt_error);
    EXPECT_THROW(static_cast<void>(v.at("missing")), mnt_error);
}

// ------------------------------------------------------------------- hashing

TEST(ContentHashTest, StableAndHexFormatted)
{
    const auto h = content_hash("hello");
    EXPECT_EQ(h.size(), 32u);
    EXPECT_EQ(h, content_hash("hello"));
    EXPECT_NE(h, content_hash("hello!"));
    for (const char c : h)
    {
        EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << c;
    }
    // known-answer: the first 128 bits of SHA-256 — part of the on-disk
    // format and of every download URL, so it must never change
    EXPECT_EQ(h, "2cf24dba5fb0a30e26e83b2ac5b9e29e");
    EXPECT_EQ(content_hash(""), "e3b0c44298fc1c149afbf4c8996fb924");
}

TEST(ContentHashTest, MatchesSha256AcrossBlockBoundaries)
{
    // exercise the padding logic around the 64-byte chunk boundary
    const std::string a(55, 'a');   // length byte still fits the first chunk
    const std::string b(56, 'a');   // padding spills into a second chunk
    const std::string c(200, 'a');  // multi-chunk
    EXPECT_EQ(content_hash(a), "9f4390f8d30c2dd92ec9f095b65e2b9a");
    EXPECT_EQ(content_hash(b), "b35439a4ac6f0948b6d6f9e3c6af0f5f");
    EXPECT_EQ(content_hash(c), "c2a908d98f5df987ade41b5fce213067");
}

// ----------------------------------------------------------------- cache keys

TEST(CacheKeyTest, EncodesProvenance)
{
    EXPECT_EQ(cache_key("Trindade16", "2:1 MUX", cat::gate_library_kind::qca_one, "NPR@USE"),
              "Trindade16/2:1 MUX|QCA ONE|NPR@USE");

    auto record = make_record("S", "f", cat::gate_library_kind::bestagon, "ortho", pd::ortho(bm::mux21()));
    record.clocking = "ROW";
    record.optimizations = {"45°", "PLO"};
    EXPECT_EQ(cache_key(record), "S/f|Bestagon|ortho@ROW+45°+PLO");
}

// ----------------------------------------------------------------- file utils

TEST(StoreFileTest, AtomicWriteRoundTrip)
{
    const store_dir dir{"mnt_store_files_test"};
    std::filesystem::create_directories(dir.path);
    const auto path = dir.path / "data.bin";
    const std::string payload{"line\n\0binary", 12};
    write_file_atomic(path, payload);
    EXPECT_EQ(read_file(path), payload);
    write_file_atomic(path, "replaced");  // overwrite is atomic too
    EXPECT_EQ(read_file(path), "replaced");
    EXPECT_THROW(static_cast<void>(read_file(dir.path / "missing")), mnt_error);
}

// --------------------------------------------------------------------- store

TEST(LayoutStoreTest, RoundTripPreservesQueryResults)
{
    const store_dir dir{"mnt_store_roundtrip_test"};
    const auto network = bm::mux21();
    const auto cartesian = pd::ortho(network);
    const auto hexagonal = pd::hexagonalization(cartesian);

    cat::catalog original;
    original.add_network("Trindade16", "2:1 MUX", network);
    {
        layout_store store{dir.path};
        EXPECT_TRUE(store.open_issues().empty());
        store.put_network("Trindade16", "2:1 MUX", network);

        auto qca = make_record("Trindade16", "2:1 MUX", cat::gate_library_kind::qca_one, "ortho", cartesian);
        auto hex = make_record("Trindade16", "2:1 MUX", cat::gate_library_kind::bestagon, "ortho", hexagonal);
        hex.optimizations = {"45°"};
        store.put_layout(qca);
        store.put_layout(hex);
        original.add_layout(qca);
        original.add_layout(hex);

        cat::failure_record failure{};
        failure.benchmark_set = "Trindade16";
        failure.benchmark_name = "2:1 MUX";
        failure.library = cat::gate_library_kind::qca_one;
        failure.combination = "NPR@USE";
        failure.kind = "timeout";
        failure.message = "deadline exceeded";
        failure.elapsed_s = 1.5;
        failure.attempts = 2;
        store.put_failure(failure);
        store.save();
    }

    // a fresh process: reopen and reload everything from disk
    layout_store reopened{dir.path};
    EXPECT_TRUE(reopened.open_issues().empty());
    EXPECT_EQ(reopened.num_networks(), 1u);
    EXPECT_EQ(reopened.num_layouts(), 2u);
    EXPECT_EQ(reopened.num_failures(), 1u);

    const auto snapshot = reopened.load();
    EXPECT_TRUE(snapshot.issues.empty());
    ASSERT_EQ(snapshot.catalog.num_layouts(), 2u);
    ASSERT_EQ(snapshot.layout_ids.size(), 2u);
    EXPECT_EQ(snapshot.catalog.num_failures(), 1u);
    EXPECT_EQ(snapshot.catalog.failures().front().kind, "timeout");

    // identical query results on every surface
    for (const auto best_only : {false, true})
    {
        for (const auto& library :
             {std::vector<cat::gate_library_kind>{}, std::vector<cat::gate_library_kind>{
                                                         cat::gate_library_kind::bestagon}})
        {
            cat::filter_query query{};
            query.best_only = best_only;
            query.libraries = library;
            EXPECT_EQ(signature(cat::apply_filter(original, query)),
                      signature(cat::apply_filter(snapshot.catalog, query)));
        }
    }

    // download ids are the blobs' content hashes
    for (std::size_t i = 0; i < snapshot.layout_ids.size(); ++i)
    {
        const auto path = reopened.blob_path(snapshot.layout_ids[i]);
        ASSERT_TRUE(path.has_value());
        const auto bytes = read_file(*path);
        EXPECT_EQ(content_hash(bytes), snapshot.layout_ids[i]);
        EXPECT_EQ(bytes, io::write_fgl_string(snapshot.catalog.layouts()[i].layout));
    }
}

TEST(LayoutStoreTest, PutLayoutIsIdempotentPerCacheKey)
{
    const store_dir dir{"mnt_store_idempotent_test"};
    layout_store store{dir.path};
    const auto record = make_record("S", "f", cat::gate_library_kind::qca_one, "ortho", pd::ortho(bm::mux21()));
    const auto first = store.put_layout(record);
    const auto second = store.put_layout(record);
    EXPECT_EQ(first, second);
    EXPECT_EQ(store.num_layouts(), 1u);
    EXPECT_TRUE(store.contains(cache_key(record)));
}

TEST(LayoutStoreTest, RepeatedFailureReplacesThePreviousRecord)
{
    const store_dir dir{"mnt_store_failure_dedupe_test"};
    layout_store store{dir.path};
    cat::failure_record failure{};
    failure.benchmark_set = "S";
    failure.benchmark_name = "f";
    failure.library = cat::gate_library_kind::qca_one;
    failure.combination = "exact@USE";
    failure.kind = "timeout";
    failure.attempts = 1;
    store.put_failure(failure);
    failure.attempts = 2;  // the rerun's retry supersedes the first record
    store.put_failure(failure);
    EXPECT_EQ(store.num_failures(), 1u);
    store.save();

    layout_store reopened{dir.path};
    const auto snapshot = reopened.load();
    ASSERT_EQ(snapshot.catalog.num_failures(), 1u);
    EXPECT_EQ(snapshot.catalog.failures().front().attempts, 2u);
}

TEST(LayoutStoreTest, CompletedMarkersPersist)
{
    const store_dir dir{"mnt_store_completed_test"};
    {
        layout_store store{dir.path};
        store.mark_completed("S/f|QCA ONE|exact@USE");
        store.mark_completed("S/f|QCA ONE|exact@USE");  // duplicate is a no-op
        store.save();
    }
    layout_store reopened{dir.path};
    EXPECT_TRUE(reopened.contains("S/f|QCA ONE|exact@USE"));
    EXPECT_FALSE(reopened.contains("S/f|QCA ONE|exact@RES"));
}

TEST(LayoutStoreTest, CorruptManifestDegradesToEmptyStore)
{
    const store_dir dir{"mnt_store_corrupt_manifest_test"};
    {
        layout_store store{dir.path};
        store.put_layout(make_record("S", "f", cat::gate_library_kind::qca_one, "ortho", pd::ortho(bm::mux21())));
        store.save();
    }
    write_file_atomic(dir.path / "manifest.json", "{\"version\": 1, \"layouts\": [ BROKEN");

    layout_store reopened{dir.path};
    ASSERT_FALSE(reopened.open_issues().empty());
    EXPECT_EQ(reopened.open_issues().front().kind, res::outcome_kind::internal_error);
    EXPECT_EQ(reopened.num_layouts(), 0u);
    const auto snapshot = reopened.load();
    EXPECT_FALSE(snapshot.issues.empty());
    EXPECT_EQ(snapshot.catalog.num_layouts(), 0u);
}

TEST(LayoutStoreTest, InvalidManifestEntryIsSkippedOthersSurvive)
{
    const store_dir dir{"mnt_store_bad_entry_test"};
    {
        layout_store store{dir.path};
        store.put_layout(make_record("S", "f", cat::gate_library_kind::qca_one, "ortho", pd::ortho(bm::mux21())));
        store.save();
    }
    // splice a structurally-valid JSON entry with missing members in front
    auto manifest = read_file(dir.path / "manifest.json");
    const auto anchor = manifest.find("\"layouts\":[");
    ASSERT_NE(anchor, std::string::npos);
    manifest.insert(anchor + std::string{"\"layouts\":["}.size(), "{\"set\":\"S\"},");
    write_file_atomic(dir.path / "manifest.json", manifest);

    layout_store reopened{dir.path};
    EXPECT_EQ(reopened.open_issues().size(), 1u);
    EXPECT_EQ(reopened.num_layouts(), 1u);  // the healthy entry survived
    const auto snapshot = reopened.load();
    EXPECT_EQ(snapshot.catalog.num_layouts(), 1u);
}

TEST(LayoutStoreTest, TruncatedBlobIsSkippedAndReported)
{
    const store_dir dir{"mnt_store_truncated_blob_test"};
    const auto cartesian = pd::ortho(bm::mux21());
    const auto hexagonal = pd::hexagonalization(cartesian);
    std::string hex_blob;
    {
        layout_store store{dir.path};
        store.put_layout(make_record("S", "f", cat::gate_library_kind::qca_one, "ortho", cartesian));
        hex_blob = store.put_layout(
            make_record("S", "f", cat::gate_library_kind::bestagon, "ortho", hexagonal));
        store.save();
    }
    // truncate the hexagonal blob
    const auto blob = dir.path / "blobs" / (hex_blob + ".fgl");
    const auto bytes = read_file(blob);
    write_file_atomic(blob, bytes.substr(0, bytes.size() / 2));

    layout_store reopened{dir.path};
    const auto snapshot = reopened.load();
    ASSERT_EQ(snapshot.issues.size(), 1u);
    EXPECT_EQ(snapshot.issues.front().kind, res::outcome_kind::internal_error);
    ASSERT_EQ(snapshot.catalog.num_layouts(), 1u);  // the intact layout loads
    EXPECT_EQ(snapshot.catalog.layouts().front().library, cat::gate_library_kind::qca_one);
}

TEST(LayoutStoreTest, CorruptBlobIsPrunedAndRegenerable)
{
    const store_dir dir{"mnt_store_regen_blob_test"};
    const auto record = make_record("S", "f", cat::gate_library_kind::qca_one, "ortho", pd::ortho(bm::mux21()));
    const auto key = cache_key(record);
    std::string blob_id;
    {
        layout_store store{dir.path};
        blob_id = store.put_layout(record);
        store.save();
    }
    // damage the blob in place: its bytes no longer match its hash
    const auto blob = dir.path / "blobs" / (blob_id + ".fgl");
    write_file_atomic(blob, "garbage");

    layout_store reopened{dir.path};
    EXPECT_TRUE(reopened.contains(key));  // the manifest still claims it ...
    const auto snapshot = reopened.load();
    ASSERT_EQ(snapshot.issues.size(), 1u);
    EXPECT_EQ(snapshot.catalog.num_layouts(), 0u);

    // ... but load() pruned the entry and deleted the bad file, so the next
    // generation run reruns the combo and rewrites the blob
    EXPECT_FALSE(reopened.contains(key));
    EXPECT_FALSE(std::filesystem::exists(blob));
    EXPECT_EQ(reopened.put_layout(record), blob_id);
    EXPECT_TRUE(std::filesystem::exists(blob));
    reopened.save();

    layout_store repaired{dir.path};
    const auto healthy = repaired.load();
    EXPECT_TRUE(healthy.issues.empty());
    ASSERT_EQ(healthy.catalog.num_layouts(), 1u);
    EXPECT_EQ(read_file(blob), io::write_fgl_string(record.layout));
}

TEST(LayoutStoreTest, ManifestWithBadVersionFieldDegradesToEmptyStore)
{
    const store_dir dir{"mnt_store_bad_version_test"};
    for (const char* manifest : {"{\"layouts\": []}",               // version missing
                                 "{\"version\": \"two\"}",         // version not a number
                                 "{\"version\": 2, \"layouts\""})  // truncated document
    {
        std::filesystem::create_directories(dir.path / "blobs");
        write_file_atomic(dir.path / "manifest.json", manifest);
        layout_store store{dir.path};  // must not throw
        ASSERT_FALSE(store.open_issues().empty()) << manifest;
        EXPECT_EQ(store.open_issues().front().kind, res::outcome_kind::internal_error);
        EXPECT_EQ(store.num_layouts(), 0u);
    }
}

TEST(LayoutStoreTest, OlderManifestVersionLoadsAsEmptyStore)
{
    const store_dir dir{"mnt_store_old_version_test"};
    std::filesystem::create_directories(dir.path / "blobs");
    // a version-1 store addressed blobs by 64-bit FNV-1a; it cannot be
    // verified under the current format, so it is reported and rebuilt
    write_file_atomic(dir.path / "manifest.json", "{\"version\": 1, \"layouts\": []}");
    layout_store store{dir.path};
    ASSERT_FALSE(store.open_issues().empty());
    EXPECT_NE(store.open_issues().front().message.find("predates"), std::string::npos);
    EXPECT_EQ(store.num_layouts(), 0u);
}

TEST(LayoutStoreTest, MissingBlobIsSkippedAndReported)
{
    const store_dir dir{"mnt_store_missing_blob_test"};
    std::string blob_id;
    {
        layout_store store{dir.path};
        blob_id =
            store.put_layout(make_record("S", "f", cat::gate_library_kind::qca_one, "ortho", pd::ortho(bm::mux21())));
        store.save();
    }
    std::filesystem::remove(dir.path / "blobs" / (blob_id + ".fgl"));

    layout_store reopened{dir.path};
    const auto snapshot = reopened.load();
    EXPECT_EQ(snapshot.catalog.num_layouts(), 0u);
    ASSERT_EQ(snapshot.issues.size(), 1u);
    EXPECT_EQ(snapshot.issues.front().label, cache_key("S", "f", cat::gate_library_kind::qca_one, "ortho@2DDWave"));
}

TEST(LayoutStoreTest, NewerManifestVersionRefusesToOpen)
{
    const store_dir dir{"mnt_store_version_test"};
    std::filesystem::create_directories(dir.path / "blobs");
    write_file_atomic(dir.path / "manifest.json", "{\"version\": 999}");
    EXPECT_THROW((layout_store{dir.path}), mnt_error);
}

TEST(LayoutStoreTest, BlobPathRejectsNonHexIds)
{
    const store_dir dir{"mnt_store_traversal_test"};
    const layout_store store{dir.path};
    EXPECT_FALSE(store.blob_path("../manifest").has_value());
    EXPECT_FALSE(store.blob_path("ABCDEF0123456789").has_value());  // upper case is not an id
    EXPECT_FALSE(store.blob_path("0123456789abcdef").has_value());  // hex but absent
}

// ----------------------------------------------- durability and shard merge

TEST(LayoutStoreTest, RemoveFailureDropsExactlyTheMatchingRecord)
{
    const store_dir dir{"mnt_store_remove_failure_test"};
    layout_store store{dir.path};
    cat::failure_record failure{};
    failure.benchmark_set = "S";
    failure.benchmark_name = "f";
    failure.library = cat::gate_library_kind::qca_one;
    failure.combination = "(worker)";
    failure.kind = "crashed";
    store.put_failure(failure);
    failure.combination = "exact@USE";
    store.put_failure(failure);
    ASSERT_EQ(store.num_failures(), 2u);

    EXPECT_TRUE(store.remove_failure("S", "f", "QCA ONE", "(worker)"));
    EXPECT_EQ(store.num_failures(), 1u);
    EXPECT_FALSE(store.remove_failure("S", "f", "QCA ONE", "(worker)"));  // already gone
    EXPECT_FALSE(store.remove_failure("S", "f", "Bestagon", "exact@USE"));  // wrong library
    EXPECT_EQ(store.num_failures(), 1u);
}

TEST(LayoutStoreTest, MergeManifestFileFoldsAShardAndDeduplicates)
{
    const store_dir dir{"mnt_store_merge_test"};
    const auto network = bm::mux21();
    const auto cartesian = pd::ortho(network);

    layout_store main_store{dir.path};
    main_store.put_network("S", "f", network);

    // a worker's shard: same root (shared blobs), separate manifest
    const std::filesystem::path shard_file =
        std::filesystem::path{layout_store::shard_dir_name} / "job-test.json";
    {
        layout_store shard{dir.path, shard_file};
        shard.put_network("S", "f", network);  // duplicate of the main store's
        shard.put_layout(make_record("S", "f", cat::gate_library_kind::qca_one, "ortho", cartesian));
        shard.mark_completed("S/f|QCA ONE|exact@USE");
        cat::failure_record failure{};
        failure.benchmark_set = "S";
        failure.benchmark_name = "f";
        failure.library = cat::gate_library_kind::qca_one;
        failure.combination = "NPR@USE";
        failure.kind = "timeout";
        shard.put_failure(failure);
        shard.save();
    }

    const auto stats = main_store.merge_manifest_file(dir.path / shard_file);
    EXPECT_EQ(stats.networks, 0u);  // deduplicated against the main store
    EXPECT_EQ(stats.layouts, 1u);
    EXPECT_EQ(stats.failures, 1u);
    EXPECT_EQ(stats.completed, 1u);
    EXPECT_EQ(stats.blob_ids.size(), 1u);
    EXPECT_EQ(main_store.num_layouts(), 1u);
    EXPECT_TRUE(main_store.contains("S/f|QCA ONE|exact@USE"));

    // merging the same shard again adds nothing
    const auto again = main_store.merge_manifest_file(dir.path / shard_file);
    EXPECT_EQ(again.layouts, 0u);
    EXPECT_EQ(again.completed, 0u);
    EXPECT_EQ(main_store.num_layouts(), 1u);
    EXPECT_EQ(main_store.num_failures(), 1u);  // failure replaced, not duplicated

    // the merged state persists and reloads cleanly
    main_store.save();
    layout_store reopened{dir.path};
    EXPECT_EQ(reopened.num_layouts(), 1u);
    EXPECT_EQ(reopened.num_failures(), 1u);
    EXPECT_TRUE(reopened.load().issues.empty());
}

TEST(LayoutStoreTest, MergeManifestFileRejectsMissingOrForeignFiles)
{
    const store_dir dir{"mnt_store_merge_reject_test"};
    layout_store store{dir.path};
    EXPECT_THROW(static_cast<void>(store.merge_manifest_file(dir.path / "nope.json")), mnt_error);

    write_file_atomic(dir.path / "bad.json", "not json");
    EXPECT_THROW(static_cast<void>(store.merge_manifest_file(dir.path / "bad.json")), mnt_error);

    write_file_atomic(dir.path / "old.json", "{\"version\": 1}");
    EXPECT_THROW(static_cast<void>(store.merge_manifest_file(dir.path / "old.json")), mnt_error);
}

TEST(LayoutStoreTest, ManifestBytesAreIndependentOfIngestOrder)
{
    const store_dir dir_a{"mnt_store_order_a_test"};
    const store_dir dir_b{"mnt_store_order_b_test"};
    const auto network = bm::mux21();
    const auto cartesian = pd::ortho(network);
    const auto hexagonal = pd::hexagonalization(cartesian);
    const auto qca = make_record("S", "f", cat::gate_library_kind::qca_one, "ortho", cartesian);
    const auto hex = make_record("S", "f", cat::gate_library_kind::bestagon, "ortho", hexagonal);

    {
        layout_store store{dir_a.path};
        store.put_network("S", "f", network);
        store.put_layout(qca);
        store.put_layout(hex);
        store.mark_completed("S/f|QCA ONE|exact@USE");
        store.mark_completed("S/f|Bestagon|exact@ROW");
        store.save();
    }
    {
        // same content, reverse ingest order
        layout_store store{dir_b.path};
        store.mark_completed("S/f|Bestagon|exact@ROW");
        store.mark_completed("S/f|QCA ONE|exact@USE");
        store.put_layout(hex);
        store.put_layout(qca);
        store.put_network("S", "f", network);
        store.save();
    }
    EXPECT_EQ(read_file(dir_a.path / "manifest.json"), read_file(dir_b.path / "manifest.json"));
}

TEST(LayoutStoreTest, StaleTempFilesOfDeadWritersArePruned)
{
    const store_dir dir{"mnt_store_stale_temp_test"};
    std::filesystem::create_directories(dir.path / "blobs");
    // pid 1 is not ours to signal -> kill(1, 0) fails with EPERM, so the file
    // is treated as live and kept; a wildly out-of-range pid is surely dead
    write_file_atomic(dir.path / "manifest.json", "{\"version\": 2}");
    const auto dead = dir.path / "blobs" / "deadbeef.fgl.tmp-999999999";
    {
        std::ofstream out{dead};
        out << "partial";
    }
    layout_store store{dir.path};
    EXPECT_FALSE(std::filesystem::exists(dead));
}

TEST(LayoutStoreTest, UnreadableManifestLogsAStructuredEvent)
{
    const store_dir dir{"mnt_store_manifest_event_test"};
    std::filesystem::create_directories(dir.path / "blobs");
    write_file_atomic(dir.path / "manifest.json", "{broken");

    auto& log = tel::event_log::instance();
    log.clear();
    layout_store store{dir.path};
    EXPECT_EQ(store.num_layouts(), 0u);

    bool found = false;
    for (const auto& record : log.snapshot())
    {
        if (record.component == "store" && record.severity == tel::log_severity::error &&
            record.message.find("unreadable") != std::string::npos)
        {
            found = true;
            // the event must carry the offending path for the operator
            bool has_path = false;
            for (const auto& [key, value] : record.fields)
            {
                has_path |= key == "path" && value.find("manifest.json") != std::string::npos;
            }
            EXPECT_TRUE(has_path);
        }
    }
    EXPECT_TRUE(found);
}

TEST(LayoutStoreTest, VersionSkewLogsWarnAndErrorEvents)
{
    auto& log = tel::event_log::instance();

    const store_dir old_dir{"mnt_store_event_old_test"};
    std::filesystem::create_directories(old_dir.path / "blobs");
    write_file_atomic(old_dir.path / "manifest.json", "{\"version\": 1}");
    log.clear();
    layout_store old_store{old_dir.path};
    bool warned = false;
    for (const auto& record : log.snapshot())
    {
        warned |= record.component == "store" && record.severity == tel::log_severity::warn &&
                  record.message.find("predates") != std::string::npos;
    }
    EXPECT_TRUE(warned);

    const store_dir new_dir{"mnt_store_event_new_test"};
    std::filesystem::create_directories(new_dir.path / "blobs");
    write_file_atomic(new_dir.path / "manifest.json", "{\"version\": 999}");
    log.clear();
    EXPECT_THROW((layout_store{new_dir.path}), mnt_error);
    bool errored = false;
    for (const auto& record : log.snapshot())
    {
        errored |= record.component == "store" && record.severity == tel::log_severity::error &&
                   record.message.find("newer") != std::string::npos;
    }
    EXPECT_TRUE(errored);
}
