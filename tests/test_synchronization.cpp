#include "verification/synchronization.hpp"

#include "physical_design/ortho.hpp"
#include "test_networks.hpp"
#include "verification/wave_simulation.hpp"

#include <gtest/gtest.h>

#include <random>

using namespace mnt;
using namespace mnt::ver;
using namespace mnt::test;
using mnt::ntk::gate_type;

namespace
{

/// Balanced AND: both inputs one tick from the gate.
lyt::gate_level_layout balanced_and()
{
    lyt::gate_level_layout layout{"bal", lyt::layout_topology::cartesian, lyt::clocking_scheme::twoddwave(), 4, 3};
    layout.place({1, 0}, gate_type::pi, "a");
    layout.place({0, 1}, gate_type::pi, "b");
    layout.place({1, 1}, gate_type::and2);
    layout.place({2, 1}, gate_type::po, "y");
    layout.connect({1, 0}, {1, 1});
    layout.connect({0, 1}, {1, 1});
    layout.connect({1, 1}, {2, 1});
    return layout;
}

/// Skewed AND: input a arrives after 1 tick, input b after 5.
lyt::gate_level_layout skewed_and()
{
    lyt::gate_level_layout layout{"skew", lyt::layout_topology::cartesian, lyt::clocking_scheme::twoddwave(), 7, 2};
    layout.place({5, 0}, gate_type::pi, "a");
    layout.place({0, 1}, gate_type::pi, "b");
    for (int x = 1; x <= 4; ++x)
    {
        layout.place({x, 1}, gate_type::buf);
    }
    for (int x = 0; x <= 3; ++x)
    {
        layout.connect({x, 1}, {x + 1, 1});
    }
    layout.place({5, 1}, gate_type::and2);
    layout.connect({5, 0}, {5, 1});
    layout.connect({4, 1}, {5, 1});
    layout.place({6, 1}, gate_type::po, "y");
    layout.connect({5, 1}, {6, 1});
    return layout;
}

}  // namespace

TEST(SynchronizationTest, BalancedLayoutHasNoSkew)
{
    const auto report = analyze_synchronization(balanced_and());
    EXPECT_TRUE(report.full_rate_streamable());
    EXPECT_EQ(report.max_skew, 0u);
    EXPECT_TRUE(report.violations.empty());
    EXPECT_DOUBLE_EQ(report.relative_throughput(), 1.0);
    EXPECT_EQ(report.max_po_arrival, 2u);  // and (+1) -> po (+1) after the PI
}

TEST(SynchronizationTest, SkewedLayoutReported)
{
    const auto report = analyze_synchronization(skewed_and());
    EXPECT_FALSE(report.full_rate_streamable());
    EXPECT_EQ(report.max_skew, 4u);
    ASSERT_EQ(report.violations.size(), 1u);
    EXPECT_EQ(report.violations[0].tile, lyt::coordinate(5, 1));
    EXPECT_EQ(report.violations[0].min_arrival, 1u);
    EXPECT_EQ(report.violations[0].max_arrival, 5u);
    EXPECT_LT(report.relative_throughput(), 1.0);
}

TEST(SynchronizationTest, PredictsStreamability)
{
    // the analyzer's verdict must agree with actual full-rate streaming
    using factory = lyt::gate_level_layout (*)();
    for (const factory make : {factory{&balanced_and}, factory{&skewed_and}})
    {
        const auto layout = make();
        const auto report = analyze_synchronization(layout);

        std::vector<std::vector<std::uint64_t>> frames;
        std::vector<std::vector<std::uint64_t>> expected(1);
        std::mt19937_64 rng{9};
        for (int f = 0; f < 12; ++f)
        {
            const auto a = rng();
            const auto b = rng();
            frames.push_back({a, b});
            expected[0].push_back(a & b);
        }
        stream_options options{};
        options.cycles_per_frame = 1;
        const auto stream = wave_stream_simulate(layout, frames, expected, options);
        EXPECT_EQ(report.full_rate_streamable(), stream.aligned) << layout.layout_name();
    }
}

TEST(SynchronizationTest, OrthoLayoutsAreGenerallySkewed)
{
    // ortho makes no balancing effort: reconverging paths from PIs at
    // different diagonal depths are skewed (why SDNs exist)
    const auto layout = pd::ortho(mux21());
    const auto report = analyze_synchronization(layout);
    EXPECT_GT(report.max_po_arrival, 0u);
    EXPECT_FALSE(report.violations.empty());
}

TEST(SynchronizationTest, ViolationsSortedBySkew)
{
    const auto layout = pd::ortho(random_network(5, 30, 3, 88));
    const auto report = analyze_synchronization(layout);
    for (std::size_t i = 1; i < report.violations.size(); ++i)
    {
        EXPECT_GE(report.violations[i - 1].skew(), report.violations[i].skew());
    }
    if (!report.violations.empty())
    {
        EXPECT_EQ(report.max_skew, report.violations.front().skew());
    }
}
