#include "layout/net_surgery.hpp"

#include "layout/layout_utils.hpp"
#include "physical_design/ortho.hpp"
#include "test_networks.hpp"
#include "verification/drc.hpp"
#include "verification/equivalence.hpp"

#include <gtest/gtest.h>

using namespace mnt;
using namespace mnt::lyt;
using namespace mnt::test;
using mnt::ntk::gate_type;

namespace
{

/// pi -> (wires) -> po on 2DDWave
gate_level_layout make_wire_layout()
{
    gate_level_layout layout{"w", layout_topology::cartesian, clocking_scheme::twoddwave(), 6, 6};
    layout.place({0, 0}, gate_type::pi, "a");
    layout.place({4, 2}, gate_type::po, "y");
    net_surgeon surgeon{layout};
    if (!surgeon.route_shortest({0, 0}, {4, 2}).has_value())
    {
        throw mnt_error{"route failed"};
    }
    return layout;
}

}  // namespace

TEST(NetSurgeryTest, TraceFindsFullChain)
{
    const auto layout = make_wire_layout();
    const net_surgeon surgeon{const_cast<gate_level_layout&>(layout)};
    const auto conn = surgeon.trace_incoming({4, 2}, 0);
    EXPECT_EQ(conn.src, coordinate(0, 0));
    EXPECT_EQ(conn.dst, coordinate(4, 2));
    EXPECT_EQ(conn.chain.size(), 5u);
}

TEST(NetSurgeryTest, RipRemovesChainAndRestoreRebuildsIt)
{
    auto layout = make_wire_layout();
    net_surgeon surgeon{layout};
    const auto conn = surgeon.trace_incoming({4, 2}, 0);

    surgeon.rip(conn);
    EXPECT_EQ(layout.num_wires(), 0u);
    EXPECT_TRUE(layout.incoming_of({4, 2}).empty());

    const auto feeder = surgeon.restore(conn);
    EXPECT_EQ(layout.num_wires(), 5u);
    EXPECT_EQ(layout.incoming_of({4, 2}).front(), feeder);
    EXPECT_TRUE(ver::gate_level_drc(layout).passed());
}

TEST(NetSurgeryTest, AllConnectionsEnumeratesEachOnce)
{
    const auto network = mux21();
    auto layout = pd::ortho(network);
    net_surgeon surgeon{layout};
    const auto conns = surgeon.all_connections();

    // one connection per fanin slot of every non-wire tile
    std::size_t expected = 0;
    layout.foreach_tile(
        [&](const coordinate&, const gate_level_layout::tile_data& d)
        {
            if (d.type != gate_type::buf)
            {
                expected += d.incoming.size();
            }
        });
    EXPECT_EQ(conns.size(), expected);
}

TEST(NetSurgeryTest, IncidentConnectionsCoverInsAndOuts)
{
    const auto network = half_adder();
    auto layout = pd::ortho(network);
    net_surgeon surgeon{layout};

    // find the xor gate tile
    coordinate xor_tile{};
    layout.foreach_tile(
        [&](const coordinate& c, const gate_level_layout::tile_data& d)
        {
            if (d.type == gate_type::xor2)
            {
                xor_tile = c;
            }
        });

    const auto conns = surgeon.incident_connections(xor_tile);
    ASSERT_EQ(conns.size(), 3u);  // 2 fanins + 1 fanout (to the PO)
    EXPECT_EQ(conns[0].dst, xor_tile);
    EXPECT_EQ(conns[1].dst, xor_tile);
    EXPECT_EQ(conns[2].src, xor_tile);
}

TEST(NetSurgeryTest, RipDemotesFloatingCrossings)
{
    // build a crossing, then rip the ground net: the crossing wire must be
    // demoted to the ground layer and its net must stay intact
    gate_level_layout layout{"x", layout_topology::cartesian, clocking_scheme::twoddwave(), 5, 5};
    layout.place({2, 0}, gate_type::pi, "v");
    layout.place({2, 4}, gate_type::po, "vy");
    layout.place({0, 2}, gate_type::pi, "h");
    layout.place({4, 2}, gate_type::po, "hy");
    net_surgeon surgeon{layout};
    ASSERT_TRUE(surgeon.route_shortest({2, 0}, {2, 4}).has_value());  // ground at (2,2)
    ASSERT_TRUE(surgeon.route_shortest({0, 2}, {4, 2}).has_value());  // crossing at (2,2,1)
    ASSERT_EQ(layout.num_crossings(), 1u);

    const auto vertical = surgeon.trace_incoming({2, 4}, 0);
    surgeon.rip(vertical);

    EXPECT_EQ(layout.num_crossings(), 0u);
    EXPECT_EQ(layout.type_of({2, 2, 0}), gate_type::buf);  // demoted horizontal wire

    // drop the now-disconnected vertical I/O pins; the remaining horizontal
    // net must be fully DRC-clean
    layout.clear_tile({2, 0});
    layout.clear_tile({2, 4});
    const auto report = ver::gate_level_drc(layout);
    EXPECT_TRUE(report.passed()) << (report.errors.empty() ? "" : report.errors.front());
}

TEST(NetSurgeryTest, TryRelocateCommitsOnAccept)
{
    auto layout = make_wire_layout();
    net_surgeon surgeon{layout};
    const auto committed = try_relocate(surgeon, {4, 2}, {2, 2}, []() { return true; });
    EXPECT_TRUE(committed);
    EXPECT_EQ(layout.type_of({2, 2}), gate_type::po);
    EXPECT_TRUE(layout.is_empty_tile({4, 2}));
    EXPECT_TRUE(ver::gate_level_drc(layout).passed());
}

TEST(NetSurgeryTest, TryRelocateRollsBackOnReject)
{
    auto layout = make_wire_layout();
    const auto wires_before = layout.num_wires();
    net_surgeon surgeon{layout};
    const auto committed = try_relocate(surgeon, {4, 2}, {2, 2}, []() { return false; });
    EXPECT_FALSE(committed);
    EXPECT_EQ(layout.type_of({4, 2}), gate_type::po);
    EXPECT_TRUE(layout.is_empty_tile({2, 2}));
    EXPECT_EQ(layout.num_wires(), wires_before);
    EXPECT_TRUE(ver::gate_level_drc(layout).passed());
}

TEST(NetSurgeryTest, TryRelocateRollsBackOnUnroutable)
{
    auto layout = make_wire_layout();
    net_surgeon surgeon{layout};
    // moving the PI south-east of its PO makes the net unroutable under
    // 2DDWave (information only flows east/south) -> must roll back
    const auto committed = try_relocate(surgeon, {0, 0}, {5, 5}, []() { return true; });
    EXPECT_FALSE(committed);
    EXPECT_EQ(layout.type_of({0, 0}), gate_type::pi);
    EXPECT_EQ(layout.type_of({4, 2}), gate_type::po);
    EXPECT_TRUE(ver::gate_level_drc(layout).passed());
    EXPECT_TRUE(ver::check_layout_equivalence(lyt::extract_network(make_wire_layout()), layout));
}

TEST(NetSurgeryTest, RelocationPreservesFunctionOnRealCircuit)
{
    const auto network = mux21();
    auto layout = pd::ortho(network);
    net_surgeon surgeon{layout};

    // push every gate around randomly-ish (deterministic order), accepting
    // everything that routes; the function must survive
    for (const auto& g : layout.tiles_sorted())
    {
        if (layout.type_of(g) == gate_type::buf || layout.is_empty_tile(g))
        {
            continue;
        }
        for (std::int32_t y = 0; y < static_cast<std::int32_t>(layout.height()); y += 2)
        {
            const coordinate t{g.x, y, 0};
            if (layout.is_empty_tile(t) && layout.is_empty_tile(t.elevated()))
            {
                static_cast<void>(try_relocate(surgeon, g, t, []() { return true; }));
                break;
            }
        }
    }
    EXPECT_TRUE(ver::check_layout_equivalence(network, layout));
}
